//! Offline stand-in for `serde`.
//!
//! See `shims/serde_derive` for the rationale. This crate provides the
//! two marker traits plus the no-op derive macros under the usual names,
//! which is the entire surface the workspace uses (`use serde::{
//! Deserialize, Serialize };` + `#[derive(...)]`). No runtime
//! serialization happens through these traits; the harness's result
//! store uses `ebcp-harness::json` instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this
/// shim). The lifetime parameter matches the real trait so bounds like
/// `T: Deserialize<'de>` would still compile.
pub trait Deserialize<'de>: Sized {}
