//! Offline stand-in for serde's derive macros.
//!
//! The workspace builds in a hermetic container with no crates.io
//! access, so the real `serde`/`serde_derive` cannot be fetched. Nothing
//! in the workspace serializes through serde at runtime — the derives
//! are annotations only, and the experiment harness uses its own
//! std-only canonical encoding (`ebcp-harness::json`). These macros
//! therefore expand to nothing: the `#[derive(Serialize, Deserialize)]`
//! attributes keep compiling unchanged, and swapping the real serde back
//! in (when a registry is available) is a one-line Cargo change.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]`
/// helper attributes so annotated types keep compiling.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. See [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
