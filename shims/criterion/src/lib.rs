//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `[[bench]]` targets (all `harness = false`)
//! compiling and runnable without crates.io access. The authoring
//! surface matches the subset the benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, group
//! `sample_size` / `throughput` / `bench_function` / `finish`, and
//! `Bencher::{iter, iter_batched}` — but the statistics are
//! intentionally simple: each benchmark runs `sample_size` timed
//! samples and reports min/median/mean wall-clock time (plus element
//! throughput when declared). No warm-up analysis, outlier detection,
//! or HTML reports.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (the real crate's `black_box`).
pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (accepted, not used for tuning).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", id.as_ref(), sample_size, None, f);
        self
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` and prints a one-line report.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            id.as_ref(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed());
    }

    /// Times `routine` on a fresh input from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.samples.push(t0.elapsed());
    }
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    // One untimed warm-up sample, then `sample_size` timed samples.
    f(&mut b);
    b.samples.clear();
    while b.samples.len() < sample_size {
        f(&mut b);
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let mut line = format!(
        "bench {label:<48} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len(),
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  ~{:.2} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  ~{:.2} MB/s", per_sec(n) / 1e6));
            }
        }
    }
    println!("{line}");
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given groups (CLI flags from `cargo
/// bench`/`cargo test` are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with
            // libtest-style flags; never execute benches there.
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_consumes_fresh_input() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
