//! Offline stand-in for the `rand` crate.
//!
//! The container building this workspace has no crates.io access, so
//! the real `rand` cannot be fetched. This shim reimplements exactly
//! the surface the trace generator uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_bool, gen_range}`
//! — on top of the same generator the real crate uses for `SmallRng`
//! on 64-bit targets (xoshiro256++ seeded via SplitMix64), so streams
//! are high-quality and deterministic per seed.
//!
//! Distribution details (`gen_range` rejection strategy, `f64`
//! conversion) follow the same constructions as rand 0.8; exact
//! bit-stream equality with the real crate is not guaranteed and the
//! workspace does not depend on it — all calibration is done against
//! this generator.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        // Match rand's Bernoulli: compare 64 raw bits against p scaled
        // to the 2^64 grid (exact for p = 1.0).
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Types samplable from the standard distribution (subset of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits into [0, 1), as the real crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[lo, hi)` by widening multiply with rejection
/// (Lemire's method, as used by the real crate).
fn uniform_u64<R: Rng>(rng: &mut R, lo: u64, hi_exclusive: u64) -> u64 {
    debug_assert!(lo < hi_exclusive);
    let span = hi_exclusive - lo;
    if span == 0 {
        // Wrapped: the range covers the full u64 domain.
        return rng.next_u64();
    }
    let zone = span.wrapping_neg() % span; // # of low results to reject
    loop {
        let v = rng.next_u64();
        let (hi, lo_mul) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo_mul >= zone {
            return lo + hi;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                uniform_u64(rng, self.start as u64, self.end as u64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                if lo as u64 == 0 && hi as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                uniform_u64(rng, lo as u64, hi as u64 + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u64, usize, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, 0, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64(rng, 0, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i64, isize, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Generator implementations (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's `SmallRng`
    /// on 64-bit targets. Small state, fast, high quality; not
    /// cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as SeedableRng::seed_from_u64 does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            debug_assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=6);
            assert!((5..=6).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..=2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
