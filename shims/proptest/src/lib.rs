//! Offline stand-in for `proptest`.
//!
//! The container building this workspace cannot reach crates.io, so the
//! real proptest is unavailable. This shim keeps the same authoring
//! surface the workspace's property tests use — the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, [`any`],
//! [`prop_oneof!`], [`collection::vec`] and the `prop_assert*` macros —
//! over a deterministic per-test RNG. Each property runs a fixed number
//! of cases (256); failures report the failing case's values via the
//! standard assertion message. There is **no shrinking**: a failing
//! input is printed as-is.

pub mod test_runner {
    //! Deterministic RNG plumbing for generated cases.

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Per-case RNG: seeded from the test name and case index so runs
    /// are reproducible and independent of execution order.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// A deterministic RNG for (`test_seed`, `case`).
        pub fn deterministic(test_seed: u64, case: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(
                test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            self.0.gen_range(0..n.max(1))
        }
    }
}

/// FNV-1a over a string; used to derive per-test seeds from test names.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cases run per property.
pub const CASES: u64 = 256;

pub mod strategy {
    //! Value-generation strategies (subset of `proptest::strategy`).

    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values (subset of
    /// `proptest::strategy::Strategy`; generation only, no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let k = rng.below(self.0.len());
            self.0[k].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy (subset of
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u64, u32, u16, u8, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Builds the unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_strategy_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_strategy_range!(u64, u32, u16, u8, usize);

    macro_rules! impl_strategy_tuple {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_tuple! {
        (0 S0)
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Re-export so `BoxedStrategy` arms can be built without naming paths.
pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// Runs each annotated property for [`CASES`] deterministic cases.
///
/// Supports the common form used in this workspace:
/// `#[test] fn name(binding in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __seed = $crate::fnv(stringify!($name));
                for __case in 0..$crate::CASES {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__seed, __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in collection::vec(0u32..5, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            Just(0u64),
            (any::<u32>(), any::<bool>()).prop_map(|(a, b)| u64::from(a) * 2 + u64::from(b)),
        ]) {
            prop_assert!(y == 0 || y <= u64::from(u32::MAX) * 2 + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(crate::strategy::any::<u64>(), 1..20);
        let mut a = crate::test_runner::TestRng::deterministic(1, 2);
        let mut b = crate::test_runner::TestRng::deterministic(1, 2);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
