//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`BytesMut`] plus the [`Buf`]/[`BufMut`] trait surface the
//! trace codec (`ebcp-trace::io`) uses, backed by a plain `Vec<u8>` /
//! advancing `&[u8]` slice. Semantics match the real crate for this
//! subset; the zero-copy machinery of the real crate is intentionally
//! absent.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Write side (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read side (subset of `bytes::Buf`). Implemented for `&[u8]`, which
/// advances through the slice as values are consumed.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer exhausted");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64_u8() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u64_le(0xDEAD_BEEF_0123_4567);
        b.put_slice(b"xy");
        let mut r: &[u8] = &b;
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn overread_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u64_le();
    }
}
