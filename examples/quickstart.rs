//! Quickstart: simulate one workload with and without the epoch-based
//! correlation prefetcher and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ebcp::core::EbcpConfig;
use ebcp::sim::{PrefetcherSpec, RunSpec, SimConfig};
use ebcp::trace::WorkloadSpec;

fn main() {
    // A 1/8-scale machine and workload: runs in a few seconds.
    let workload = WorkloadSpec::database().scaled(1, 8);
    let interval = workload.recurrence_interval();
    let spec = RunSpec {
        workload,
        seed: 7,
        // Warm the caches and let the correlation table mature
        // (~3.5 passes over the transaction templates), then measure one
        // full pass.
        warmup_insts: interval * 7 / 2,
        measure_insts: interval,
        sim: SimConfig::scaled_down(8),
    };

    println!(
        "generating the synthetic OLTP trace ({} instructions)...",
        spec.warmup_insts + spec.measure_insts
    );
    let trace = spec.materialize();

    let baseline = spec.run_on(&trace, &PrefetcherSpec::None);
    println!("\nbaseline (no prefetching):");
    println!("  CPI          {:.3}", baseline.cpi());
    println!("  epochs/1k    {:.2}", baseline.epi_per_kilo());
    println!("  L2 inst MR   {:.2} /1k insts", baseline.inst_mr());
    println!("  L2 load MR   {:.2} /1k insts", baseline.load_mr());

    // The tuned EBCP of §5.2: degree 8, 1M-entry main-memory table
    // (scaled to the machine), 64-entry prefetch buffer.
    let ebcp = PrefetcherSpec::Ebcp(EbcpConfig::tuned().with_table_entries((1 << 20) / 8));
    let result = spec.run_on(&trace, &ebcp);
    println!("\nepoch-based correlation prefetcher (tuned):");
    println!("  CPI          {:.3}", result.cpi());
    println!("  epochs/1k    {:.2}", result.epi_per_kilo());
    println!("  coverage     {:.1}%", result.coverage() * 100.0);
    println!("  accuracy     {:.1}%", result.accuracy() * 100.0);
    println!(
        "  prefetches   {} issued, {} useful",
        result.pf_issued,
        result.pf_useful()
    );
    println!(
        "\n=> overall performance improvement: {:.1}%  (EPI reduction {:.1}%)",
        result.improvement_over(&baseline) * 100.0,
        result.epi_reduction_over(&baseline) * 100.0
    );
}
