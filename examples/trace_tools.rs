//! Trace tooling: generate a synthetic commercial workload, inspect its
//! statistics, and round-trip it through the binary trace format.
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```

use std::io::Cursor;

use ebcp::trace::{read_trace, write_trace, TraceGenerator, TraceStats, WorkloadSpec};

fn main() {
    for spec in WorkloadSpec::all_presets() {
        let spec = spec.scaled(1, 16);
        let trace: Vec<_> = TraceGenerator::new(&spec, 42).take(200_000).collect();
        let stats = TraceStats::analyze(&trace);
        println!("== {} (1/16 scale, 200k records)", spec.name);
        println!("{stats}");
        println!(
            "mean cluster size {:.2} loads/epoch, recurrence interval ~{}k insts\n",
            spec.mean_cluster_size(),
            spec.recurrence_interval() / 1000
        );
    }

    // Binary round-trip.
    let spec = WorkloadSpec::database().scaled(1, 32);
    let trace: Vec<_> = TraceGenerator::new(&spec, 1).take(50_000).collect();
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("write");
    let back = read_trace(Cursor::new(&bytes)).expect("read");
    assert_eq!(trace, back);
    println!(
        "binary trace round-trip: {} records -> {} bytes ({:.1} B/record)",
        trace.len(),
        bytes.len(),
        bytes.len() as f64 / trace.len() as f64
    );
}
