//! Prefetcher shootout: every Figure 9 contender on one workload.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout [workload]
//! ```
//!
//! `workload` is one of `database`, `tpcw`, `specjbb2005`,
//! `specjappserver2004` (default `database`).

use ebcp::core::EbcpConfig;
use ebcp::prefetch::BaselineConfig;
use ebcp::sim::{PrefetcherSpec, RunSpec, SimConfig};
use ebcp::trace::WorkloadSpec;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "database".to_owned());
    let Some(workload) = WorkloadSpec::all_presets()
        .into_iter()
        .find(|w| w.name == which)
    else {
        eprintln!("unknown workload {which}; try database, tpcw, specjbb2005, specjappserver2004");
        std::process::exit(2);
    };

    // 1/8-scale machine + workload for example-sized runtimes.
    let den = 8usize;
    let workload = workload.scaled(1, den);
    let interval = workload.recurrence_interval();
    let spec = RunSpec {
        workload,
        seed: 11,
        warmup_insts: interval * 7 / 2,
        measure_insts: interval,
        sim: SimConfig::scaled_down(den as u64),
    };
    println!(
        "workload {which}: generating {} instructions...",
        spec.warmup_insts + spec.measure_insts
    );
    let trace = spec.materialize();
    let base = spec.run_on(&trace, &PrefetcherSpec::None);
    println!(
        "baseline: CPI {:.3}, {:.2} epochs/1k insts, miss rates {:.2}i + {:.2}l per 1k\n",
        base.cpi(),
        base.epi_per_kilo(),
        base.inst_mr(),
        base.load_mr()
    );

    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>10}",
        "prefetcher", "improve", "cover", "accur", "prefetches"
    );
    let mut contenders: Vec<PrefetcherSpec> = BaselineConfig::figure9_roster()
        .into_iter()
        .map(|(n, c)| PrefetcherSpec::baseline(n, c))
        .collect();
    contenders.push(PrefetcherSpec::Ebcp(EbcpConfig::comparison()));
    contenders.push(PrefetcherSpec::Ebcp(EbcpConfig::comparison_minus()));
    for pf in contenders {
        let r = spec.run_on(&trace, &pf);
        println!(
            "{:<14} {:>8.1}% {:>7.1}% {:>7.1}% {:>10}",
            pf.name(),
            r.improvement_over(&base) * 100.0,
            r.coverage() * 100.0,
            r.accuracy() * 100.0,
            r.pf_issued
        );
    }
    println!("\n(paper, Figure 9: EBCP wins on every workload; Solihin 6,1 second;");
    println!(" small on-chip tables and the stream prefetcher are ineffective)");
}
