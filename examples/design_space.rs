//! Design-space walk: reproduce the §5.2 exploration on one workload —
//! prefetch degree, correlation-table size, prefetch-buffer size and
//! memory bandwidth.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ebcp::core::EbcpConfig;
use ebcp::sim::{PrefetcherSpec, RunSpec, SimConfig};
use ebcp::trace::WorkloadSpec;

fn spec_for(sim: SimConfig, den: usize) -> RunSpec {
    let workload = WorkloadSpec::specjbb2005().scaled(1, den);
    let interval = workload.recurrence_interval();
    RunSpec {
        workload,
        seed: 11,
        warmup_insts: interval * 7 / 2,
        measure_insts: interval,
        sim,
    }
}

fn main() {
    let den = 8usize;
    let table_1m = (1u64 << 20) / den as u64;
    let table_8m = (8u64 << 20) / den as u64;

    // -- Figure 4: prefetch degree (idealized table, big buffer) --------
    let spec = spec_for(
        SimConfig::scaled_down(den as u64).with_pbuf_entries(1024),
        den,
    );
    let trace = spec.materialize();
    let base = spec.run_on(&trace, &PrefetcherSpec::None);
    println!("SPECjbb2005, baseline CPI {:.3}\n", base.cpi());
    println!("prefetch degree sweep (8M-entry table, 1024-entry buffer):");
    for degree in [1usize, 2, 4, 8, 16, 32] {
        let cfg = EbcpConfig::idealized()
            .with_table_entries(table_8m)
            .with_degree(degree);
        let r = spec.run_on(&trace, &PrefetcherSpec::Ebcp(cfg));
        println!(
            "  degree {:>2}: +{:>5.1}%  (coverage {:>4.1}%, accuracy {:>4.1}%)",
            degree,
            r.improvement_over(&base) * 100.0,
            r.coverage() * 100.0,
            r.accuracy() * 100.0
        );
    }

    // -- Figure 6: table size at degree 8 -------------------------------
    println!("\ncorrelation-table size sweep (degree 8):");
    for entries in [table_8m, table_8m / 8, table_1m / 4, table_1m / 16] {
        let cfg = EbcpConfig::idealized()
            .with_degree(8)
            .with_table_entries(entries);
        let r = spec.run_on(&trace, &PrefetcherSpec::Ebcp(cfg));
        println!(
            "  {:>8} entries ({:>4} MB in memory): +{:>5.1}%",
            entries,
            entries * 64 / (1 << 20),
            r.improvement_over(&base) * 100.0
        );
    }

    // -- Figure 7: prefetch-buffer size at the tuned configuration ------
    println!("\nprefetch-buffer sweep (tuned: degree 8, 1M-entry table):");
    for buf in [1024usize, 256, 64, 16] {
        let spec_b = spec_for(
            SimConfig::scaled_down(den as u64).with_pbuf_entries(buf),
            den,
        );
        let cfg = EbcpConfig::tuned().with_table_entries(table_1m);
        let r = spec_b.run_on(&trace, &PrefetcherSpec::Ebcp(cfg));
        println!(
            "  {:>5} entries ({:>5} B): +{:>5.1}%",
            buf,
            buf * 8,
            r.improvement_over(&base) * 100.0
        );
    }

    // -- Figure 8: bandwidth sensitivity at degree 32 --------------------
    println!("\nmemory-bandwidth sensitivity (degree 32):");
    for (num, den_bw, label) in [
        (1u64, 3u64, "3.2/1.6"),
        (2, 3, "6.4/3.2"),
        (1, 1, "9.6/4.8"),
    ] {
        let sim = SimConfig::scaled_down(den as u64)
            .with_bandwidth(num, den_bw)
            .with_pbuf_entries(1024);
        let spec_bw = spec_for(sim, den);
        let base_bw = spec_bw.run_on(&trace, &PrefetcherSpec::None);
        let cfg = EbcpConfig::idealized().with_table_entries(table_8m);
        let r = spec_bw.run_on(&trace, &PrefetcherSpec::Ebcp(cfg));
        println!(
            "  {:>7} GB/s: +{:>5.1}%  ({} prefetches dropped)",
            label,
            r.improvement_over(&base_bw) * 100.0,
            r.pf_dropped_bus + r.pf_dropped_mshr
        );
    }
}
