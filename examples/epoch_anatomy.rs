//! Epoch anatomy: the paper's running example (§3.1-§3.2), driven
//! through the real simulation engine.
//!
//! A recurring sequence of miss addresses A..I falls into four epochs:
//!
//! ```text
//! epoch:   i      i+1       i+2    i+3
//! misses:  A,B    C,D,E     F,G    H,I
//! ```
//!
//! The example builds a hand-crafted trace that produces exactly this
//! epoch structure, repeats it until the prefetchers have learned it,
//! and then reports how many epochs each scheme needs for the final
//! occurrence — reproducing the paper's comparison tables: no
//! prefetching takes 4 epochs, the epoch-based correlation prefetcher
//! takes 2.
//!
//! ```text
//! cargo run --release --example epoch_anatomy
//! ```

use ebcp::core::EbcpConfig;
use ebcp::prefetch::SolihinConfig;
use ebcp::sim::{Engine, PrefetcherSpec, SimConfig};
use ebcp::trace::{Op, TraceRecord};
use ebcp::types::{Addr, LineAddr, Pc};

/// The miss lines A..I, far apart so they never share cache sets
/// pathologically.
fn lines() -> Vec<LineAddr> {
    (0..9u64)
        .map(|i| LineAddr::from_index(0x10_0000 + i * 0x111))
        .collect()
}

/// Filler: `n` ALU instructions within one warm code line.
fn filler(t: &mut Vec<TraceRecord>, n: usize) {
    for k in 0..n {
        t.push(TraceRecord::alu(Pc::new(0x4000 + (k as u64 % 16) * 4)));
    }
}

/// One occurrence of the example: epochs {A,B} {C,D,E} {F,G} {H,I},
/// separated by gaps longer than the ROB.
fn occurrence(t: &mut Vec<TraceRecord>, lines: &[LineAddr]) {
    let epochs: [&[usize]; 4] = [&[0, 1], &[2, 3, 4], &[5, 6], &[7, 8]];
    for epoch in epochs {
        filler(t, 200); // > 128-entry ROB: a fresh epoch
        for (k, &i) in epoch.iter().enumerate() {
            t.push(TraceRecord::new(
                Pc::new(0x4000 + i as u64 * 4),
                Op::Load {
                    addr: Addr::new(lines[i].base().get()),
                    // The last load of each group feeds a dependent
                    // mispredict: the window closes right after it.
                    feeds_mispredict: k + 1 == epoch.len(),
                },
            ));
        }
    }
}

/// A long stretch of unrelated misses that evicts A..I from the L2, so
/// the next occurrence misses again (the paper assumes the sequence
/// "recurs after a sufficiently long period").
fn evict_all(t: &mut Vec<TraceRecord>, round: u64, l2_lines: u64) {
    for i in 0..l2_lines * 3 {
        filler(t, 200);
        t.push(TraceRecord::load(
            Pc::new(0x4100),
            Addr::new((0x80_0000 + round * 0x10_0000 + i) * 64),
        ));
    }
}

fn run(pf: &PrefetcherSpec, trace: &[TraceRecord], measure_from: usize) -> (u64, u64, u64) {
    let sim = SimConfig::scaled_down(16); // small L2 keeps eviction cheap
    let mut engine = Engine::new(sim, pf.build());
    for rec in &trace[..measure_from] {
        engine.step(rec);
    }
    engine.reset_stats();
    for rec in &trace[measure_from..] {
        engine.step(rec);
    }
    let r = engine.result("anatomy");
    (r.epochs, r.l2_load_misses, r.averted_load)
}

fn main() {
    let lines = lines();
    let l2_lines = SimConfig::scaled_down(16).l2.lines();
    let mut trace = Vec::new();
    // Several learning rounds: occurrence, then eviction traffic.
    for round in 0..6u64 {
        occurrence(&mut trace, &lines);
        evict_all(&mut trace, round, l2_lines);
    }
    let measure_from = trace.len();
    // The measured final occurrence.
    occurrence(&mut trace, &lines);
    filler(&mut trace, 3000); // drain

    println!("paper example: epochs {{A,B}} {{C,D,E}} {{F,G}} {{H,I}} recurring\n");
    println!(
        "{:<22} {:>7} {:>8} {:>9}   paper's prediction",
        "prefetcher", "epochs", "misses", "averted"
    );
    let cases: Vec<(PrefetcherSpec, &str)> = vec![
        (PrefetcherSpec::None, "4 epochs"),
        (
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()),
            "2 epochs: A's entry prefetches F,G,H,I",
        ),
        (
            PrefetcherSpec::baseline(
                "solihin-6,1",
                ebcp::prefetch::BaselineConfig::Solihin(SolihinConfig::deep()),
            ),
            "more epochs: successors 1-3 are not timely",
        ),
    ];
    for (pf, note) in cases {
        let (epochs, misses, averted) = run(&pf, &trace, measure_from);
        println!(
            "{:<22} {:>7} {:>8} {:>9}   {}",
            pf.name(),
            epochs,
            misses,
            averted,
            note
        );
    }
}
