//! The §3.3.1 placement argument, end to end: on a chip multiprocessor,
//! the memory controller sees an interleaving of every core's misses.
//! EBCP's control sits in front of the core-to-L2 crossbar, keeps
//! per-core EMABs, and is immune; a memory-side correlation engine's
//! successor chains are scrambled.

use ebcp::core::EbcpConfig;
use ebcp::prefetch::{BaselineConfig, SolihinConfig};
use ebcp::sim::{CmpEngine, CmpResult, PrefetcherSpec, SimConfig};
use ebcp::trace::{TraceGenerator, TraceRecord, WorkloadSpec};

fn core_workload(k: usize, n: usize) -> WorkloadSpec {
    WorkloadSpec {
        seed_tag: 0x0d00 + k as u64,
        templates: 24 / n.max(1),
        segments_per_template: 60,
        data_pool_lines: (1 << 14) / n as u64,
        cold_code_pool_lines: 2048,
        warm_pool_lines: 128,
        ..WorkloadSpec::database()
    }
}

fn run(n: usize, pf: &PrefetcherSpec) -> CmpResult {
    let specs: Vec<WorkloadSpec> = (0..n).map(|k| core_workload(k, n)).collect();
    let interval = specs.iter().map(|w| w.recurrence_interval()).max().unwrap();
    let warm = interval * 7 / 2;
    let measure = interval;
    let traces: Vec<Vec<TraceRecord>> = specs
        .iter()
        .enumerate()
        .map(|(k, w)| {
            TraceGenerator::new(w, 3 + k as u64)
                .take((warm + measure) as usize)
                .collect()
        })
        .collect();
    let mut engine = CmpEngine::new(SimConfig::scaled_down(16), n, pf.build());
    engine.run(&traces, warm, measure, "mix")
}

fn ebcp_spec() -> PrefetcherSpec {
    PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries((1 << 20) / 16))
}

fn solihin_spec() -> PrefetcherSpec {
    PrefetcherSpec::baseline(
        "solihin-6,1",
        BaselineConfig::Solihin(SolihinConfig {
            entries: (1 << 20) / 16,
            ..SolihinConfig::deep()
        }),
    )
}

#[test]
fn interleaving_destroys_memory_side_correlation_but_not_ebcp() {
    let base1 = run(1, &PrefetcherSpec::None);
    let base4 = run(4, &PrefetcherSpec::None);

    let ebcp1 = run(1, &ebcp_spec()).improvement_over(&base1);
    let ebcp4 = run(4, &ebcp_spec()).improvement_over(&base4);
    let sol1 = run(1, &solihin_spec()).improvement_over(&base1);
    let sol4 = run(4, &solihin_spec()).improvement_over(&base4);

    // Single core: both schemes work (Figure 9 world).
    assert!(ebcp1 > 0.08, "ebcp@1 {ebcp1:.3}");
    assert!(sol1 > 0.04, "solihin@1 {sol1:.3}");

    // Four cores: EBCP retains most of its gain...
    assert!(
        ebcp4 > ebcp1 * 0.5,
        "EBCP must survive interleaving: {ebcp4:.3} vs {ebcp1:.3} at 1 core"
    );
    // ...while the memory-side engine loses most of its gain.
    assert!(
        sol4 < sol1 * 0.5,
        "Solihin must collapse under interleaving: {sol4:.3} vs {sol1:.3} at 1 core"
    );
    // And the gap between the schemes widens.
    assert!(
        ebcp4 > sol4 + 0.05,
        "ebcp@4 {ebcp4:.3} vs solihin@4 {sol4:.3}"
    );
}
