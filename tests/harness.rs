//! Tier-1 tests for the experiment harness: job-hash stability
//! (property-based), worker-count-independent determinism, warm-cache
//! incrementality, and fault tolerance (panic isolation, retry-once,
//! corrupt-cache quarantine and self-heal).

use ebcp::core::EbcpConfig;
use ebcp::harness::{store, Harness, HarnessConfig, Job, JobOutcome, ResultStore};
use ebcp::prefetch::{BaselineConfig, FaultConfig};
use ebcp::sim::{PrefetcherSpec, RunSpec, SimConfig, SimResult};
use ebcp::trace::WorkloadSpec;
use proptest::prelude::*;

/// A job built from a handful of free parameters, covering all four
/// workload presets, both scaled machines we test at, and the EBCP
/// design-space knobs that experiments actually sweep.
fn make_job(
    workload: usize,
    seed: u64,
    warm: u32,
    measure: u32,
    den: u64,
    degree: usize,
    prefetch: bool,
) -> Job {
    let presets = WorkloadSpec::all_presets();
    let spec = RunSpec {
        workload: presets[workload % presets.len()].clone().scaled(1, 32),
        seed,
        warmup_insts: u64::from(warm),
        measure_insts: u64::from(measure),
        sim: SimConfig::scaled_down(if den.is_multiple_of(2) { 16 } else { 8 }),
    };
    let pf = if prefetch {
        PrefetcherSpec::Ebcp(EbcpConfig::tuned().with_degree(1 + degree % 32))
    } else {
        PrefetcherSpec::None
    };
    Job::new(spec, pf)
}

proptest! {
    /// A job's content hash is a pure function of its content: rebuilding
    /// the job from the same parameters — the round trip every spec takes
    /// through clone/serialize boundaries — yields the same hash, and the
    /// canonical string it derives from is reproduced exactly.
    #[test]
    fn job_hash_stable_across_round_trips(
        workload in any::<u64>(),
        seed in any::<u64>(),
        warm in any::<u32>(),
        measure in any::<u32>(),
        den in any::<u64>(),
        degree in any::<u64>(),
        prefetch in any::<bool>(),
    ) {
        let a = make_job(workload as usize, seed, warm, measure, den, degree as usize, prefetch);
        let b = make_job(workload as usize, seed, warm, measure, den, degree as usize, prefetch);
        prop_assert_eq!(a.id(), b.id());
        prop_assert_eq!(a.canonical(), b.canonical());
        prop_assert_eq!(a.trace_key(), b.trace_key());
        // Clone round trip.
        prop_assert_eq!(a.clone().id(), a.id());
        // Seed is part of the identity (and of the trace).
        let c = make_job(workload as usize, seed.wrapping_add(1), warm, measure, den,
                         degree as usize, prefetch);
        prop_assert_ne!(a.id(), c.id());
        prop_assert_ne!(a.trace_key(), c.trace_key());
    }

    /// A `SimResult` survives the store's JSON codec bit-exactly for
    /// arbitrary counter values (including > 2^53, where an f64 number
    /// path would corrupt them).
    #[test]
    fn result_json_round_trips(
        insts in any::<u64>(),
        cycles in any::<u64>(),
        epochs in any::<u64>(),
        misses in any::<u64>(),
        issued in any::<u64>(),
        transfers in any::<u64>(),
    ) {
        let mut r = SimResult {
            prefetcher: "ebcp".to_owned(),
            workload: "database".to_owned(),
            insts,
            cycles,
            epochs,
            l2_load_misses: misses,
            pf_issued: issued,
            ..SimResult::default()
        };
        r.mem.read.transfers[1] = transfers;
        let text = store::result_to_json(&r).to_json_pretty();
        let v = ebcp::harness::json::parse(&text).unwrap();
        prop_assert_eq!(store::result_from_json(&v), Some(r));
    }
}

fn quick_jobs() -> Vec<Job> {
    let mut jobs = Vec::new();
    for (i, w) in WorkloadSpec::all_presets().into_iter().enumerate() {
        let spec = RunSpec {
            workload: w.scaled(1, 32),
            seed: 11 + i as u64,
            warmup_insts: 20_000,
            measure_insts: 10_000,
            sim: SimConfig::scaled_down(16),
        };
        jobs.push(Job::new(spec.clone(), PrefetcherSpec::None));
        jobs.push(Job::new(spec, PrefetcherSpec::Ebcp(EbcpConfig::tuned())));
    }
    jobs
}

/// `--jobs 8` and `--jobs 1` must produce identical results: the
/// simulator is deterministic, and harness assembly is independent of
/// worker scheduling.
#[test]
fn eight_workers_match_one_worker_exactly() {
    let jobs = quick_jobs();
    let one = Harness::new(HarnessConfig {
        jobs: 1,
        ..HarnessConfig::default()
    })
    .run(&jobs);
    let eight = Harness::new(HarnessConfig {
        jobs: 8,
        ..HarnessConfig::default()
    })
    .run(&jobs);
    assert_eq!(one, eight);
}

/// A second harness over a warm result store executes zero simulations.
#[test]
fn warm_store_executes_zero_simulations() {
    let dir = std::env::temp_dir().join(format!("ebcp-facade-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HarnessConfig {
        jobs: 2,
        store_dir: Some(dir.clone()),
        ..HarnessConfig::default()
    };
    let jobs = quick_jobs();

    let cold = Harness::new(cfg.clone());
    let a = cold.run(&jobs);
    assert_eq!(cold.summary().executed, jobs.len());

    let warm = Harness::new(cfg);
    let b = warm.run(&jobs);
    assert_eq!(
        warm.summary().executed,
        0,
        "warm cache must satisfy every job"
    );
    assert_eq!(warm.summary().disk_hits, jobs.len());
    assert_eq!(a, b, "cached results must be bit-identical to fresh ones");

    // The cache is content-addressed: every entry validates against its
    // job's canonical string.
    let store = ResultStore::open(&dir).unwrap();
    for job in &jobs {
        assert!(store.load(job).is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

fn sweep_spec(w: WorkloadSpec, seed: u64) -> RunSpec {
    RunSpec {
        workload: w.scaled(1, 32),
        seed,
        warmup_insts: 15_000,
        measure_insts: 10_000,
        sim: SimConfig::scaled_down(16),
    }
}

/// A 3 workloads × 3 prefetchers sweep whose third column is the
/// registered fault-injection prefetcher (panics on its first miss).
fn faulty_sweep() -> Vec<Job> {
    let fault = BaselineConfig::Fault(FaultConfig::panic_after(0));
    let mut jobs = Vec::new();
    for (i, w) in [
        WorkloadSpec::database(),
        WorkloadSpec::tpcw(),
        WorkloadSpec::specjbb2005(),
    ]
    .into_iter()
    .enumerate()
    {
        let spec = sweep_spec(w, 31 + i as u64);
        jobs.push(Job::new(spec.clone(), PrefetcherSpec::None));
        jobs.push(Job::new(
            spec.clone(),
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()),
        ));
        jobs.push(Job::new(spec, PrefetcherSpec::baseline("fault", fault)));
    }
    jobs
}

/// The healthy 3×2 subset of [`faulty_sweep`], in the same order.
fn healthy_subset(jobs: &[Job]) -> Vec<Job> {
    jobs.iter()
        .filter(|j| j.pf.name() != "fault")
        .cloned()
        .collect()
}

/// A panicking prefetcher in a 3×3 sweep fails exactly its own cells:
/// the six sibling cells finish, match a clean run byte-for-byte, are
/// persisted to the store, and `results.json` reports the three `Failed`
/// records with their panic message.
#[test]
fn panicking_prefetcher_fails_only_its_own_cells() {
    let dir = std::env::temp_dir().join(format!("ebcp-fault-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = faulty_sweep();

    let h = Harness::new(HarnessConfig {
        jobs: 4,
        store_dir: Some(dir.clone()),
        ..HarnessConfig::default()
    });
    let outcomes = h.run_outcomes(&jobs);

    assert_eq!(outcomes.len(), jobs.len());
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        if job.pf.name() == "fault" {
            let reason = outcome.failure().expect("fault cell must fail");
            assert!(reason.contains("injected fault"), "{reason}");
        } else {
            assert!(
                matches!(outcome, JobOutcome::Ok(_)),
                "healthy cell {} must succeed",
                job.label()
            );
        }
    }
    let s = h.summary();
    assert_eq!(s.failed, 3, "exactly the three fault cells fail");
    assert_eq!(s.retried, 0, "an unconditional fault never survives retry");
    assert_eq!(h.failures().len(), 3);

    // The sibling results are byte-identical to a clean (fault-free)
    // run and were persisted to the store despite the failures.
    let healthy = healthy_subset(&jobs);
    let clean = Harness::serial().run(&healthy);
    let store = ResultStore::open(&dir).unwrap();
    for (job, want) in healthy.iter().zip(&clean) {
        let sibling = outcomes[jobs.iter().position(|j| j == job).unwrap()]
            .result()
            .unwrap();
        assert_eq!(sibling, want, "{}", job.label());
        assert_eq!(
            store.load(job).as_ref(),
            Some(want),
            "{} must be cached",
            job.label()
        );
    }
    // Failed cells leave no store entry to be mistaken for a result.
    for job in jobs.iter().filter(|j| j.pf.name() == "fault") {
        assert!(store.load(job).is_none());
    }

    // results.json carries the outcome of every cell.
    let path = dir.join("results.json");
    h.write_results_json(&path).unwrap();
    let doc = ebcp::harness::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let recs = doc.get("jobs").unwrap().as_arr().unwrap();
    assert_eq!(recs.len(), 9);
    let failed: Vec<_> = recs
        .iter()
        .filter(|r| r.get("outcome").unwrap().as_str() == Some("failed"))
        .collect();
    assert_eq!(failed.len(), 3);
    for rec in &failed {
        assert_eq!(rec.get("prefetcher").unwrap().as_str(), Some("fault"));
        assert!(rec
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("injected fault"));
        assert!(rec.get("result").unwrap().is_null());
    }
    assert_eq!(
        doc.get("summary").unwrap().get("failed").unwrap().as_u64(),
        Some(3)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The strict entry point rejects a sweep with failures — after the
/// whole batch ran — naming the failed cells in its panic message.
#[test]
fn strict_run_panics_naming_the_failed_cells() {
    let jobs = faulty_sweep();
    let h = Harness::new(HarnessConfig {
        jobs: 2,
        ..HarnessConfig::default()
    });
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.run(&jobs)))
        .expect_err("strict mode must reject the sweep");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("3 job(s) failed"), "{msg}");
    assert!(msg.contains("database x fault"), "{msg}");
    // The failure did not discard the siblings: they are memoized, so a
    // follow-up healthy batch is served without re-execution.
    let executed_before = h.summary().executed;
    let _ = h.run(&healthy_subset(&jobs));
    assert_eq!(h.summary().executed, executed_before);
}

/// A one-shot fault (fuse file) panics on the first attempt and
/// succeeds on the harness's single retry: the outcome is `Retried`,
/// the result matches the null prefetcher it degenerates to, and the
/// record says so in `results.json`.
#[test]
fn one_shot_fault_survives_via_retry() {
    let token = 0x51C4_F00D ^ u64::from(std::process::id());
    let cfg = FaultConfig::one_shot(0, token);
    let fuse = cfg.fuse_path().unwrap();
    let _ = std::fs::remove_file(&fuse);

    let spec = sweep_spec(WorkloadSpec::database(), 77);
    let job = Job::new(
        spec,
        PrefetcherSpec::baseline("fault", BaselineConfig::Fault(cfg)),
    );
    let h = Harness::serial();
    let outcomes = h.run_outcomes(std::slice::from_ref(&job));
    let _ = std::fs::remove_file(&fuse);

    let JobOutcome::Retried(_) = &outcomes[0] else {
        panic!("expected a retried success, got {:?}", outcomes[0]);
    };
    let s = h.summary();
    assert_eq!((s.retried, s.failed, s.executed), (1, 0, 1));

    let dir = std::env::temp_dir().join(format!("ebcp-retry-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // results.json is deterministic: whether a cell needed its second
    // attempt is timing, so a retried success renders as plain "ok"
    // there, and telemetry.json carries the "retried" tag.
    let path = dir.join("results.json");
    h.write_results_json(&path).unwrap();
    let doc = ebcp::harness::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let rec = &doc.get("jobs").unwrap().as_arr().unwrap()[0];
    assert_eq!(rec.get("outcome").unwrap().as_str(), Some("ok"));
    assert!(rec.get("error").unwrap().is_null());
    let tele_path = dir.join("telemetry.json");
    h.write_telemetry_json(&tele_path).unwrap();
    let tele = ebcp::harness::json::parse(&std::fs::read_to_string(&tele_path).unwrap()).unwrap();
    let rec = &tele.get("jobs").unwrap().as_arr().unwrap()[0];
    assert_eq!(rec.get("outcome").unwrap().as_str(), Some("retried"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting a cached result *and* a cached pre-resolved stream heals
/// transparently: the harness quarantines both files, re-runs the jobs,
/// overwrites the entries, and reproduces byte-identical results.
#[test]
fn corrupt_caches_self_heal_byte_identically() {
    let dir = std::env::temp_dir().join(format!("ebcp-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HarnessConfig {
        jobs: 2,
        store_dir: Some(dir.clone()),
        ..HarnessConfig::default()
    };
    let jobs = quick_jobs();
    let a = Harness::new(cfg.clone()).run(&jobs);

    // Tear one result entry (truncate mid-file: unparsable JSON) and
    // truncate one stream (checksum mismatch). Entry paths go through
    // the store so the test follows the sharded layout.
    let layout = ResultStore::open(&dir).unwrap();
    let result_path = layout.entry_path(&jobs[0]);
    let bytes = std::fs::read(&result_path).unwrap();
    std::fs::write(&result_path, &bytes[..bytes.len() / 2]).unwrap();
    let stream_path = ebcp::harness::preres::path_for(&dir, &jobs[0]);
    let stream = std::fs::read(&stream_path).unwrap();
    std::fs::write(&stream_path, &stream[..stream.len() - 7]).unwrap();
    // Wipe the other result entries for the same workload so the healed
    // stream is actually needed again (a disk result hit would skip it).
    for job in &jobs {
        if job.trace_key() == jobs[0].trace_key() && *job != jobs[0] {
            let _ = std::fs::remove_file(layout.entry_path(job));
        }
    }

    let healed = Harness::new(cfg);
    let b = healed.run(&jobs);
    assert_eq!(a, b, "healed results must be byte-identical");
    let s = healed.summary();
    assert!(
        s.quarantined >= 2,
        "both corrupt files must be quarantined, got {}",
        s.quarantined
    );
    assert!(s.executed >= 1, "the corrupt cells must re-simulate");

    // The corrupt bytes were preserved for post-mortem (inside the
    // sharded subdirectories) and the entries were overwritten with
    // valid ones.
    fn any_corrupt(dir: &std::path::Path) -> bool {
        dir.read_dir().into_iter().flatten().flatten().any(|e| {
            let p = e.path();
            p.is_dir() && any_corrupt(&p) || p.to_string_lossy().ends_with(".corrupt")
        })
    }
    assert!(any_corrupt(&dir));
    let store = ResultStore::open(&dir).unwrap();
    assert!(store.load(&jobs[0]).is_some());
    assert!(ebcp::harness::preres::load(&dir, &jobs[0]).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
