//! Tier-1 tests for the experiment harness: job-hash stability
//! (property-based), worker-count-independent determinism, and
//! warm-cache incrementality.

use ebcp::core::EbcpConfig;
use ebcp::harness::{store, Harness, HarnessConfig, Job, ResultStore};
use ebcp::sim::{PrefetcherSpec, RunSpec, SimConfig, SimResult};
use ebcp::trace::WorkloadSpec;
use proptest::prelude::*;

/// A job built from a handful of free parameters, covering all four
/// workload presets, both scaled machines we test at, and the EBCP
/// design-space knobs that experiments actually sweep.
fn make_job(
    workload: usize,
    seed: u64,
    warm: u32,
    measure: u32,
    den: u64,
    degree: usize,
    prefetch: bool,
) -> Job {
    let presets = WorkloadSpec::all_presets();
    let spec = RunSpec {
        workload: presets[workload % presets.len()].clone().scaled(1, 32),
        seed,
        warmup_insts: u64::from(warm),
        measure_insts: u64::from(measure),
        sim: SimConfig::scaled_down(if den.is_multiple_of(2) { 16 } else { 8 }),
    };
    let pf = if prefetch {
        PrefetcherSpec::Ebcp(EbcpConfig::tuned().with_degree(1 + degree % 32))
    } else {
        PrefetcherSpec::None
    };
    Job::new(spec, pf)
}

proptest! {
    /// A job's content hash is a pure function of its content: rebuilding
    /// the job from the same parameters — the round trip every spec takes
    /// through clone/serialize boundaries — yields the same hash, and the
    /// canonical string it derives from is reproduced exactly.
    #[test]
    fn job_hash_stable_across_round_trips(
        workload in any::<u64>(),
        seed in any::<u64>(),
        warm in any::<u32>(),
        measure in any::<u32>(),
        den in any::<u64>(),
        degree in any::<u64>(),
        prefetch in any::<bool>(),
    ) {
        let a = make_job(workload as usize, seed, warm, measure, den, degree as usize, prefetch);
        let b = make_job(workload as usize, seed, warm, measure, den, degree as usize, prefetch);
        prop_assert_eq!(a.id(), b.id());
        prop_assert_eq!(a.canonical(), b.canonical());
        prop_assert_eq!(a.trace_key(), b.trace_key());
        // Clone round trip.
        prop_assert_eq!(a.clone().id(), a.id());
        // Seed is part of the identity (and of the trace).
        let c = make_job(workload as usize, seed.wrapping_add(1), warm, measure, den,
                         degree as usize, prefetch);
        prop_assert_ne!(a.id(), c.id());
        prop_assert_ne!(a.trace_key(), c.trace_key());
    }

    /// A `SimResult` survives the store's JSON codec bit-exactly for
    /// arbitrary counter values (including > 2^53, where an f64 number
    /// path would corrupt them).
    #[test]
    fn result_json_round_trips(
        insts in any::<u64>(),
        cycles in any::<u64>(),
        epochs in any::<u64>(),
        misses in any::<u64>(),
        issued in any::<u64>(),
        transfers in any::<u64>(),
    ) {
        let mut r = SimResult {
            prefetcher: "ebcp".to_owned(),
            workload: "database".to_owned(),
            insts,
            cycles,
            epochs,
            l2_load_misses: misses,
            pf_issued: issued,
            ..SimResult::default()
        };
        r.mem.read.transfers[1] = transfers;
        let text = store::result_to_json(&r).to_json_pretty();
        let v = ebcp::harness::json::parse(&text).unwrap();
        prop_assert_eq!(store::result_from_json(&v), Some(r));
    }
}

fn quick_jobs() -> Vec<Job> {
    let mut jobs = Vec::new();
    for (i, w) in WorkloadSpec::all_presets().into_iter().enumerate() {
        let spec = RunSpec {
            workload: w.scaled(1, 32),
            seed: 11 + i as u64,
            warmup_insts: 20_000,
            measure_insts: 10_000,
            sim: SimConfig::scaled_down(16),
        };
        jobs.push(Job::new(spec.clone(), PrefetcherSpec::None));
        jobs.push(Job::new(spec, PrefetcherSpec::Ebcp(EbcpConfig::tuned())));
    }
    jobs
}

/// `--jobs 8` and `--jobs 1` must produce identical results: the
/// simulator is deterministic, and harness assembly is independent of
/// worker scheduling.
#[test]
fn eight_workers_match_one_worker_exactly() {
    let jobs = quick_jobs();
    let one = Harness::new(HarnessConfig {
        jobs: 1,
        ..HarnessConfig::default()
    })
    .run(&jobs);
    let eight = Harness::new(HarnessConfig {
        jobs: 8,
        ..HarnessConfig::default()
    })
    .run(&jobs);
    assert_eq!(one, eight);
}

/// A second harness over a warm result store executes zero simulations.
#[test]
fn warm_store_executes_zero_simulations() {
    let dir = std::env::temp_dir().join(format!("ebcp-facade-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HarnessConfig {
        jobs: 2,
        store_dir: Some(dir.clone()),
        ..HarnessConfig::default()
    };
    let jobs = quick_jobs();

    let cold = Harness::new(cfg.clone());
    let a = cold.run(&jobs);
    assert_eq!(cold.summary().executed, jobs.len());

    let warm = Harness::new(cfg);
    let b = warm.run(&jobs);
    assert_eq!(
        warm.summary().executed,
        0,
        "warm cache must satisfy every job"
    );
    assert_eq!(warm.summary().disk_hits, jobs.len());
    assert_eq!(a, b, "cached results must be bit-identical to fresh ones");

    // The cache is content-addressed: every entry validates against its
    // job's canonical string.
    let store = ResultStore::open(&dir).unwrap();
    for job in &jobs {
        assert!(store.load(job).is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
