//! Cross-crate integration tests: whole-system behaviour on synthetic
//! workloads.

use std::sync::Arc;

use ebcp::core::EbcpConfig;
use ebcp::prefetch::{BaselineConfig, GhbConfig, SolihinConfig, StreamConfig};
use ebcp::sim::{PrefetcherSpec, RunSpec, SimConfig};
use ebcp::trace::WorkloadSpec;

/// A workload that recurs several times within a short trace while its
/// miss working set overflows the 1/16-scale L2.
fn workload() -> WorkloadSpec {
    WorkloadSpec {
        templates: 30,
        segments_per_template: 80,
        data_pool_lines: 1 << 14,
        cold_code_pool_lines: 2048,
        warm_pool_lines: 128,
        ..WorkloadSpec::database()
    }
}

fn spec() -> RunSpec {
    let w = workload();
    let interval = w.recurrence_interval();
    RunSpec {
        workload: w,
        seed: 3,
        warmup_insts: interval * 7 / 2,
        measure_insts: interval,
        sim: SimConfig::scaled_down(16),
    }
}

fn table_entries() -> u64 {
    (1 << 20) / 16
}

#[test]
fn figure9_ordering_holds_end_to_end() {
    let spec = spec();
    let trace = spec.materialize();
    let base = spec.run_on(&trace, &PrefetcherSpec::None);
    assert!(
        base.l2_load_misses > 500,
        "workload must miss: {}",
        base.l2_load_misses
    );

    let ebcp = spec.run_on(
        &trace,
        &PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(table_entries())),
    );
    let minus = spec.run_on(
        &trace,
        &PrefetcherSpec::Ebcp(EbcpConfig::comparison_minus().with_table_entries(table_entries())),
    );
    let solihin = spec.run_on(
        &trace,
        &PrefetcherSpec::baseline(
            "solihin-6,1",
            BaselineConfig::Solihin(SolihinConfig {
                entries: table_entries(),
                ..SolihinConfig::deep()
            }),
        ),
    );
    let stream = spec.run_on(
        &trace,
        &PrefetcherSpec::baseline("stream", BaselineConfig::Stream(StreamConfig::default())),
    );

    let imp = |r: &ebcp::sim::SimResult| r.improvement_over(&base);
    assert!(imp(&ebcp) > 0.08, "EBCP improvement {:.3}", imp(&ebcp));
    assert!(
        imp(&ebcp) > imp(&solihin),
        "EBCP ({:.3}) must beat Solihin 6,1 ({:.3})",
        imp(&ebcp),
        imp(&solihin)
    );
    assert!(
        imp(&ebcp) > imp(&minus),
        "EBCP ({:.3}) must beat EBCP-minus ({:.3})",
        imp(&ebcp),
        imp(&minus)
    );
    assert!(
        imp(&stream) < 0.05,
        "the stream prefetcher must be ineffective on irregular accesses: {:.3}",
        imp(&stream)
    );
}

#[test]
fn degree_sweep_is_monotone_up_to_saturation() {
    let spec = spec();
    let trace = spec.materialize();
    let base = spec.run_on(&trace, &PrefetcherSpec::None);
    let mut last = -1.0f64;
    for degree in [1usize, 2, 4, 8] {
        let cfg = EbcpConfig::idealized()
            .with_table_entries((8 << 20) / 16)
            .with_degree(degree);
        let r = spec.run_on(&trace, &PrefetcherSpec::Ebcp(cfg));
        let imp = r.improvement_over(&base);
        assert!(
            imp > last - 0.01,
            "improvement should not regress with degree: d{degree} {imp:.3} after {last:.3}"
        );
        last = imp;
    }
}

#[test]
fn tiny_correlation_table_erodes_performance() {
    let spec = spec();
    let trace = spec.materialize();
    let base = spec.run_on(&trace, &PrefetcherSpec::None);
    let big = spec.run_on(
        &trace,
        &PrefetcherSpec::Ebcp(EbcpConfig::tuned().with_table_entries(1 << 16)),
    );
    let tiny = spec.run_on(
        &trace,
        &PrefetcherSpec::Ebcp(EbcpConfig::tuned().with_table_entries(1 << 6)),
    );
    assert!(
        big.improvement_over(&base) > tiny.improvement_over(&base) + 0.03,
        "a 64-entry table must alias badly: big {:.3} vs tiny {:.3}",
        big.improvement_over(&base),
        tiny.improvement_over(&base)
    );
}

#[test]
fn coverage_and_accuracy_are_probabilities() {
    let spec = spec();
    let trace = spec.materialize();
    for pf in [
        PrefetcherSpec::Ebcp(EbcpConfig::tuned().with_table_entries(table_entries())),
        PrefetcherSpec::baseline("ghb-large", BaselineConfig::Ghb(GhbConfig::large())),
    ] {
        let r = spec.run_on(&trace, &pf);
        assert!(
            (0.0..=1.0).contains(&r.coverage()),
            "{} coverage {}",
            r.prefetcher,
            r.coverage()
        );
        assert!(
            (0.0..=1.0).contains(&r.accuracy()),
            "{} accuracy {}",
            r.prefetcher,
            r.accuracy()
        );
        assert!(r.pf_useful() <= r.pf_issued + r.partial_hits);
    }
}

#[test]
fn streaming_and_materialized_runs_agree() {
    let spec = spec();
    let trace = spec.materialize();
    let program = Arc::new(ebcp::trace::template::WorkloadProgram::build(
        &spec.workload,
    ));
    let pf = PrefetcherSpec::Ebcp(EbcpConfig::tuned().with_table_entries(table_entries()));
    let a = spec.run_on(&trace, &pf);
    let b = spec.run_streaming(program, &pf);
    assert_eq!(a, b, "streamed and materialized runs must be identical");
}

#[test]
fn prefetching_never_hurts_baseline_demand_traffic() {
    // The paper's priority rule: demand accesses are never delayed by
    // prefetches or table traffic. Consequently CPI with any prefetcher
    // can be at most marginally worse than baseline (partial-window
    // second-order effects only).
    let spec = spec();
    let trace = spec.materialize();
    let base = spec.run_on(&trace, &PrefetcherSpec::None);
    for (name, cfg) in BaselineConfig::figure9_roster() {
        let r = spec.run_on(&trace, &PrefetcherSpec::baseline(name, cfg));
        assert!(
            r.cpi() <= base.cpi() * 1.02,
            "{name}: cpi {:.3} vs baseline {:.3}",
            r.cpi(),
            base.cpi()
        );
    }
}
