//! The paper's running example (§3.1-§3.2), end to end through the real
//! engine: a recurring miss sequence A..I in epochs
//! {A,B} {C,D,E} {F,G} {H,I}. Without prefetching the final occurrence
//! costs 4 epochs; with the epoch-based correlation prefetcher it costs
//! 2 (A's entry prefetches F,G,H,I; C's entry prefetches H,I).

use ebcp::core::EbcpConfig;
use ebcp::sim::{Engine, PrefetcherSpec, SimConfig};
use ebcp::trace::{Op, TraceRecord};
use ebcp::types::{Addr, LineAddr, Pc};

fn lines() -> Vec<LineAddr> {
    (0..9u64)
        .map(|i| LineAddr::from_index(0x10_0000 + i * 0x111))
        .collect()
}

fn filler(t: &mut Vec<TraceRecord>, n: usize) {
    for k in 0..n {
        t.push(TraceRecord::alu(Pc::new(0x4000 + (k as u64 % 16) * 4)));
    }
}

fn occurrence(t: &mut Vec<TraceRecord>, lines: &[LineAddr]) {
    let epochs: [&[usize]; 4] = [&[0, 1], &[2, 3, 4], &[5, 6], &[7, 8]];
    for epoch in epochs {
        filler(t, 200);
        for (k, &i) in epoch.iter().enumerate() {
            t.push(TraceRecord::new(
                Pc::new(0x4000 + i as u64 * 4),
                Op::Load {
                    addr: Addr::new(lines[i].base().get()),
                    feeds_mispredict: k + 1 == epoch.len(),
                },
            ));
        }
    }
}

fn evict_all(t: &mut Vec<TraceRecord>, round: u64, l2_lines: u64) {
    for i in 0..l2_lines * 3 {
        filler(t, 200);
        t.push(TraceRecord::load(
            Pc::new(0x4100),
            Addr::new((0x80_0000 + round * 0x10_0000 + i) * 64),
        ));
    }
}

fn build_trace() -> (Vec<TraceRecord>, usize) {
    let lines = lines();
    let l2_lines = SimConfig::scaled_down(16).l2.lines();
    let mut trace = Vec::new();
    for round in 0..6u64 {
        occurrence(&mut trace, &lines);
        evict_all(&mut trace, round, l2_lines);
    }
    let measure_from = trace.len();
    occurrence(&mut trace, &lines);
    filler(&mut trace, 3000);
    (trace, measure_from)
}

fn run(pf: &PrefetcherSpec) -> (u64, u64, u64) {
    let (trace, measure_from) = build_trace();
    let mut engine = Engine::new(SimConfig::scaled_down(16), pf.build());
    for rec in &trace[..measure_from] {
        engine.step(rec);
    }
    engine.reset_stats();
    for rec in &trace[measure_from..] {
        engine.step(rec);
    }
    let r = engine.result("anatomy");
    (r.epochs, r.l2_load_misses, r.averted_load)
}

#[test]
fn baseline_needs_four_epochs() {
    let (epochs, misses, averted) = run(&PrefetcherSpec::None);
    assert_eq!(epochs, 4, "the example has exactly 4 epochs");
    assert_eq!(misses, 9, "all of A..I miss");
    assert_eq!(averted, 0);
}

#[test]
fn ebcp_eliminates_epochs() {
    let (base_epochs, ..) = run(&PrefetcherSpec::None);
    let (epochs, _misses, averted) = run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
    assert!(
        averted >= 4,
        "F,G,H,I (at least) must be served by the buffer, got {averted}"
    );
    assert!(
        epochs <= base_epochs - 2,
        "EBCP should remove at least two epochs ({base_epochs} -> {epochs})"
    );
}

#[test]
fn ebcp_minus_is_less_effective_here() {
    // EBCP-minus stores epochs +1/+2 under each trigger: its prefetches
    // for the *next* epoch cannot be timely, so fewer epochs disappear.
    let (minus_epochs, _, minus_averted) = run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned_minus()));
    let (epochs, _, averted) = run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
    assert!(
        epochs <= minus_epochs,
        "standard EBCP ({epochs}) must not need more epochs than minus ({minus_epochs})"
    );
    assert!(averted >= minus_averted.min(4));
}
