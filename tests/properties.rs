//! Property-based tests over the core data structures and the trace
//! substrate.

use std::collections::{HashMap, VecDeque};

use ebcp::core::{compress_line, decompress_line, CorrelationTable, Emab};
use ebcp::mem::{CacheGeometry, MshrFile, PrefetchBuffer, SetAssocCache};
use ebcp::trace::{read_trace, write_trace, Op, TraceGenerator, TraceRecord, WorkloadSpec};
use ebcp::types::{Addr, LineAddr, Pc, LINE_BYTES};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Alu),
        (any::<u64>(), any::<bool>()).prop_map(|(a, f)| Op::Load {
            addr: Addr::new(a),
            feeds_mispredict: f
        }),
        any::<u64>().prop_map(|a| Op::Store { addr: Addr::new(a) }),
        any::<bool>().prop_map(|m| Op::Branch { mispredicted: m }),
        Just(Op::Serialize),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (any::<u64>(), arb_op()).prop_map(|(pc, op)| TraceRecord::new(Pc::new(pc), op))
}

proptest! {
    /// The binary trace codec round-trips arbitrary records.
    #[test]
    fn trace_codec_round_trips(trace in proptest::collection::vec(arb_record(), 0..200)) {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Address compression round-trips whenever the upper bits match.
    #[test]
    fn compression_round_trips(key in any::<u64>(), low in 0u64..(1 << 40)) {
        let key = LineAddr::from_index(key);
        let addr = LineAddr::from_index((key.index() >> 40 << 40) | low);
        let c = compress_line(key, addr).expect("same upper bits must compress");
        prop_assert_eq!(decompress_line(key, c), addr);
    }

    /// The cache never exceeds its capacity and a fill is always
    /// immediately visible.
    #[test]
    fn cache_capacity_invariant(lines in proptest::collection::vec(0u64..4096, 1..300)) {
        let geom = CacheGeometry::new(64 * LINE_BYTES, 4); // 16 sets x 4 ways
        let mut cache = SetAssocCache::new(geom);
        for &l in &lines {
            let line = LineAddr::from_index(l);
            cache.fill(line, false);
            prop_assert!(cache.probe(line), "a just-filled line must be present");
            prop_assert!(cache.occupancy() <= geom.lines());
        }
    }

    /// LRU: among lines mapping to one set, the most recently filled
    /// `ways` lines are always resident.
    #[test]
    fn cache_lru_keeps_most_recent(ways_used in proptest::collection::vec(0u64..8, 4..60)) {
        let geom = CacheGeometry::new(4 * LINE_BYTES, 4); // one set, 4 ways
        let mut cache = SetAssocCache::new(geom);
        let mut recent: VecDeque<u64> = VecDeque::new();
        for &t in &ways_used {
            let line = LineAddr::from_index(t);
            cache.fill(line, false);
            recent.retain(|&x| x != t);
            recent.push_back(t);
            if recent.len() > 4 {
                recent.pop_front();
            }
            for &r in &recent {
                prop_assert!(cache.probe(LineAddr::from_index(r)),
                    "recently used line {r} evicted too early");
            }
        }
    }

    /// MSHR occupancy equals the number of distinct outstanding lines
    /// and never exceeds capacity.
    #[test]
    fn mshr_matches_reference(ops in proptest::collection::vec((0u64..32, any::<bool>()), 1..200)) {
        let mut mshr = MshrFile::new(8);
        let mut reference: HashMap<u64, ()> = HashMap::new();
        for (line, release) in ops {
            let l = LineAddr::from_index(line);
            if release {
                mshr.release(l);
                reference.remove(&line);
            } else if reference.contains_key(&line) || reference.len() < 8 {
                mshr.allocate(l);
                reference.insert(line, ());
            } else {
                prop_assert_eq!(mshr.allocate(l), ebcp::mem::MshrOutcome::Full);
            }
            prop_assert_eq!(mshr.len(), reference.len());
            prop_assert!(mshr.len() <= 8);
        }
    }

    /// The prefetch buffer never reports more hits than inserts, and a
    /// consumed line is gone.
    #[test]
    fn prefetch_buffer_accounting(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut pb = PrefetchBuffer::new(16, 4);
        for (line, consume) in ops {
            let l = LineAddr::from_index(line);
            if consume {
                if pb.lookup_consume(l).is_some() {
                    prop_assert!(!pb.contains(l));
                }
            } else {
                pb.insert(l, line);
                prop_assert!(pb.contains(l));
            }
            let s = pb.stats();
            prop_assert!(s.hits <= s.inserts + s.duplicate_inserts);
            prop_assert!(pb.occupancy() <= 16);
        }
    }

    /// The correlation table entry holds at most `slots` addresses, in
    /// MRU order, and learning is idempotent for repeated inputs.
    #[test]
    fn correlation_table_slots_bounded(
        addr_sets in proptest::collection::vec(
            proptest::collection::vec(0u64..100, 1..12), 1..20)
    ) {
        let mut t = CorrelationTable::new(64, 6);
        let key = LineAddr::from_index(7);
        for addrs in &addr_sets {
            let lines: Vec<LineAddr> = addrs.iter().map(|&a| LineAddr::from_index(a)).collect();
            t.learn(key, &lines);
            let e = t.lookup(key).unwrap();
            prop_assert!(e.len() <= 6);
            // The first (older-epoch) addresses of this learn are MRU.
            prop_assert_eq!(e.addrs()[0], lines[0]);
            // No duplicates within an entry.
            let mut seen = std::collections::HashSet::new();
            for a in e.addrs() {
                prop_assert!(seen.insert(*a), "duplicate address in entry");
            }
        }
    }

    /// EMAB learning keys always come from the retiring epoch's trigger
    /// and the payload only contains recorded addresses.
    #[test]
    fn emab_learning_is_consistent(
        epochs in proptest::collection::vec(proptest::collection::vec(0u64..1000, 0..5), 5..20)
    ) {
        let mut emab = Emab::new(4, 32);
        let mut history: Vec<Vec<u64>> = Vec::new();
        for epoch in &epochs {
            if let Some(learn) = emab.begin_epoch() {
                let retired = history.len() - 4;
                prop_assert_eq!(learn.key.index(), history[retired][0],
                    "key must be the retiring epoch's trigger");
                let expect: Vec<u64> = history[retired + 2]
                    .iter()
                    .chain(history[retired + 3].iter())
                    .copied()
                    .collect();
                let got: Vec<u64> = learn.addrs.iter().map(|l| l.index()).collect();
                prop_assert_eq!(got, expect, "payload must be epochs +2 and +3");
            }
            for &a in epoch {
                emab.record(LineAddr::from_index(a));
            }
            history.push(epoch.clone());
        }
    }

    /// Trace generation is deterministic and changes with the seed.
    #[test]
    fn generator_determinism(seed in any::<u64>()) {
        let spec = WorkloadSpec { templates: 4, ..WorkloadSpec::specjbb2005().scaled(1, 64) };
        let a: Vec<_> = TraceGenerator::new(&spec, seed).take(3000).collect();
        let b: Vec<_> = TraceGenerator::new(&spec, seed).take(3000).collect();
        prop_assert_eq!(&a, &b);
        let c: Vec<_> = TraceGenerator::new(&spec, seed.wrapping_add(1)).take(3000).collect();
        prop_assert_ne!(&a, &c);
    }
}

/// A non-proptest sanity check kept here because it exercises the same
/// reference-model style: EMAB learning in the exact paper scenario.
#[test]
fn emab_paper_scenario() {
    let mut emab = Emab::new(4, 32);
    let epochs: [&[u64]; 4] = [&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
    for e in epochs {
        assert!(emab.begin_epoch().is_none());
        for &a in e {
            emab.record(LineAddr::from_index(a));
        }
    }
    let learn = emab.begin_epoch().unwrap();
    assert_eq!(learn.key, LineAddr::from_index(1));
    assert_eq!(
        learn.addrs,
        vec![6u64, 7, 8, 9]
            .into_iter()
            .map(LineAddr::from_index)
            .collect::<Vec<_>>()
    );
}
