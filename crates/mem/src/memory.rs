//! Main memory behind the split-transaction buses.
//!
//! Combines the read and write [`Bus`]es with the 500-cycle unloaded DRAM
//! latency of §4.4. A read's completion time is
//! `max(now + latency, transfer_end)` — the data transfer is pipelined
//! under the access latency when the bus is idle, so an unloaded miss
//! completes in exactly `latency` cycles, and a loaded one is pushed out
//! by queueing on its bus.

use ebcp_types::{Cycle, MemClass};
use serde::{Deserialize, Serialize};

use crate::bus::{Bus, BusConfig, BusStats};

/// Static configuration of the memory system.
///
/// # Examples
///
/// ```
/// use ebcp_mem::MemConfig;
/// let m = MemConfig::default();
/// assert_eq!(m.latency, 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Unloaded access latency in core cycles (§4.4: 500).
    pub latency: Cycle,
    /// Read bus (demand fills, prefetch fills, table reads).
    pub read_bus: BusConfig,
    /// Write bus (table writes, writebacks).
    pub write_bus: BusConfig,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            latency: 500,
            read_bus: BusConfig::read_default(),
            write_bus: BusConfig::write_default(),
        }
    }
}

impl MemConfig {
    /// The Figure 8 bandwidth points: scales both buses by `num/den`
    /// relative to the default (e.g. `scaled_bandwidth(1, 3)` is the
    /// 3.2 GB/s read + 1.6 GB/s write configuration).
    #[must_use]
    pub const fn scaled_bandwidth(mut self, num: u64, den: u64) -> Self {
        self.read_bus = self.read_bus.scaled(num, den);
        self.write_bus = self.write_bus.scaled(num, den);
        self
    }
}

/// Outcome of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOutcome {
    /// The request was accepted; data (for reads) is available at `done`.
    Done {
        /// Completion cycle.
        done: Cycle,
    },
    /// A low-priority request was dropped because its bus is saturated.
    Dropped,
}

impl MemOutcome {
    /// The completion cycle, if the request was accepted.
    pub const fn done(self) -> Option<Cycle> {
        match self {
            MemOutcome::Done { done } => Some(done),
            MemOutcome::Dropped => None,
        }
    }
}

/// Aggregate memory-traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Read-bus statistics.
    pub read: BusStats,
    /// Write-bus statistics.
    pub write: BusStats,
}

impl MemStats {
    /// Adds `other`'s counters into `self` (see [`BusStats::accumulate`]).
    pub fn accumulate(&mut self, other: &MemStats) {
        self.read.accumulate(&other.read);
        self.write.accumulate(&other.write);
    }
}

/// The main-memory timing model.
///
/// # Examples
///
/// ```
/// use ebcp_mem::{MemConfig, MemorySystem};
/// use ebcp_types::MemClass;
///
/// let mut mem = MemorySystem::new(MemConfig::default());
/// let done = mem.request(1000, MemClass::Demand).done().unwrap();
/// assert_eq!(done, 1500); // unloaded: exactly the 500-cycle latency
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemConfig,
    read_bus: Bus,
    write_bus: Bus,
}

impl MemorySystem {
    /// Creates an idle memory system.
    pub fn new(config: MemConfig) -> Self {
        MemorySystem {
            config,
            read_bus: Bus::new(config.read_bus),
            write_bus: Bus::new(config.write_bus),
        }
    }

    /// This system's configuration.
    pub const fn config(&self) -> MemConfig {
        self.config
    }

    /// Issues a 64 B request of the given class at core cycle `now`.
    ///
    /// Reads (demand, prefetch, table-read) complete at
    /// `max(now + latency, transfer_end)`. Writes (table-write, writeback)
    /// complete when their wire transfer ends — nothing waits on them.
    /// Low-priority requests may be [`MemOutcome::Dropped`].
    pub fn request(&mut self, now: Cycle, class: MemClass) -> MemOutcome {
        if class.uses_read_bus() {
            match self.read_bus.request(now, class) {
                Some(grant) => MemOutcome::Done {
                    done: (now + self.config.latency).max(grant.end),
                },
                None => MemOutcome::Dropped,
            }
        } else {
            match self.write_bus.request(now, class) {
                Some(grant) => MemOutcome::Done { done: grant.end },
                None => MemOutcome::Dropped,
            }
        }
    }

    /// Read-bus backlog relative to `now` (used by prefetchers/engine to
    /// gauge saturation).
    pub fn read_backlog(&self, now: Cycle) -> Cycle {
        self.read_bus.backlog(now)
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> MemStats {
        MemStats {
            read: self.read_bus.stats(),
            write: self.write_bus.stats(),
        }
    }

    /// Read-bus utilization over `elapsed` cycles.
    pub fn read_utilization(&self, elapsed: Cycle) -> f64 {
        self.read_bus.utilization(elapsed)
    }

    /// Write-bus utilization over `elapsed` cycles.
    pub fn write_utilization(&self, elapsed: Cycle) -> f64 {
        self.write_bus.utilization(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_read_takes_exactly_latency() {
        let mut mem = MemorySystem::new(MemConfig::default());
        assert_eq!(mem.request(0, MemClass::Demand).done(), Some(500));
        // A much later request is also unloaded again.
        assert_eq!(mem.request(10_000, MemClass::Demand).done(), Some(10_500));
    }

    #[test]
    fn loaded_read_pushed_by_bus_queueing() {
        let cfg = MemConfig::default().scaled_bandwidth(1, 3); // 60-cycle transfers
        let mut mem = MemorySystem::new(cfg);
        // 10 simultaneous demand misses: the last transfer ends at 600,
        // past the 500-cycle latency.
        let mut last = 0;
        for _ in 0..10 {
            last = mem.request(0, MemClass::Demand).done().unwrap();
        }
        assert_eq!(last, 600);
    }

    #[test]
    fn writes_complete_at_transfer_end() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let done = mem.request(100, MemClass::Writeback).done().unwrap();
        assert_eq!(done, 140); // 40-cycle write-bus transfer, no DRAM latency stall
    }

    #[test]
    fn table_read_uses_read_bus_and_latency() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let done = mem.request(0, MemClass::TableRead).done().unwrap();
        assert_eq!(done, 500);
        assert_eq!(mem.stats().read.transfers_for(MemClass::TableRead), 1);
    }

    #[test]
    fn saturated_prefetches_drop() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut dropped = 0;
        for _ in 0..200 {
            if mem.request(0, MemClass::Prefetch) == MemOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!(
            dropped > 0,
            "200 simultaneous prefetches must exceed the window"
        );
        assert_eq!(mem.stats().read.dropped_for(MemClass::Prefetch), dropped);
    }

    #[test]
    fn backlog_visible() {
        let mut mem = MemorySystem::new(MemConfig::default());
        for _ in 0..5 {
            mem.request(0, MemClass::Prefetch);
        }
        assert_eq!(mem.read_backlog(0), 100);
    }
}
