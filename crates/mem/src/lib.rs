//! Memory-hierarchy substrate for the EBCP reproduction.
//!
//! This crate provides every storage and timing component of the simulated
//! machine below the core:
//!
//! * [`SetAssocCache`] — parametric set-associative caches with LRU
//!   replacement and dirty-line tracking (used for L1I, L1D and L2).
//! * [`MshrFile`] — miss status holding registers with primary/secondary
//!   miss merging, bounding outstanding off-chip accesses.
//! * [`PrefetchBuffer`] — the small 4-way set-associative buffer that all
//!   prefetchers in the paper's evaluation deposit lines into; it is
//!   searched in parallel with the L2 and lines are promoted to the
//!   regular caches only on a demand hit (§5.2).
//! * [`Bus`] and [`MemorySystem`] — the split-transaction read/write buses
//!   (9.6 GB/s + 4.8 GB/s by default) and the 500-cycle main memory behind
//!   them, with the paper's strict priority rule: demand accesses are
//!   never delayed by prefetches or correlation-table traffic (§3.4.4),
//!   and low-priority requests are dropped when the bus saturates.
//!
//! # Examples
//!
//! ```
//! use ebcp_mem::{CacheGeometry, SetAssocCache};
//! use ebcp_types::LineAddr;
//!
//! // The default 2 MB 4-way L2.
//! let mut l2 = SetAssocCache::new(CacheGeometry::new(2 << 20, 4));
//! let line = LineAddr::from_index(0x1234);
//! assert!(!l2.access(line));
//! l2.fill(line, false);
//! assert!(l2.access(line));
//! ```

pub mod bus;
pub mod cache;
pub mod memory;
pub mod mshr;
pub mod prefetch_buffer;
pub mod simd;

pub use bus::{Bus, BusConfig, BusStats};
pub use cache::{CacheGeometry, Eviction, SetAssocCache};
pub use memory::{MemConfig, MemOutcome, MemStats, MemorySystem};
pub use mshr::{MshrFile, MshrOutcome};
pub use prefetch_buffer::{PrefetchBuffer, PrefetchBufferStats};
pub use simd::SimdTier;
