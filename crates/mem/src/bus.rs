//! Split-transaction bus model with strict demand priority.
//!
//! §4.4 of the paper: a 600 MHz interconnect with a 16 B read bus
//! (9.6 GB/s) and an 8 B write bus (4.8 GB/s) behind a 3 GHz core. One
//! 64 B line therefore occupies the read bus for 4 bus cycles = 20 core
//! cycles, and the write bus for 8 bus cycles = 40 core cycles.
//!
//! §3.4.4 / §4.4 priority rule: *demand accesses are never delayed by
//! prefetches or correlation-table traffic*. The model realises this with
//! **dual timelines**:
//!
//! * `next_free_demand` — a timeline containing only demand transfers.
//!   Demand requests are granted against it, so a backlog of low-priority
//!   traffic can never delay them (ideal preemption).
//! * `next_free_any` — the union timeline carrying all traffic. Demand
//!   transfers push it too (they really do consume the wire); low-priority
//!   requests are granted against it, and are **dropped** when the backlog
//!   exceeds a saturation window — this is how "prefetches may sometimes
//!   be dropped when the available memory bandwidth is saturated" (§5.2.1)
//!   comes about.

use ebcp_types::{Cycle, MemClass, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Static configuration of one bus.
///
/// # Examples
///
/// ```
/// use ebcp_mem::BusConfig;
/// let read = BusConfig::read_default(); // 16 B @ 600 MHz behind 3 GHz
/// assert_eq!(read.line_transfer_cycles(), 20);
/// assert!((read.bandwidth_gbps(3.0e9) - 9.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Bus width in bytes per bus cycle.
    pub width_bytes: u64,
    /// Core cycles per bus cycle (core clock / bus clock).
    pub core_cycles_per_bus_cycle: u64,
    /// Backlog (in core cycles) beyond which low-priority requests are
    /// dropped instead of queued.
    pub saturation_window: Cycle,
}

impl BusConfig {
    /// The default 9.6 GB/s read bus (16 B wide, 600 MHz, 3 GHz core).
    pub const fn read_default() -> Self {
        BusConfig {
            width_bytes: 16,
            core_cycles_per_bus_cycle: 5,
            saturation_window: 2000,
        }
    }

    /// The default 4.8 GB/s write bus (8 B wide, 600 MHz, 3 GHz core).
    pub const fn write_default() -> Self {
        BusConfig {
            width_bytes: 8,
            core_cycles_per_bus_cycle: 5,
            saturation_window: 2000,
        }
    }

    /// A bus with `factor`× the default width's bandwidth (used for the
    /// Figure 8 sweep: 3.2/6.4/9.6 GB/s read buses are modelled by
    /// scaling the transfer time).
    #[must_use]
    pub const fn scaled(self, num: u64, den: u64) -> Self {
        // Scale bandwidth by num/den by scaling cycles-per-bus-cycle the
        // other way; keep integer math by scaling width instead.
        BusConfig {
            width_bytes: self.width_bytes * num,
            core_cycles_per_bus_cycle: self.core_cycles_per_bus_cycle * den,
            saturation_window: self.saturation_window,
        }
    }

    /// Core cycles one 64 B line transfer occupies this bus.
    pub const fn line_transfer_cycles(self) -> Cycle {
        // ceil(LINE_BYTES / width) * ratio
        LINE_BYTES.div_ceil(self.width_bytes) * self.core_cycles_per_bus_cycle
    }

    /// Peak bandwidth in GB/s given the core frequency in Hz.
    pub fn bandwidth_gbps(self, core_hz: f64) -> f64 {
        let bytes_per_core_cycle = self.width_bytes as f64 / self.core_cycles_per_bus_cycle as f64;
        bytes_per_core_cycle * core_hz / 1e9
    }
}

/// Traffic statistics of one bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Transfers granted, indexed by [`MemClass`] discriminant order
    /// (demand, prefetch, table-read, table-write, writeback).
    pub transfers: [u64; 5],
    /// Low-priority requests dropped due to saturation.
    pub dropped: [u64; 5],
    /// Core cycles of wire occupancy, per class.
    pub busy_cycles: [u64; 5],
}

impl BusStats {
    /// Adds `other`'s counters into `self` (all fields are additive
    /// event counts, so segment-spliced statistics sum exactly).
    pub fn accumulate(&mut self, other: &BusStats) {
        for i in 0..self.transfers.len() {
            self.transfers[i] += other.transfers[i];
            self.dropped[i] += other.dropped[i];
            self.busy_cycles[i] += other.busy_cycles[i];
        }
    }

    fn class_idx(class: MemClass) -> usize {
        MemClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL")
    }

    /// Transfers granted for `class`.
    pub fn transfers_for(&self, class: MemClass) -> u64 {
        self.transfers[Self::class_idx(class)]
    }

    /// Requests dropped for `class`.
    pub fn dropped_for(&self, class: MemClass) -> u64 {
        self.dropped[Self::class_idx(class)]
    }

    /// Wire occupancy for `class`, in core cycles.
    pub fn busy_for(&self, class: MemClass) -> u64 {
        self.busy_cycles[Self::class_idx(class)]
    }

    /// Total wire occupancy in core cycles.
    pub fn busy_total(&self) -> u64 {
        self.busy_cycles.iter().sum()
    }
}

/// A granted bus transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Core cycle the transfer starts.
    pub start: Cycle,
    /// Core cycle the transfer ends (wire released).
    pub end: Cycle,
}

/// One split-transaction bus with the dual-timeline priority model.
///
/// # Examples
///
/// ```
/// use ebcp_mem::{Bus, BusConfig};
/// use ebcp_types::MemClass;
///
/// let mut bus = Bus::new(BusConfig::read_default());
/// let g = bus.request(100, MemClass::Demand).expect("demand never dropped");
/// assert_eq!(g.start, 100);
/// assert_eq!(g.end, 120); // 20-cycle line transfer
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    next_free_demand: Cycle,
    next_free_any: Cycle,
    stats: BusStats,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        Bus {
            config,
            next_free_demand: 0,
            next_free_any: 0,
            stats: BusStats::default(),
        }
    }

    /// This bus's configuration.
    pub const fn config(&self) -> BusConfig {
        self.config
    }

    /// Requests a 64 B line transfer at core cycle `now`.
    ///
    /// Demand-class requests are always granted, scheduled against the
    /// demand-only timeline. Low-priority requests are granted against the
    /// union timeline, or return `None` (dropped) when the backlog exceeds
    /// the saturation window.
    pub fn request(&mut self, now: Cycle, class: MemClass) -> Option<Grant> {
        let t = self.config.line_transfer_cycles();
        let idx = BusStats::class_idx(class);
        if class.is_demand() {
            let start = now.max(self.next_free_demand);
            let end = start + t;
            self.next_free_demand = end;
            // Demand traffic consumes union-timeline capacity too.
            self.next_free_any = self.next_free_any.max(start) + t;
            self.stats.transfers[idx] += 1;
            self.stats.busy_cycles[idx] += t;
            Some(Grant { start, end })
        } else {
            let start = now.max(self.next_free_any);
            if start - now > self.config.saturation_window {
                self.stats.dropped[idx] += 1;
                return None;
            }
            let end = start + t;
            self.next_free_any = end;
            self.stats.transfers[idx] += 1;
            self.stats.busy_cycles[idx] += t;
            Some(Grant { start, end })
        }
    }

    /// Current backlog of the union timeline relative to `now`, in cycles.
    pub fn backlog(&self, now: Cycle) -> Cycle {
        self.next_free_any.saturating_sub(now)
    }

    /// Traffic statistics so far.
    pub const fn stats(&self) -> BusStats {
        self.stats
    }

    /// Wire utilization over `elapsed` core cycles (can exceed 1.0 only if
    /// `elapsed` under-counts; callers pass total simulated cycles).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stats.busy_total() as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycle_math() {
        assert_eq!(BusConfig::read_default().line_transfer_cycles(), 20);
        assert_eq!(BusConfig::write_default().line_transfer_cycles(), 40);
    }

    #[test]
    fn scaled_bandwidth() {
        // 9.6 GB/s scaled by 1/3 -> 3.2 GB/s, transfer takes 3x longer.
        let low = BusConfig::read_default().scaled(1, 3);
        assert_eq!(low.line_transfer_cycles(), 60);
        assert!((low.bandwidth_gbps(3.0e9) - 3.2).abs() < 1e-9);
        // Scaling by 2/3 -> 6.4 GB/s.
        let mid = BusConfig::read_default().scaled(2, 3);
        assert!((mid.bandwidth_gbps(3.0e9) - 6.4).abs() < 1e-9);
        assert_eq!(mid.line_transfer_cycles(), 30);
    }

    #[test]
    fn demand_back_to_back_serializes() {
        let mut bus = Bus::new(BusConfig::read_default());
        let a = bus.request(0, MemClass::Demand).unwrap();
        let b = bus.request(0, MemClass::Demand).unwrap();
        assert_eq!(a.end, 20);
        assert_eq!(b.start, 20);
        assert_eq!(b.end, 40);
    }

    #[test]
    fn demand_never_delayed_by_prefetch_backlog() {
        let mut bus = Bus::new(BusConfig::read_default());
        // Queue a pile of prefetches.
        for _ in 0..50 {
            let _ = bus.request(0, MemClass::Prefetch);
        }
        let g = bus.request(0, MemClass::Demand).unwrap();
        assert_eq!(g.start, 0, "demand must preempt low-priority backlog");
    }

    #[test]
    fn prefetch_sees_demand_occupancy() {
        let mut bus = Bus::new(BusConfig::read_default());
        bus.request(0, MemClass::Demand).unwrap();
        let p = bus.request(0, MemClass::Prefetch).unwrap();
        assert!(p.start >= 20, "prefetch must wait for the demand transfer");
    }

    #[test]
    fn saturation_drops_low_priority() {
        let cfg = BusConfig {
            saturation_window: 100,
            ..BusConfig::read_default()
        };
        let mut bus = Bus::new(cfg);
        let mut granted = 0;
        let mut dropped = 0;
        for _ in 0..20 {
            match bus.request(0, MemClass::Prefetch) {
                Some(_) => granted += 1,
                None => dropped += 1,
            }
        }
        // 100-cycle window / 20-cycle transfers -> ~6 fit, rest dropped.
        assert!((5..=7).contains(&granted), "granted={granted}");
        assert!(dropped > 0);
        assert_eq!(bus.stats().dropped_for(MemClass::Prefetch), dropped);
    }

    #[test]
    fn demand_is_never_dropped() {
        let cfg = BusConfig {
            saturation_window: 0,
            ..BusConfig::read_default()
        };
        let mut bus = Bus::new(cfg);
        for _ in 0..100 {
            assert!(bus.request(0, MemClass::Demand).is_some());
        }
    }

    #[test]
    fn backlog_reporting() {
        let mut bus = Bus::new(BusConfig::read_default());
        bus.request(0, MemClass::Prefetch).unwrap();
        assert_eq!(bus.backlog(0), 20);
        assert_eq!(bus.backlog(100), 0);
    }

    #[test]
    fn stats_accounting() {
        let mut bus = Bus::new(BusConfig::read_default());
        bus.request(0, MemClass::Demand).unwrap();
        bus.request(0, MemClass::Prefetch).unwrap();
        let s = bus.stats();
        assert_eq!(s.transfers_for(MemClass::Demand), 1);
        assert_eq!(s.transfers_for(MemClass::Prefetch), 1);
        assert_eq!(s.busy_total(), 40);
        assert!(bus.utilization(400) > 0.09 && bus.utilization(400) < 0.11);
    }
}
