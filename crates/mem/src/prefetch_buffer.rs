//! The prefetch buffer.
//!
//! Every prefetcher in the paper's evaluation deposits its lines into a
//! small buffer that is searched in parallel with the L2 cache; lines are
//! copied into the regular caches only when a demand access actually uses
//! them (§5.2, §5.3). The tuned configuration is 64 entries, 4-way
//! set-associative — 512 B of storage (Figure 7).
//!
//! Each entry also carries an opaque `origin` token. For EBCP this is the
//! index of the correlation-table entry that generated the prefetch, so a
//! hit can schedule the table-entry LRU update (§3.4.3); other prefetchers
//! may use it for their own bookkeeping or pass zero.

use ebcp_types::LineAddr;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: LineAddr,
    origin: u64,
    valid: bool,
    lru: u64,
}

/// Usage statistics of a [`PrefetchBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchBufferStats {
    /// Lines inserted.
    pub inserts: u64,
    /// Demand hits (lines consumed).
    pub hits: u64,
    /// Valid lines evicted before ever being used.
    pub evicted_unused: u64,
    /// Inserts that found the line already buffered.
    pub duplicate_inserts: u64,
}

/// A small set-associative buffer holding prefetched lines.
///
/// # Examples
///
/// ```
/// use ebcp_mem::PrefetchBuffer;
/// use ebcp_types::LineAddr;
///
/// let mut pb = PrefetchBuffer::new(64, 4);
/// let line = LineAddr::from_index(0x42);
/// pb.insert(line, 7);
/// assert_eq!(pb.lookup_consume(line), Some(7)); // hit consumes the line
/// assert_eq!(pb.lookup_consume(line), None);
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    slots: Vec<Slot>,
    sets: usize,
    ways: usize,
    stamp: u64,
    stats: PrefetchBufferStats,
}

impl PrefetchBuffer {
    /// Creates a buffer with `entries` total slots and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a multiple of `ways`, the resulting set
    /// count is a power of two, and both are non-zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "buffer must have entries and ways");
        assert_eq!(entries % ways, 0, "entries must be a multiple of ways");
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        PrefetchBuffer {
            slots: vec![
                Slot {
                    line: LineAddr::from_index(0),
                    origin: 0,
                    valid: false,
                    lru: 0
                };
                entries
            ],
            sets,
            ways,
            stamp: 0,
            stats: PrefetchBufferStats::default(),
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.slots.len()
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.index() as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.slots[i].valid && self.slots[i].line == line)
    }

    /// Whether `line` is buffered (no state change).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Inserts a prefetched line with an `origin` token, evicting the LRU
    /// slot of its set if necessary.
    ///
    /// Returns the evicted line's `(line, origin)` if a *valid, unused*
    /// line was displaced. Inserting a line that is already buffered only
    /// refreshes its LRU position and origin.
    pub fn insert(&mut self, line: LineAddr, origin: u64) -> Option<(LineAddr, u64)> {
        self.stamp += 1;
        if let Some(i) = self.find(line) {
            self.slots[i].lru = self.stamp;
            self.slots[i].origin = origin;
            self.stats.duplicate_inserts += 1;
            return None;
        }
        self.stats.inserts += 1;
        let range = self.set_range(line);
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            if !self.slots[i].valid {
                victim = i;
                break;
            }
            if self.slots[i].lru < best {
                best = self.slots[i].lru;
                victim = i;
            }
        }
        let evicted = if self.slots[victim].valid {
            self.stats.evicted_unused += 1;
            Some((self.slots[victim].line, self.slots[victim].origin))
        } else {
            None
        };
        self.slots[victim] = Slot {
            line,
            origin,
            valid: true,
            lru: self.stamp,
        };
        evicted
    }

    /// Demand lookup: on a hit, removes the line (it is promoted to the
    /// regular caches by the engine) and returns its origin token.
    pub fn lookup_consume(&mut self, line: LineAddr) -> Option<u64> {
        let i = self.find(line)?;
        self.slots[i].valid = false;
        self.stats.hits += 1;
        Some(self.slots[i].origin)
    }

    /// Removes a line without counting a hit (e.g. invalidated because the
    /// demand miss raced the prefetch).
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        if let Some(i) = self.find(line) {
            self.slots[i].valid = false;
            true
        } else {
            false
        }
    }

    /// Number of valid buffered lines.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Usage statistics so far.
    pub const fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_consume() {
        let mut pb = PrefetchBuffer::new(8, 4);
        let line = LineAddr::from_index(3);
        assert!(pb.insert(line, 99).is_none());
        assert!(pb.contains(line));
        assert_eq!(pb.lookup_consume(line), Some(99));
        assert!(!pb.contains(line));
        assert_eq!(pb.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut pb = PrefetchBuffer::new(4, 2); // 2 sets x 2 ways
                                                // Lines 0, 2, 4 map to set 0.
        pb.insert(LineAddr::from_index(0), 1);
        pb.insert(LineAddr::from_index(2), 2);
        let ev = pb.insert(LineAddr::from_index(4), 3).expect("set overflow");
        assert_eq!(ev, (LineAddr::from_index(0), 1));
        assert_eq!(pb.stats().evicted_unused, 1);
    }

    #[test]
    fn duplicate_insert_refreshes() {
        let mut pb = PrefetchBuffer::new(4, 2);
        pb.insert(LineAddr::from_index(0), 1);
        pb.insert(LineAddr::from_index(2), 2);
        // Re-inserting line 0 makes line 2 the LRU victim.
        assert!(pb.insert(LineAddr::from_index(0), 10).is_none());
        let ev = pb.insert(LineAddr::from_index(4), 3).unwrap();
        assert_eq!(ev.0, LineAddr::from_index(2));
        assert_eq!(pb.lookup_consume(LineAddr::from_index(0)), Some(10));
        assert_eq!(pb.stats().duplicate_inserts, 1);
    }

    #[test]
    fn invalidate_is_not_a_hit() {
        let mut pb = PrefetchBuffer::new(4, 2);
        let line = LineAddr::from_index(1);
        pb.insert(line, 0);
        assert!(pb.invalidate(line));
        assert!(!pb.invalidate(line));
        assert_eq!(pb.stats().hits, 0);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut pb = PrefetchBuffer::new(8, 4);
        pb.insert(LineAddr::from_index(0), 0);
        pb.insert(LineAddr::from_index(1), 0);
        pb.lookup_consume(LineAddr::from_index(0));
        assert_eq!(pb.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = PrefetchBuffer::new(6, 4);
    }
}
