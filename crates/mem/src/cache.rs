//! Set-associative cache model with true-LRU replacement.
//!
//! The model tracks tags only — simulated programs never read or write
//! actual data bytes, so a cache is a set-indexed collection of
//! `(tag, dirty, lru)` ways. This is the standard fidelity level for
//! trace-driven prefetcher studies: hit/miss behaviour, replacement and
//! writeback traffic are exact; data values are irrelevant.
//!
//! # Data layout
//!
//! This is the single hottest structure in the simulator — `Engine::step`
//! performs two to three lookups per simulated instruction, and the
//! replay fast loops one per stream event — so the layout is built
//! around the cost of one lookup in *host* cache lines:
//!
//! * every modeled machine is 4-way at every level, and for that
//!   geometry a whole set — tags, LRU stamps, MRU way and dirty bits —
//!   packs into one 64-byte [`Set4`] block. A probe that used to touch
//!   two or three host lines (tags array + lru array + mru array) now
//!   touches exactly one; on the big scaled L2s, whose tag state blows
//!   the host L1, that halves the memory traffic of the hottest loop in
//!   the simulator. Other associativities take a flat
//!   structure-of-arrays fallback ([`FlatStore`]) with identical
//!   semantics.
//! * there is no valid bitset: an empty way holds the sentinel tag
//!   `u64::MAX` (unreachable for any real line address, whose index fits
//!   in 58 bits), so the way scan is a bare tag compare with no
//!   per-way bit extraction.
//! * LRU stamps are `u32`, not `u64` — half the stamp traffic — with an
//!   order-preserving renormalization pass on the (once per ~4 G
//!   accesses) wraparound.
//! * the set mask and tag shift are precomputed in [`CacheGeometry`] at
//!   construction; a lookup does no division or `trailing_zeros`.
//! * [`SetAssocCache::access`] scans the set in one branchless pass
//!   (the statically-dispatched `scan4_probe` SIMD kernel for packed
//!   sets) that finds the hit way and the replacement victim together —
//!   every per-way decision is a compare+select, so the only
//!   data-dependent branch per lookup is the final hit/miss outcome.
//!   The scaled-down L1s thrash by design, which made per-way branches
//!   (and an MRU pre-probe) chronic mispredicts; [`SetAssocCache::probe`]
//!   and `mark_dirty`, whose reference streams do repeat lines, still
//!   check the most-recently-used way first.
//! * a missing `access` records the victim it chose in a one-shot memo;
//!   the `fill` of that same line (the universal miss→fill idiom in the
//!   engine) consumes the memo and skips both its residency re-check
//!   and the victim rescan. Any other mutation of the cache clears the
//!   memo, so the fast path is exactly equivalent to rescanning.
//! * [`SetAssocCache::prefetch_set`] exposes the set-block address as a
//!   host prefetch hint, letting the replay loops overlap the probe's
//!   memory latency with the previous event's work.
//!
//! The straightforward array-of-structs implementation this replaced is
//! retained under `#[cfg(test)]` as [`naive::NaiveCache`], and a
//! differential test drives both through randomized access sequences.

use ebcp_types::{LineAddr, LINE_BYTES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of a set-associative cache.
///
/// Construction precomputes the set mask and tag shift so the per-access
/// index math is a mask and a shift — no division, no `trailing_zeros`.
///
/// # Examples
///
/// ```
/// use ebcp_mem::CacheGeometry;
/// let l1 = CacheGeometry::new(32 << 10, 4); // 32 KB 4-way
/// assert_eq!(l1.sets(), 128);
/// assert_eq!(l1.lines(), 512);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u32,
    /// `sets - 1`; sets are a power of two, so this masks a line index
    /// down to its set.
    set_mask: u64,
    /// `log2(sets)`; shifts a line index down to its tag.
    set_shift: u32,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `size_bytes` total capacity and
    /// `ways` associativity, with the global 64 B line size.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting number of sets is a power of two and
    /// at least one, and `ways >= 1`.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        assert!(ways >= 1, "cache needs at least one way");
        let lines = size_bytes / LINE_BYTES;
        assert!(lines >= u64::from(ways), "cache smaller than one set");
        let sets = lines / u64::from(ways);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        CacheGeometry {
            size_bytes,
            ways,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
        }
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub const fn ways(self) -> u32 {
        self.ways
    }

    /// Number of sets.
    #[inline]
    pub const fn sets(self) -> u64 {
        self.set_mask + 1
    }

    /// Total line capacity.
    pub const fn lines(self) -> u64 {
        self.size_bytes / LINE_BYTES
    }

    /// The set index a line maps to.
    #[inline]
    pub const fn set_of(self, line: LineAddr) -> u64 {
        line.index() & self.set_mask
    }

    /// The tag of a line (line index with the set bits stripped).
    #[inline]
    pub const fn tag_of(self, line: LineAddr) -> u64 {
        line.index() >> self.set_shift
    }

    /// Reassembles the line address of a resident `(tag, set)` pair.
    #[inline]
    const fn line_of(self, tag: u64, set: u64) -> LineAddr {
        LineAddr::from_index((tag << self.set_shift) | set)
    }
}

/// The derived mask/shift fields are a function of `size_bytes` and
/// `ways`; printing only the defining pair keeps the `Debug` form — and
/// with it every canonical job string hashed by `ebcp-harness` — stable
/// across this refactor.
impl fmt::Debug for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheGeometry")
            .field("size_bytes", &self.size_bytes)
            .field("ways", &self.ways)
            .finish()
    }
}

/// A line evicted by [`SetAssocCache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the line was dirty (requires a writeback).
    pub dirty: bool,
}

/// A set-associative, true-LRU, write-back cache (tags only), laid out
/// structure-of-arrays (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use ebcp_mem::{CacheGeometry, SetAssocCache};
/// use ebcp_types::LineAddr;
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(4096, 2));
/// let a = LineAddr::from_index(1);
/// assert!(!c.access(a));
/// assert!(c.fill(a, false).is_none()); // empty way available
/// assert!(c.access(a));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    store: Store,
    /// One-shot victim memo: set/tag of the last missing [`access`]
    /// (`memo_set == NO_SET` when empty) and the victim way its scan
    /// chose. Consumed by the [`fill`] of the same line; cleared by any
    /// other state mutation.
    ///
    /// [`access`]: SetAssocCache::access
    /// [`fill`]: SetAssocCache::fill
    memo_set: u64,
    memo_tag: u64,
    memo_slot: usize,
    stamp: u32,
    accesses: u64,
    hits: u64,
}

/// Tag value marking an empty way. Unreachable for real lines: a
/// [`LineAddr`] index is a byte address shifted right by 6, so every
/// real tag has its top bits clear.
const TAG_NONE: u64 = u64::MAX;

/// `memo_set` value meaning "no memo": no set index can be `u64::MAX`
/// (the set mask is at most `u64::MAX >> 1`).
const NO_SET: u64 = u64::MAX;

/// A 4-way set packed into one aligned 64-byte block: tags, LRU
/// stamps, MRU way and dirty bits all land in a single host cache
/// line, so a probe costs exactly one line of host memory traffic.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy)]
struct Set4 {
    /// Way tags; empty ways hold [`TAG_NONE`].
    tags: [u64; 4],
    /// Way LRU stamps (larger = more recently used).
    lru: [u32; 4],
    /// Index of the most-recently-used way (fast path).
    mru: u16,
    /// Dirty bits, one per way.
    dirty: u8,
}

const _: () = assert!(std::mem::size_of::<Set4>() == 64);

impl Set4 {
    const EMPTY: Set4 = Set4 {
        tags: [TAG_NONE; 4],
        lru: [0; 4],
        mru: 0,
        dirty: 0,
    };
}

/// Cache storage: packed per-set blocks for the ubiquitous 4-way
/// geometry, flat structure-of-arrays for everything else.
#[derive(Debug, Clone)]
enum Store {
    Packed(Vec<Set4>),
    Flat(FlatStore),
}

/// The generic-associativity layout (see the [module docs](self)).
#[derive(Debug, Clone)]
struct FlatStore {
    /// Per-line tags; set `s`'s ways live at `s*ways .. (s+1)*ways`.
    tags: Vec<u64>,
    /// Per-line LRU stamps.
    lru: Vec<u32>,
    /// Dirty bits, one per line slot, packed 64 per word.
    dirty: Vec<u64>,
    /// Per-set index of the most-recently-used way.
    mru: Vec<u16>,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than `u16::MAX` ways (the MRU
    /// index is 16-bit) — far beyond any modeled configuration.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n = geometry.lines() as usize;
        assert!(
            geometry.ways() <= u64::from(u16::MAX) as u32,
            "associativity above u16::MAX is not supported"
        );
        let store = if geometry.ways() == 4 {
            Store::Packed(vec![Set4::EMPTY; geometry.sets() as usize])
        } else {
            Store::Flat(FlatStore {
                tags: vec![TAG_NONE; n],
                lru: vec![0; n],
                dirty: vec![0; n.div_ceil(64)],
                mru: vec![0; geometry.sets() as usize],
            })
        };
        SetAssocCache {
            geometry,
            store,
            memo_set: NO_SET,
            memo_tag: 0,
            memo_slot: 0,
            stamp: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// The cache's geometry.
    pub const fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Hints the host to pull the set holding `line` into cache. Pure
    /// optimization — no modeled state changes — used by the replay
    /// loops to overlap probe latency with the previous event's work.
    #[inline]
    pub fn prefetch_set(&self, line: LineAddr) {
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let set = self.geometry.set_of(line) as usize;
            match &self.store {
                // SAFETY: `set` indexes within the allocation (geometry
                // invariant); prefetch reads nothing and faults never.
                Store::Packed(blocks) => unsafe {
                    _mm_prefetch(blocks.as_ptr().add(set).cast::<i8>(), _MM_HINT_T0);
                },
                Store::Flat(f) => unsafe {
                    let base = set * self.geometry.ways as usize;
                    _mm_prefetch(f.tags.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
                },
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = line;
    }

    #[inline]
    fn slot_tag(&self, slot: usize) -> u64 {
        match &self.store {
            Store::Packed(blocks) => blocks[slot >> 2].tags[slot & 3],
            Store::Flat(f) => f.tags[slot],
        }
    }

    #[inline]
    fn slot_lru(&self, slot: usize) -> u32 {
        match &self.store {
            Store::Packed(blocks) => blocks[slot >> 2].lru[slot & 3],
            Store::Flat(f) => f.lru[slot],
        }
    }

    #[inline]
    fn set_slot_lru(&mut self, slot: usize, stamp: u32) {
        match &mut self.store {
            Store::Packed(blocks) => blocks[slot >> 2].lru[slot & 3] = stamp,
            Store::Flat(f) => f.lru[slot] = stamp,
        }
    }

    #[inline]
    fn is_valid(&self, slot: usize) -> bool {
        self.slot_tag(slot) != TAG_NONE
    }

    #[inline]
    fn is_dirty(&self, slot: usize) -> bool {
        match &self.store {
            Store::Packed(blocks) => blocks[slot >> 2].dirty >> (slot & 3) & 1 != 0,
            Store::Flat(f) => f.dirty[slot >> 6] >> (slot & 63) & 1 != 0,
        }
    }

    #[inline]
    fn write_dirty(&mut self, slot: usize, dirty: bool) {
        match &mut self.store {
            Store::Packed(blocks) => {
                let bits = &mut blocks[slot >> 2].dirty;
                let bit = 1u8 << (slot & 3);
                if dirty {
                    *bits |= bit;
                } else {
                    *bits &= !bit;
                }
            }
            Store::Flat(f) => {
                let word = &mut f.dirty[slot >> 6];
                let bit = 1u64 << (slot & 63);
                if dirty {
                    *word |= bit;
                } else {
                    *word &= !bit;
                }
            }
        }
    }

    /// Finds a resident line's slot (first matching way, as in the
    /// original scan; tags are unique within a set so order is moot).
    /// Empty ways hold [`TAG_NONE`], so a bare tag compare suffices.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let tag = self.geometry.tag_of(line);
        debug_assert_ne!(
            tag, TAG_NONE,
            "line address collides with the empty-way tag"
        );
        let set = self.geometry.set_of(line) as usize;
        match &self.store {
            Store::Packed(blocks) => {
                let b = &blocks[set];
                let m = usize::from(b.mru);
                if b.tags[m] == tag {
                    return Some((set << 2) | m);
                }
                b.tags
                    .iter()
                    .position(|&t| t == tag)
                    .map(|w| (set << 2) | w)
            }
            Store::Flat(f) => {
                let base = set * self.geometry.ways as usize;
                let mru_slot = base + usize::from(f.mru[set]);
                if f.tags[mru_slot] == tag {
                    return Some(mru_slot);
                }
                (base..base + self.geometry.ways as usize).find(|&slot| f.tags[slot] == tag)
            }
        }
    }

    /// Advances the LRU clock. On the (once per ~4 G events) wraparound
    /// the stamps are renormalized to their rank order, which preserves
    /// every LRU decision exactly.
    #[inline]
    fn tick(&mut self) -> u32 {
        if self.stamp == u32::MAX - 1 {
            self.renormalize();
        }
        self.stamp += 1;
        self.stamp
    }

    /// Rank-compresses the stamps of all valid lines into `1..=n`,
    /// preserving their relative order, and rewinds the clock to `n`.
    #[cold]
    fn renormalize(&mut self) {
        let mut order: Vec<u32> = (0..self.geometry.lines() as u32)
            .filter(|&slot| self.is_valid(slot as usize))
            .collect();
        order.sort_by_key(|&slot| self.slot_lru(slot as usize));
        for (rank, &slot) in order.iter().enumerate() {
            self.set_slot_lru(slot as usize, rank as u32 + 1);
        }
        self.stamp = order.len() as u32;
    }

    /// Checks for a line without touching replacement state.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Looks up a line; a hit refreshes its LRU position.
    ///
    /// Returns `true` on hit. The set is scanned in a single branchless
    /// pass (see the [module docs](self)); a miss chooses the set's
    /// replacement victim during the same scan and memoizes it for the
    /// [`fill`](SetAssocCache::fill) that follows.
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.access_inner(line, false)
    }

    /// [`access`](SetAssocCache::access) that also marks the line dirty
    /// on a hit — the store path's `access` + `mark_dirty` pair fused
    /// into a single set scan. Counters and replacement state are
    /// updated exactly as by `access`.
    #[inline]
    pub fn access_dirty(&mut self, line: LineAddr) -> bool {
        self.access_inner(line, true)
    }

    #[inline]
    fn access_inner(&mut self, line: LineAddr, mark_dirty: bool) -> bool {
        self.accesses += 1;
        let stamp = self.tick();
        let tag = self.geometry.tag_of(line);
        debug_assert_ne!(
            tag, TAG_NONE,
            "line address collides with the empty-way tag"
        );
        let set = self.geometry.set_of(line);
        // One branchless pass: find the hit way and the replacement
        // victim together. The victim key maps empty ways to 0 — live
        // LRU stamps are always >= 1 (`tick` starts at 1 and
        // renormalization ranks from 1) — so a strict-< argmin picks
        // the first empty way if any, else the first least-recent way:
        // exactly the two-phase scan it replaces. Every update below is
        // a compare+select, so the hit/miss outcome costs one
        // (reasonably predictable) branch instead of one per way.
        match &mut self.store {
            Store::Packed(blocks) => {
                // One SIMD tag compare over the single-line set block
                // yields hit way and victim together. Statically
                // dispatched (`scan4_probe`): per-probe runtime
                // dispatch costs more than the 32-byte scan it selects.
                let b = &mut blocks[set as usize];
                let (h, v) = crate::simd::scan4_probe(&b.tags, &b.lru, tag);
                if h < 4 {
                    let h = h as usize;
                    b.lru[h] = stamp;
                    b.mru = h as u16;
                    if mark_dirty {
                        b.dirty |= 1 << h;
                    }
                    self.hits += 1;
                    self.memo_set = NO_SET;
                    return true;
                }
                self.memo_set = set;
                self.memo_tag = tag;
                self.memo_slot = ((set as usize) << 2) | v as usize;
                false
            }
            Store::Flat(f) => {
                let w = self.geometry.ways as usize;
                let base = (set as usize) * w;
                let mut hit = usize::MAX;
                let mut victim = base;
                let mut best = u32::MAX;
                let set_tags = &f.tags[base..base + w];
                let set_lru = &f.lru[base..base + w];
                for (i, (&t, &l)) in set_tags.iter().zip(set_lru).enumerate() {
                    if t == tag {
                        hit = base + i;
                    }
                    let key = if t == TAG_NONE { 0 } else { l };
                    if key < best {
                        best = key;
                        victim = base + i;
                    }
                }
                if hit != usize::MAX {
                    f.lru[hit] = stamp;
                    f.mru[set as usize] = (hit - base) as u16;
                    self.hits += 1;
                    self.memo_set = NO_SET;
                    if mark_dirty {
                        let word = &mut f.dirty[hit >> 6];
                        *word |= 1 << (hit & 63);
                    }
                    return true;
                }
                self.memo_set = set;
                self.memo_tag = tag;
                self.memo_slot = victim;
                false
            }
        }
    }

    /// Inserts a line, evicting the set's LRU way if necessary.
    ///
    /// `dirty` marks the incoming line dirty immediately (store
    /// write-allocate fills). Filling a line that is already present just
    /// refreshes it (and ORs in `dirty`).
    ///
    /// When the fill follows a missing `access` of the same line with no
    /// intervening mutation (the engine's universal miss→fill idiom),
    /// the memoized victim is used directly and no set scan happens.
    #[inline]
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        let stamp = self.tick();
        let geo = self.geometry;
        let tag = geo.tag_of(line);
        let set = geo.set_of(line);
        let memo_way = if self.memo_set == set && self.memo_tag == tag {
            // The line was absent when the memo was recorded and nothing
            // has mutated the cache since: skip the residency check and
            // the victim rescan.
            Some(self.memo_slot - (set as usize) * geo.ways as usize)
        } else {
            None
        };
        self.memo_set = NO_SET;
        match &mut self.store {
            Store::Packed(blocks) => {
                let b = &mut blocks[set as usize];
                let victim = match memo_way {
                    Some(w) => w,
                    None => {
                        // One scan finds residency and the victim
                        // (first empty way, else the LRU way) together.
                        let (h, v) = crate::simd::scan4_probe(&b.tags, &b.lru, tag);
                        if h < 4 {
                            let h = h as usize;
                            b.lru[h] = stamp;
                            if dirty {
                                b.dirty |= 1 << h;
                            }
                            b.mru = h as u16;
                            return None;
                        }
                        v as usize
                    }
                };
                let evicted = if b.tags[victim] == TAG_NONE {
                    None
                } else {
                    Some(Eviction {
                        line: geo.line_of(b.tags[victim], set),
                        dirty: b.dirty >> victim & 1 != 0,
                    })
                };
                b.tags[victim] = tag;
                b.lru[victim] = stamp;
                // Overwrite, don't OR: the slot may carry the previous
                // occupant's dirty bit.
                b.dirty = (b.dirty & !(1 << victim)) | (u8::from(dirty) << victim);
                b.mru = victim as u16;
                evicted
            }
            Store::Flat(f) => {
                let w = geo.ways as usize;
                let base = (set as usize) * w;
                let victim;
                if let Some(way) = memo_way {
                    victim = base + way;
                } else {
                    let mru_slot = base + usize::from(f.mru[set as usize]);
                    let found = if f.tags[mru_slot] == tag {
                        Some(mru_slot)
                    } else {
                        (base..base + w).find(|&slot| f.tags[slot] == tag)
                    };
                    if let Some(slot) = found {
                        f.lru[slot] = stamp;
                        if dirty {
                            f.dirty[slot >> 6] |= 1 << (slot & 63);
                        }
                        f.mru[set as usize] = (slot - base) as u16;
                        return None;
                    }
                    // Prefer an empty way; otherwise evict the LRU way.
                    let mut v = base;
                    let mut best = u32::MAX;
                    for slot in base..base + w {
                        let t = f.tags[slot];
                        if t == TAG_NONE {
                            v = slot;
                            break;
                        }
                        if f.lru[slot] < best {
                            best = f.lru[slot];
                            v = slot;
                        }
                    }
                    victim = v;
                }
                let evicted = if f.tags[victim] == TAG_NONE {
                    None
                } else {
                    Some(Eviction {
                        line: geo.line_of(f.tags[victim], set),
                        dirty: f.dirty[victim >> 6] >> (victim & 63) & 1 != 0,
                    })
                };
                f.tags[victim] = tag;
                f.lru[victim] = stamp;
                // Overwrite, don't OR (see above).
                let word = &mut f.dirty[victim >> 6];
                let bit = 1u64 << (victim & 63);
                *word = (*word & !bit) | (u64::from(dirty) << (victim & 63));
                f.mru[set as usize] = (victim - base) as u16;
                evicted
            }
        }
    }

    /// Marks a resident line dirty; returns `false` if the line is absent.
    ///
    /// Leaves the victim memo intact: dirty bits play no part in
    /// residency or victim choice.
    #[inline]
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.find(line) {
            Some(slot) => {
                self.write_dirty(slot, true);
                true
            }
            None => false,
        }
    }

    /// Removes a line; returns its eviction record if it was present.
    ///
    /// The freed way returns to the empty-tag state with its dirty bit
    /// cleared: a later `fill` must start from a clean slate, not
    /// inherit the dead line's dirty state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Eviction> {
        let slot = self.find(line)?;
        let was_dirty = self.is_dirty(slot);
        match &mut self.store {
            Store::Packed(blocks) => blocks[slot >> 2].tags[slot & 3] = TAG_NONE,
            Store::Flat(f) => f.tags[slot] = TAG_NONE,
        }
        self.write_dirty(slot, false);
        self.memo_set = NO_SET;
        Some(Eviction {
            line,
            dirty: was_dirty,
        })
    }

    /// Looks up a line, filling it on a miss — the L1 front end's
    /// universal access→miss→fill idiom fused into one call. Returns
    /// `true` on hit.
    ///
    /// The miss-path fill consumes the victim memo recorded by the same
    /// scan, so no second set scan happens. The eviction (if any) is
    /// discarded: the modeled L1s are clean, so their victims never
    /// write back.
    #[inline]
    pub fn access_fill(&mut self, line: LineAddr) -> bool {
        if self.access(line) {
            return true;
        }
        let _ = self.fill(line, false);
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> u64 {
        match &self.store {
            Store::Packed(blocks) => blocks
                .iter()
                .flat_map(|b| b.tags.iter())
                .filter(|&&t| t != TAG_NONE)
                .count() as u64,
            Store::Flat(f) => f.tags.iter().filter(|&&t| t != TAG_NONE).count() as u64,
        }
    }

    /// Total lookups via [`SetAssocCache::access`].
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hits among those lookups.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses among those lookups.
    pub const fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Forces the LRU clock close to wraparound so tests can exercise
    /// [`SetAssocCache::renormalize`] without 4 G accesses.
    #[cfg(test)]
    fn set_stamp_near_wrap(&mut self) {
        // Shift all live stamps next to the wrap point, preserving
        // order: the next few ticks will renormalize.
        let lead = self.stamp;
        let offset = u32::MAX - 4 - lead;
        for slot in 0..self.geometry.lines() as usize {
            if self.is_valid(slot) {
                let bumped = self.slot_lru(slot) + offset;
                self.set_slot_lru(slot, bumped);
            }
        }
        self.stamp += offset;
    }
}

/// The pre-SoA reference implementation, kept as a differential-testing
/// oracle: plain array-of-structs ways, per-access division in the
/// index math, no MRU fast path. Must agree with [`SetAssocCache`] on
/// every observable (hit/miss, evictions, dirty state, counters).
#[cfg(test)]
pub(crate) mod naive {
    use super::Eviction;
    use ebcp_types::LineAddr;

    #[derive(Debug, Clone, Copy, Default)]
    struct Way {
        tag: u64,
        valid: bool,
        dirty: bool,
        lru: u64,
    }

    #[derive(Debug, Clone)]
    pub struct NaiveCache {
        sets: u64,
        assoc: u32,
        ways: Vec<Way>,
        stamp: u64,
        accesses: u64,
        hits: u64,
    }

    impl NaiveCache {
        pub fn new(size_bytes: u64, assoc: u32) -> Self {
            let lines = size_bytes / ebcp_types::LINE_BYTES;
            let sets = lines / u64::from(assoc);
            assert!(sets.is_power_of_two());
            NaiveCache {
                sets,
                assoc,
                ways: vec![Way::default(); lines as usize],
                stamp: 0,
                accesses: 0,
                hits: 0,
            }
        }

        fn set_of(&self, line: LineAddr) -> u64 {
            line.index() % self.sets
        }

        fn tag_of(&self, line: LineAddr) -> u64 {
            line.index() / self.sets
        }

        fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
            let set = self.set_of(line) as usize;
            let w = self.assoc as usize;
            set * w..(set + 1) * w
        }

        fn find(&self, line: LineAddr) -> Option<usize> {
            let tag = self.tag_of(line);
            self.set_range(line)
                .find(|&i| self.ways[i].valid && self.ways[i].tag == tag)
        }

        pub fn probe(&self, line: LineAddr) -> bool {
            self.find(line).is_some()
        }

        pub fn access(&mut self, line: LineAddr) -> bool {
            self.accesses += 1;
            self.stamp += 1;
            if let Some(i) = self.find(line) {
                self.ways[i].lru = self.stamp;
                self.hits += 1;
                true
            } else {
                false
            }
        }

        pub fn access_dirty(&mut self, line: LineAddr) -> bool {
            let hit = self.access(line);
            if hit {
                self.mark_dirty(line);
            }
            hit
        }

        pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
            self.stamp += 1;
            if let Some(i) = self.find(line) {
                self.ways[i].lru = self.stamp;
                self.ways[i].dirty |= dirty;
                return None;
            }
            let tag = self.tag_of(line);
            let range = self.set_range(line);
            let mut victim = range.start;
            let mut best = u64::MAX;
            for i in range {
                if !self.ways[i].valid {
                    victim = i;
                    break;
                }
                if self.ways[i].lru < best {
                    best = self.ways[i].lru;
                    victim = i;
                }
            }
            let evicted = if self.ways[victim].valid {
                let set = self.set_of(line);
                let old_line = LineAddr::from_index(self.ways[victim].tag * self.sets + set);
                Some(Eviction {
                    line: old_line,
                    dirty: self.ways[victim].dirty,
                })
            } else {
                None
            };
            self.ways[victim] = Way {
                tag,
                valid: true,
                dirty,
                lru: self.stamp,
            };
            evicted
        }

        pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
            if let Some(i) = self.find(line) {
                self.ways[i].dirty = true;
                true
            } else {
                false
            }
        }

        pub fn invalidate(&mut self, line: LineAddr) -> Option<Eviction> {
            let i = self.find(line)?;
            self.ways[i].valid = false;
            let dirty = self.ways[i].dirty;
            self.ways[i].dirty = false;
            Some(Eviction { line, dirty })
        }

        pub fn occupancy(&self) -> u64 {
            self.ways.iter().filter(|w| w.valid).count() as u64
        }

        pub fn accesses(&self) -> u64 {
            self.accesses
        }

        pub fn hits(&self) -> u64 {
            self.hits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::naive::NaiveCache;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheGeometry::new(4 * LINE_BYTES, 2))
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(2 << 20, 4);
        assert_eq!(g.sets(), 8192);
        assert_eq!(g.lines(), 32768);
        let line = LineAddr::from_index(8192 + 5);
        assert_eq!(g.set_of(line), 5);
        assert_eq!(g.tag_of(line), 1);
    }

    #[test]
    fn geometry_debug_shape_is_stable() {
        // The harness hashes job specs via `Debug`; the derived
        // mask/shift fields must not leak into the canonical string.
        let g = CacheGeometry::new(2 << 20, 4);
        assert_eq!(
            format!("{g:?}"),
            "CacheGeometry { size_bytes: 2097152, ways: 4 }"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_pow2_sets() {
        let _ = CacheGeometry::new(3 * LINE_BYTES, 1);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        assert!(!c.access(a));
        assert!(c.fill(a, false).is_none());
        assert!(c.access(a));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn access_fill_matches_access_then_fill() {
        // The fused front-end entry point must leave the cache in the
        // same state as the two-call idiom it replaces.
        let mut fused = tiny();
        let mut split = tiny();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let line = LineAddr::from_index(rng.gen_range(0..16));
            let hit_fused = fused.access_fill(line);
            let hit_split = split.access(line);
            if !hit_split {
                let _ = split.fill(line, false);
            }
            assert_eq!(hit_fused, hit_split);
        }
        assert_eq!(fused.accesses(), split.accesses());
        assert_eq!(fused.hits(), split.hits());
        // Both caches now hold identical residency.
        for idx in 0..16 {
            let line = LineAddr::from_index(idx);
            assert_eq!(fused.probe(line), split.probe(line), "line {idx}");
        }
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        let (a, b, d) = (
            LineAddr::from_index(0),
            LineAddr::from_index(2),
            LineAddr::from_index(4),
        );
        c.fill(a, false);
        c.fill(b, false);
        c.access(a); // make b the LRU way
        let ev = c.fill(d, false).expect("set full, someone must go");
        assert_eq!(ev.line, b);
        assert!(c.probe(a));
        assert!(c.probe(d));
        assert!(!c.probe(b));
    }

    #[test]
    fn eviction_reports_dirty() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        c.fill(a, false);
        assert!(c.mark_dirty(a));
        // Fill two more lines into set 0 to push `a` out.
        c.fill(LineAddr::from_index(2), false);
        c.access(LineAddr::from_index(2));
        let ev = c.fill(LineAddr::from_index(4), false).unwrap();
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
    }

    #[test]
    fn refill_refreshes_instead_of_evicting() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        c.fill(a, false);
        assert!(c.fill(a, true).is_none());
        let ev = c.invalidate(a).unwrap();
        assert!(ev.dirty, "second fill's dirty flag must stick");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Set 0 gets lines 0,2; set 1 gets lines 1,3: no evictions.
        for i in 0..4 {
            assert!(c.fill(LineAddr::from_index(i), false).is_none());
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn evicted_line_address_reconstruction() {
        let g = CacheGeometry::new(4 * LINE_BYTES, 2);
        let mut c = SetAssocCache::new(g);
        let victim = LineAddr::from_index(6); // set 0, tag 3
        c.fill(victim, false);
        c.fill(LineAddr::from_index(8), false);
        c.access(LineAddr::from_index(8));
        let ev = c.fill(LineAddr::from_index(10), false).unwrap();
        assert_eq!(
            ev.line, victim,
            "reconstructed eviction address must match original"
        );
    }

    #[test]
    fn mark_dirty_on_absent_line() {
        let mut c = tiny();
        assert!(!c.mark_dirty(LineAddr::from_index(9)));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        let (a, b) = (LineAddr::from_index(0), LineAddr::from_index(2));
        c.fill(a, false);
        c.fill(b, false);
        // Probing `a` must NOT rescue it from LRU.
        assert!(c.probe(a));
        let ev = c.fill(LineAddr::from_index(4), false).unwrap();
        assert_eq!(ev.line, a);
    }

    #[test]
    fn invalidate_clears_dirty_state() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        c.fill(a, true);
        let ev = c.invalidate(a).unwrap();
        assert!(ev.dirty, "invalidate must report the line was dirty");
        // Refill the same slot clean, then evict it: the eviction must
        // not resurrect the invalidated line's dirty bit.
        c.fill(a, false);
        c.fill(LineAddr::from_index(2), false);
        c.access(LineAddr::from_index(2));
        let ev = c.fill(LineAddr::from_index(4), false).unwrap();
        assert_eq!(ev.line, a);
        assert!(!ev.dirty, "freed way must not inherit stale dirty state");
    }

    #[test]
    fn fill_overwrites_stale_dirty_slot() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        // Dirty occupant evicted by a clean fill: the slot's dirty bit
        // must be rewritten, not ORed.
        c.fill(a, true);
        c.fill(LineAddr::from_index(2), false);
        c.access(LineAddr::from_index(2));
        let ev = c.fill(LineAddr::from_index(4), false).unwrap();
        assert_eq!(ev.line, a);
        // Now evict the newcomer: it was filled clean.
        c.access(LineAddr::from_index(2));
        let ev = c.fill(LineAddr::from_index(6), false).unwrap();
        assert_eq!(ev.line, LineAddr::from_index(4));
        assert!(!ev.dirty);
    }

    #[test]
    fn victim_memo_dropped_by_intervening_hit() {
        let mut c = tiny();
        let (a, b, d) = (
            LineAddr::from_index(0),
            LineAddr::from_index(2),
            LineAddr::from_index(4),
        );
        c.fill(a, false);
        c.fill(b, false); // set 0 full, `a` is LRU
        assert!(!c.access(d)); // memoizes `a` as the victim for `d`
        assert!(c.access(a)); // ...but this hit makes `b` the LRU way
        let ev = c.fill(d, false).unwrap();
        assert_eq!(ev.line, b, "stale memo must not evict the refreshed way");
    }

    #[test]
    fn access_dirty_marks_on_hit_only() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        assert!(!c.access_dirty(a)); // miss: nothing to mark
        c.fill(a, false);
        assert!(c.access_dirty(a));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.accesses(), 2);
        let ev = c.invalidate(a).unwrap();
        assert!(ev.dirty, "hit must have marked the line dirty");
    }

    #[test]
    fn repeated_hits_count_once_each() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        c.fill(a, false);
        for _ in 0..100 {
            assert!(c.access(a));
        }
        assert_eq!(c.hits(), 100);
        assert_eq!(c.accesses(), 100);
    }

    #[test]
    fn stamp_renormalization_preserves_lru_order() {
        let mut c = tiny();
        // Set 0 holds lines 0 (older) and 2 (newer).
        c.fill(LineAddr::from_index(0), false);
        c.fill(LineAddr::from_index(2), false);
        c.set_stamp_near_wrap();
        // Tick across the wrap boundary a few times via accesses to the
        // other set so set 0's relative order is untouched.
        for _ in 0..8 {
            c.access(LineAddr::from_index(1));
        }
        let ev = c.fill(LineAddr::from_index(4), false).unwrap();
        assert_eq!(
            ev.line,
            LineAddr::from_index(0),
            "renormalization must keep line 0 the LRU way"
        );
    }

    /// Differential test: the SoA implementation and the retained naive
    /// oracle must agree on every observable over randomized op
    /// sequences across several geometries.
    #[test]
    fn differential_against_naive_oracle() {
        for (seed, (size, ways)) in [
            (1u64, (4 * LINE_BYTES, 2u32)),
            (2, (8 * LINE_BYTES, 1)),
            (3, (16 * LINE_BYTES, 4)),
            (4, (64 * LINE_BYTES, 8)),
            (5, (32 * LINE_BYTES, 32)), // fully associative
        ] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut fast = SetAssocCache::new(CacheGeometry::new(size, ways));
            let mut slow = NaiveCache::new(size, ways);
            // Universe ~4x the cache capacity: plenty of conflict.
            let universe = (size / LINE_BYTES) * 4;
            for step in 0..20_000u32 {
                let line = LineAddr::from_index(rng.gen_range(0..universe));
                match rng.gen_range(0..100u32) {
                    0..=39 => {
                        assert_eq!(fast.access(line), slow.access(line), "access @{step}");
                    }
                    40..=44 => {
                        assert_eq!(
                            fast.access_dirty(line),
                            slow.access_dirty(line),
                            "access_dirty @{step}"
                        );
                    }
                    45..=79 => {
                        let dirty = rng.gen_range(0..4u32) == 0;
                        assert_eq!(
                            fast.fill(line, dirty),
                            slow.fill(line, dirty),
                            "fill @{step}"
                        );
                    }
                    80..=89 => {
                        assert_eq!(
                            fast.mark_dirty(line),
                            slow.mark_dirty(line),
                            "mark_dirty @{step}"
                        );
                    }
                    90..=94 => {
                        assert_eq!(
                            fast.invalidate(line),
                            slow.invalidate(line),
                            "invalidate @{step}"
                        );
                    }
                    _ => {
                        assert_eq!(fast.probe(line), slow.probe(line), "probe @{step}");
                    }
                }
            }
            assert_eq!(fast.occupancy(), slow.occupancy(), "occupancy, seed {seed}");
            assert_eq!(fast.accesses(), slow.accesses());
            assert_eq!(fast.hits(), slow.hits());
        }
    }
}
