//! Set-associative cache model with true-LRU replacement.
//!
//! The model tracks tags only — simulated programs never read or write
//! actual data bytes, so a cache is a set-indexed collection of
//! `(tag, dirty, lru)` ways. This is the standard fidelity level for
//! trace-driven prefetcher studies: hit/miss behaviour, replacement and
//! writeback traffic are exact; data values are irrelevant.

use ebcp_types::{LineAddr, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use ebcp_mem::CacheGeometry;
/// let l1 = CacheGeometry::new(32 << 10, 4); // 32 KB 4-way
/// assert_eq!(l1.sets(), 128);
/// assert_eq!(l1.lines(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `size_bytes` total capacity and
    /// `ways` associativity, with the global 64 B line size.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting number of sets is a power of two and
    /// at least one, and `ways >= 1`.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        assert!(ways >= 1, "cache needs at least one way");
        let lines = size_bytes / LINE_BYTES;
        assert!(lines >= u64::from(ways), "cache smaller than one set");
        let sets = lines / u64::from(ways);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        CacheGeometry { size_bytes, ways }
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub const fn ways(self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub const fn sets(self) -> u64 {
        self.size_bytes / LINE_BYTES / self.ways as u64
    }

    /// Total line capacity.
    pub const fn lines(self) -> u64 {
        self.size_bytes / LINE_BYTES
    }

    /// The set index a line maps to.
    pub const fn set_of(self, line: LineAddr) -> u64 {
        line.index() & (self.sets() - 1)
    }

    /// The tag of a line (line index with the set bits stripped).
    pub const fn tag_of(self, line: LineAddr) -> u64 {
        line.index() >> self.sets().trailing_zeros()
    }
}

/// A line evicted by [`SetAssocCache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the line was dirty (requires a writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative, true-LRU, write-back cache (tags only).
///
/// # Examples
///
/// ```
/// use ebcp_mem::{CacheGeometry, SetAssocCache};
/// use ebcp_types::LineAddr;
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(4096, 2));
/// let a = LineAddr::from_index(1);
/// assert!(!c.access(a));
/// assert!(c.fill(a, false).is_none()); // empty way available
/// assert!(c.access(a));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    ways: Vec<Way>,
    stamp: u64,
    accesses: u64,
    hits: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n = geometry.lines() as usize;
        SetAssocCache {
            geometry,
            ways: vec![Way::default(); n],
            stamp: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// The cache's geometry.
    pub const fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = self.geometry.set_of(line) as usize;
        let w = self.geometry.ways() as usize;
        set * w..(set + 1) * w
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let tag = self.geometry.tag_of(line);
        self.set_range(line)
            .find(|&i| self.ways[i].valid && self.ways[i].tag == tag)
    }

    /// Checks for a line without touching replacement state.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Looks up a line; a hit refreshes its LRU position.
    ///
    /// Returns `true` on hit.
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.accesses += 1;
        self.stamp += 1;
        if let Some(i) = self.find(line) {
            self.ways[i].lru = self.stamp;
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Inserts a line, evicting the set's LRU way if necessary.
    ///
    /// `dirty` marks the incoming line dirty immediately (store
    /// write-allocate fills). Filling a line that is already present just
    /// refreshes it (and ORs in `dirty`).
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        self.stamp += 1;
        if let Some(i) = self.find(line) {
            self.ways[i].lru = self.stamp;
            self.ways[i].dirty |= dirty;
            return None;
        }
        let tag = self.geometry.tag_of(line);
        let range = self.set_range(line);
        // Prefer an invalid way; otherwise evict the LRU way.
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            if !self.ways[i].valid {
                victim = i;
                break;
            }
            if self.ways[i].lru < best {
                best = self.ways[i].lru;
                victim = i;
            }
        }
        let evicted = if self.ways[victim].valid {
            let set = self.geometry.set_of(line);
            let old_tag = self.ways[victim].tag;
            let old_line =
                LineAddr::from_index((old_tag << self.geometry.sets().trailing_zeros()) | set);
            Some(Eviction {
                line: old_line,
                dirty: self.ways[victim].dirty,
            })
        } else {
            None
        };
        self.ways[victim] = Way {
            tag,
            valid: true,
            dirty,
            lru: self.stamp,
        };
        evicted
    }

    /// Marks a resident line dirty; returns `false` if the line is absent.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        if let Some(i) = self.find(line) {
            self.ways[i].dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes a line; returns its eviction record if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Eviction> {
        let i = self.find(line)?;
        self.ways[i].valid = false;
        Some(Eviction {
            line,
            dirty: self.ways[i].dirty,
        })
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> u64 {
        self.ways.iter().filter(|w| w.valid).count() as u64
    }

    /// Total lookups via [`SetAssocCache::access`].
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hits among those lookups.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses among those lookups.
    pub const fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheGeometry::new(4 * LINE_BYTES, 2))
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(2 << 20, 4);
        assert_eq!(g.sets(), 8192);
        assert_eq!(g.lines(), 32768);
        let line = LineAddr::from_index(8192 + 5);
        assert_eq!(g.set_of(line), 5);
        assert_eq!(g.tag_of(line), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_pow2_sets() {
        let _ = CacheGeometry::new(3 * LINE_BYTES, 1);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        assert!(!c.access(a));
        assert!(c.fill(a, false).is_none());
        assert!(c.access(a));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        let (a, b, d) = (
            LineAddr::from_index(0),
            LineAddr::from_index(2),
            LineAddr::from_index(4),
        );
        c.fill(a, false);
        c.fill(b, false);
        c.access(a); // make b the LRU way
        let ev = c.fill(d, false).expect("set full, someone must go");
        assert_eq!(ev.line, b);
        assert!(c.probe(a));
        assert!(c.probe(d));
        assert!(!c.probe(b));
    }

    #[test]
    fn eviction_reports_dirty() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        c.fill(a, false);
        assert!(c.mark_dirty(a));
        // Fill two more lines into set 0 to push `a` out.
        c.fill(LineAddr::from_index(2), false);
        c.access(LineAddr::from_index(2));
        let ev = c.fill(LineAddr::from_index(4), false).unwrap();
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
    }

    #[test]
    fn refill_refreshes_instead_of_evicting() {
        let mut c = tiny();
        let a = LineAddr::from_index(0);
        c.fill(a, false);
        assert!(c.fill(a, true).is_none());
        let ev = c.invalidate(a).unwrap();
        assert!(ev.dirty, "second fill's dirty flag must stick");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Set 0 gets lines 0,2; set 1 gets lines 1,3: no evictions.
        for i in 0..4 {
            assert!(c.fill(LineAddr::from_index(i), false).is_none());
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn evicted_line_address_reconstruction() {
        let g = CacheGeometry::new(4 * LINE_BYTES, 2);
        let mut c = SetAssocCache::new(g);
        let victim = LineAddr::from_index(6); // set 0, tag 3
        c.fill(victim, false);
        c.fill(LineAddr::from_index(8), false);
        c.access(LineAddr::from_index(8));
        let ev = c.fill(LineAddr::from_index(10), false).unwrap();
        assert_eq!(
            ev.line, victim,
            "reconstructed eviction address must match original"
        );
    }

    #[test]
    fn mark_dirty_on_absent_line() {
        let mut c = tiny();
        assert!(!c.mark_dirty(LineAddr::from_index(9)));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        let (a, b) = (LineAddr::from_index(0), LineAddr::from_index(2));
        c.fill(a, false);
        c.fill(b, false);
        // Probing `a` must NOT rescue it from LRU.
        assert!(c.probe(a));
        let ev = c.fill(LineAddr::from_index(4), false).unwrap();
        assert_eq!(ev.line, a);
    }
}
