//! Miss status holding registers (MSHRs).
//!
//! The default machine has 32 L2 MSHRs (§4.4). MSHRs bound the number of
//! distinct lines that can be outstanding to memory at once; a second miss
//! to an already-outstanding line merges into the existing entry
//! (a *secondary* miss) and consumes no new register.

use ebcp_types::LineAddr;

/// Result of trying to allocate an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to this line: a new MSHR was allocated.
    Primary,
    /// The line is already outstanding; merged into the existing MSHR.
    Secondary,
    /// No free MSHR: the requester must stall (demand) or drop (prefetch).
    Full,
}

/// A file of miss status holding registers.
///
/// # Examples
///
/// ```
/// use ebcp_mem::{MshrFile, MshrOutcome};
/// use ebcp_types::LineAddr;
///
/// let mut m = MshrFile::new(2);
/// let a = LineAddr::from_index(1);
/// assert_eq!(m.allocate(a), MshrOutcome::Primary);
/// assert_eq!(m.allocate(a), MshrOutcome::Secondary);
/// m.release(a);
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Outstanding lines and their merged-request counts, as a flat
    /// array: the file holds at most a few dozen registers, so a linear
    /// scan of contiguous pairs beats hashing on the every-L2-miss
    /// lookup path.
    entries: Vec<(LineAddr, u32)>,
    peak: usize,
    primaries: u64,
    secondaries: u64,
    rejections: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            peak: 0,
            primaries: 0,
            secondaries: 0,
            rejections: 0,
        }
    }

    /// Attempts to allocate (or merge into) an MSHR for `line`.
    #[inline]
    pub fn allocate(&mut self, line: LineAddr) -> MshrOutcome {
        if let Some(i) = self.entries.iter().position(|&(l, _)| l == line) {
            self.entries[i].1 += 1;
            self.secondaries += 1;
            return MshrOutcome::Secondary;
        }
        if self.entries.len() >= self.capacity {
            self.rejections += 1;
            return MshrOutcome::Full;
        }
        self.entries.push((line, 1));
        self.peak = self.peak.max(self.entries.len());
        self.primaries += 1;
        MshrOutcome::Primary
    }

    /// Releases the MSHR for `line` when its fill completes.
    ///
    /// Releasing an unallocated line is a no-op (fills can race with
    /// invalidations in the engine).
    #[inline]
    pub fn release(&mut self, line: LineAddr) {
        if let Some(i) = self.entries.iter().position(|&(l, _)| l == line) {
            self.entries.swap_remove(i);
        }
    }

    /// Whether `line` is currently outstanding.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|&(l, _)| l == line)
    }

    /// Number of allocated registers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no registers are allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every register is allocated.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Total register count.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest simultaneous occupancy observed.
    pub const fn peak(&self) -> usize {
        self.peak
    }

    /// Primary-miss allocations performed.
    pub const fn primaries(&self) -> u64 {
        self.primaries
    }

    /// Secondary-miss merges performed.
    pub const fn secondaries(&self) -> u64 {
        self.secondaries
    }

    /// Allocation attempts rejected because the file was full.
    pub const fn rejections(&self) -> u64 {
        self.rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_secondary_full() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(LineAddr::from_index(1)), MshrOutcome::Primary);
        assert_eq!(m.allocate(LineAddr::from_index(1)), MshrOutcome::Secondary);
        assert_eq!(m.allocate(LineAddr::from_index(2)), MshrOutcome::Primary);
        assert_eq!(m.allocate(LineAddr::from_index(3)), MshrOutcome::Full);
        assert!(m.is_full());
        assert_eq!(m.rejections(), 1);
    }

    #[test]
    fn release_frees_register() {
        let mut m = MshrFile::new(1);
        m.allocate(LineAddr::from_index(1));
        assert!(m.is_full());
        m.release(LineAddr::from_index(1));
        assert!(m.is_empty());
        assert_eq!(m.allocate(LineAddr::from_index(2)), MshrOutcome::Primary);
    }

    #[test]
    fn release_of_absent_line_is_noop() {
        let mut m = MshrFile::new(1);
        m.release(LineAddr::from_index(5));
        assert!(m.is_empty());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MshrFile::new(4);
        for i in 0..3 {
            m.allocate(LineAddr::from_index(i));
        }
        m.release(LineAddr::from_index(0));
        assert_eq!(m.peak(), 3);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn contains_reflects_outstanding() {
        let mut m = MshrFile::new(2);
        let a = LineAddr::from_index(7);
        assert!(!m.contains(a));
        m.allocate(a);
        assert!(m.contains(a));
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
