//! Runtime-dispatched SIMD kernels for the hot replay loops.
//!
//! Three integer kernels back the lockstep replay path and the cache
//! tag scan: a broadcast add over lane-indexed `u64` arrays, an
//! any-lane deadline test, and a 4-way set scan. Each kernel exists in
//! three tiers — a scalar reference implementation, an SSE2 baseline,
//! and an AVX2 fast path — selected at runtime with
//! [`std::is_x86_feature_detected!`]. All three tiers compute
//! *bit-identical* results: every operation is exact integer
//! arithmetic (wrapping adds and compares), so simulation output never
//! depends on the host CPU. The scalar tier is the reference: the SIMD
//! tiers are differentially tested against it, and `EBCP_SIMD=scalar`
//! (or `sse2`) in the environment caps the detected tier so the
//! fallback paths run under CI on AVX2 hosts too.

use std::sync::OnceLock;

/// A SIMD capability tier. Ordered: later tiers imply earlier ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar reference implementation (always available).
    Scalar,
    /// 128-bit SSE2 path (baseline on every `x86_64`).
    Sse2,
    /// 256-bit AVX2 path.
    Avx2,
}

impl SimdTier {
    /// Whether this tier can run on the current host.
    pub fn available(self) -> bool {
        self <= detect_hw()
    }

    /// Human-readable tier name (matches the `EBCP_SIMD` spellings).
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// Every tier the current host can run, in ascending order.
    pub fn available_tiers() -> Vec<SimdTier> {
        [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2]
            .into_iter()
            .filter(|t| t.available())
            .collect()
    }
}

/// The best tier the hardware supports, ignoring the env override.
fn detect_hw() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
        // SSE2 is part of the x86_64 baseline ABI.
        SimdTier::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdTier::Scalar
}

/// Detects the dispatch tier: hardware capability, capped by the
/// `EBCP_SIMD` environment variable (`scalar` | `sse2` | `avx2`).
///
/// The override can only *lower* the tier — requesting `avx2` on a
/// host without it still yields the best available path. Unknown
/// values are ignored. Because all tiers are bit-identical, the
/// override changes which code runs, never what it computes; it exists
/// so tests and CI can exercise the fallback paths deliberately.
pub fn detect() -> SimdTier {
    let hw = detect_hw();
    match std::env::var("EBCP_SIMD").as_deref() {
        Ok("scalar") => SimdTier::Scalar,
        Ok("sse2") => SimdTier::Sse2.min(hw),
        _ => hw,
    }
}

/// The process-wide dispatch tier, detected once and cached.
pub fn tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(detect)
}

// ---------------------------------------------------------------------------
// add_broadcast: xs[i] += inc (wrapping) for every lane.
// ---------------------------------------------------------------------------

/// Adds `inc` to every element of `xs` (wrapping).
///
/// The lockstep replay uses this to advance every lane's cycle counter
/// by the shared per-entry increment in one pass.
#[inline]
pub fn add_broadcast(tier: SimdTier, xs: &mut [u64], inc: u64) {
    match tier {
        SimdTier::Scalar => add_broadcast_scalar(xs, inc),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { add_broadcast_sse2(xs, inc) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { add_broadcast_avx2(xs, inc) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => add_broadcast_scalar(xs, inc),
    }
}

fn add_broadcast_scalar(xs: &mut [u64], inc: u64) {
    for x in xs {
        *x = x.wrapping_add(inc);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn add_broadcast_sse2(xs: &mut [u64], inc: u64) {
    use std::arch::x86_64::*;
    let vinc = _mm_set1_epi64x(inc as i64);
    let mut chunks = xs.chunks_exact_mut(2);
    for c in &mut chunks {
        let p = c.as_mut_ptr().cast::<__m128i>();
        _mm_storeu_si128(p, _mm_add_epi64(_mm_loadu_si128(p), vinc));
    }
    add_broadcast_scalar(chunks.into_remainder(), inc);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_broadcast_avx2(xs: &mut [u64], inc: u64) {
    use std::arch::x86_64::*;
    let vinc = _mm256_set1_epi64x(inc as i64);
    let mut chunks = xs.chunks_exact_mut(4);
    for c in &mut chunks {
        let p = c.as_mut_ptr().cast::<__m256i>();
        _mm256_storeu_si256(p, _mm256_add_epi64(_mm256_loadu_si256(p), vinc));
    }
    add_broadcast_scalar(chunks.into_remainder(), inc);
}

// ---------------------------------------------------------------------------
// any_due: does any lane have next_ev[i] <= cycle[i] + step?
// ---------------------------------------------------------------------------

/// Returns `true` if any lane's next event deadline falls within the
/// entry about to be replayed: `next_ev[i] <= cycle[i] + step`
/// (unsigned, wrapping add — idle lanes carry `u64::MAX`).
///
/// # Panics
///
/// Panics if the two slices differ in length (debug builds).
#[inline]
pub fn any_due(tier: SimdTier, next_ev: &[u64], cycle: &[u64], step: u64) -> bool {
    debug_assert_eq!(next_ev.len(), cycle.len());
    match tier {
        SimdTier::Scalar => any_due_scalar(next_ev, cycle, step),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { any_due_sse2(next_ev, cycle, step) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { any_due_avx2(next_ev, cycle, step) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => any_due_scalar(next_ev, cycle, step),
    }
}

fn any_due_scalar(next_ev: &[u64], cycle: &[u64], step: u64) -> bool {
    next_ev
        .iter()
        .zip(cycle)
        .any(|(&ne, &cy)| ne <= cy.wrapping_add(step))
}

/// Per-64-bit-lane unsigned `a > b` using only SSE2 ops: compare the
/// halves as unsigned 32-bit (sign-flip + signed compare) and combine
/// `hi_gt | (hi_eq & lo_gt)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn cmpgt_epu64_sse2(
    a: std::arch::x86_64::__m128i,
    b: std::arch::x86_64::__m128i,
) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    let sign32 = _mm_set1_epi32(i32::MIN);
    let gt32 = _mm_cmpgt_epi32(_mm_xor_si128(a, sign32), _mm_xor_si128(b, sign32));
    let eq32 = _mm_cmpeq_epi32(a, b);
    // Broadcast each 64-bit lane's high (odd) and low (even) 32-bit
    // verdicts across the lane.
    let gt_hi = _mm_shuffle_epi32(gt32, 0b1111_0101);
    let eq_hi = _mm_shuffle_epi32(eq32, 0b1111_0101);
    let gt_lo = _mm_shuffle_epi32(gt32, 0b1010_0000);
    _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn any_due_sse2(next_ev: &[u64], cycle: &[u64], step: u64) -> bool {
    use std::arch::x86_64::*;
    let vstep = _mm_set1_epi64x(step as i64);
    let n = next_ev.len();
    let mut i = 0;
    while i + 2 <= n {
        let ne = _mm_loadu_si128(next_ev.as_ptr().add(i).cast());
        let cy = _mm_loadu_si128(cycle.as_ptr().add(i).cast());
        // Due unless ne > cy + step in every lane.
        let gt = cmpgt_epu64_sse2(ne, _mm_add_epi64(cy, vstep));
        if _mm_movemask_epi8(gt) != 0xFFFF {
            return true;
        }
        i += 2;
    }
    any_due_scalar(&next_ev[i..], &cycle[i..], step)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn any_due_avx2(next_ev: &[u64], cycle: &[u64], step: u64) -> bool {
    use std::arch::x86_64::*;
    let vstep = _mm256_set1_epi64x(step as i64);
    let sign = _mm256_set1_epi64x(i64::MIN);
    let n = next_ev.len();
    let mut i = 0;
    while i + 4 <= n {
        let ne = _mm256_loadu_si256(next_ev.as_ptr().add(i).cast());
        let cy = _mm256_loadu_si256(cycle.as_ptr().add(i).cast());
        let b = _mm256_add_epi64(cy, vstep);
        // Unsigned ne > b via sign-bit flip + signed compare.
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(ne, sign), _mm256_xor_si256(b, sign));
        if _mm256_movemask_epi8(gt) != -1 {
            return true;
        }
        i += 4;
    }
    any_due_scalar(&next_ev[i..], &cycle[i..], step)
}

// ---------------------------------------------------------------------------
// scan4: hit way + replacement victim of a 4-way cache set.
// ---------------------------------------------------------------------------

/// Scans a 4-way set: returns `(hit_way, victim_way)` where `hit_way`
/// is the matching way index or `4` on a miss, and `victim_way` is the
/// replacement choice — the first empty way (`tags[i] == u64::MAX`) if
/// any, else the first way with the smallest LRU stamp.
///
/// Precondition (upheld by the cache): non-empty tags within a set are
/// unique, and live LRU stamps are `>= 1` so empty ways (key 0) always
/// win the strict-`<` argmin.
#[inline]
pub fn scan4(tier: SimdTier, tags: &[u64; 4], lru: &[u32; 4], tag: u64) -> (u32, u32) {
    match tier {
        SimdTier::Scalar => scan4_scalar(tags, lru, tag),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { scan4_sse2(tags, lru, tag) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { scan4_avx2(tags, lru, tag) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scan4_scalar(tags, lru, tag),
    }
}

/// [`scan4`] with static dispatch for the per-probe call site in the
/// cache model.
///
/// A cache probe scans exactly 32 bytes of tags; at that size the work
/// is a handful of cycles, and profiling showed the per-call cost of
/// runtime dispatch — a cached-tier load plus a call into a
/// `#[target_feature]` function that cannot inline across the feature
/// boundary — exceeding the scan itself (the dispatched AVX2 probe
/// benched *slower* than the plain scalar loop it replaced). SSE2 is
/// part of the x86_64 baseline ABI, so the SSE2 kernel inlines
/// directly here with no dispatch and no call; other architectures get
/// the scalar reference. Runtime tier dispatch stays on the
/// lane-indexed kernels ([`add_broadcast`], [`any_due`]), whose arrays
/// grow with the lockstep group and amortize the dispatch. All tiers
/// are bit-identical, so this choice never affects results.
#[inline(always)]
pub fn scan4_probe(tags: &[u64; 4], lru: &[u32; 4], tag: u64) -> (u32, u32) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 is unconditionally available on x86_64 (it is
        // part of the baseline ABI), so the target-feature contract
        // holds on every host this cfg selects.
        unsafe { scan4_sse2(tags, lru, tag) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    scan4_scalar(tags, lru, tag)
}

fn scan4_scalar(tags: &[u64; 4], lru: &[u32; 4], tag: u64) -> (u32, u32) {
    let mut hit = 4u32;
    let mut victim = 0u32;
    let mut best = u32::MAX;
    for i in 0..4 {
        if tags[i] == tag && hit == 4 {
            hit = i as u32;
        }
        let key = if tags[i] == u64::MAX { 0 } else { lru[i] };
        if key < best {
            best = key;
            victim = i as u32;
        }
    }
    (hit, victim)
}

/// Resolves the two 4-bit masks (hit ways, empty ways) plus the LRU
/// stamps into the `(hit, victim)` pair; shared by both SIMD tiers.
#[cfg(target_arch = "x86_64")]
#[inline]
fn resolve_masks(hit_mask: u32, empty_mask: u32, lru: &[u32; 4]) -> (u32, u32) {
    let hit = hit_mask.trailing_zeros().min(4);
    let mut victim = 0u32;
    let mut best = u32::MAX;
    for (i, &l) in lru.iter().enumerate() {
        let key = if empty_mask & (1 << i) != 0 { 0 } else { l };
        if key < best {
            best = key;
            victim = i as u32;
        }
    }
    (hit, victim)
}

/// Per-64-bit-lane equality using only SSE2 ops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn cmpeq_epi64_sse2(
    a: std::arch::x86_64::__m128i,
    b: std::arch::x86_64::__m128i,
) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    let eq32 = _mm_cmpeq_epi32(a, b);
    _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0b1011_0001))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn scan4_sse2(tags: &[u64; 4], lru: &[u32; 4], tag: u64) -> (u32, u32) {
    use std::arch::x86_64::*;
    let lo = _mm_loadu_si128(tags.as_ptr().cast());
    let hi = _mm_loadu_si128(tags.as_ptr().add(2).cast());
    let vtag = _mm_set1_epi64x(tag as i64);
    let vnone = _mm_set1_epi64x(-1);
    let hit_mask = (_mm_movemask_pd(_mm_castsi128_pd(cmpeq_epi64_sse2(lo, vtag))) as u32)
        | ((_mm_movemask_pd(_mm_castsi128_pd(cmpeq_epi64_sse2(hi, vtag))) as u32) << 2);
    let empty_mask = (_mm_movemask_pd(_mm_castsi128_pd(cmpeq_epi64_sse2(lo, vnone))) as u32)
        | ((_mm_movemask_pd(_mm_castsi128_pd(cmpeq_epi64_sse2(hi, vnone))) as u32) << 2);
    resolve_masks(hit_mask, empty_mask, lru)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scan4_avx2(tags: &[u64; 4], lru: &[u32; 4], tag: u64) -> (u32, u32) {
    use std::arch::x86_64::*;
    let t = _mm256_loadu_si256(tags.as_ptr().cast());
    let hit_mask = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
        t,
        _mm256_set1_epi64x(tag as i64),
    ))) as u32;
    let empty_mask = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
        t,
        _mm256_set1_epi64x(-1),
    ))) as u32;
    resolve_masks(hit_mask, empty_mask, lru)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — tiny deterministic PRNG for differential cases.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn env_override_only_lowers_the_tier() {
        // detect() itself reads the ambient env; the capping logic is
        // what matters and is pure.
        assert!(SimdTier::Scalar.available());
        assert!(detect() <= detect_hw());
        assert!(SimdTier::Scalar <= SimdTier::Sse2 && SimdTier::Sse2 <= SimdTier::Avx2);
    }

    #[test]
    fn add_broadcast_tiers_agree() {
        let mut rng = Rng(0x5eed_0001);
        for len in 0..13 {
            let base: Vec<u64> = (0..len).map(|_| rng.next()).collect();
            let inc = rng.next();
            let mut reference = base.clone();
            add_broadcast_scalar(&mut reference, inc);
            for tier in SimdTier::available_tiers() {
                let mut xs = base.clone();
                add_broadcast(tier, &mut xs, inc);
                assert_eq!(xs, reference, "tier {} len {len}", tier.label());
            }
        }
    }

    #[test]
    fn any_due_tiers_agree_on_randomized_lanes() {
        let mut rng = Rng(0x5eed_0002);
        for case in 0..400 {
            let len = (rng.next() % 13) as usize;
            // Mix sentinel MAX deadlines with near-cycle ones so both
            // verdicts occur; bias cycles small like real replays.
            let cycle: Vec<u64> = (0..len).map(|_| rng.next() % 1_000_000).collect();
            let next_ev: Vec<u64> = cycle
                .iter()
                .map(|&c| match rng.next() % 3 {
                    0 => u64::MAX,
                    1 => c + rng.next() % 64,
                    _ => c + 1 + rng.next() % 100_000,
                })
                .collect();
            let step = rng.next() % 128;
            let want = any_due_scalar(&next_ev, &cycle, step);
            for tier in SimdTier::available_tiers() {
                assert_eq!(
                    any_due(tier, &next_ev, &cycle, step),
                    want,
                    "tier {} case {case}",
                    tier.label()
                );
            }
        }
    }

    #[test]
    fn any_due_handles_wrapping_sums() {
        // cycle + step wraps past u64::MAX: the SIMD adds wrap the same
        // way the scalar `wrapping_add` does.
        let cycle = [u64::MAX - 1, 5, u64::MAX, 0];
        let next_ev = [3, u64::MAX, u64::MAX - 1, 1];
        for step in [0, 1, 2, u64::MAX] {
            let want = any_due_scalar(&next_ev, &cycle, step);
            for tier in SimdTier::available_tiers() {
                assert_eq!(any_due(tier, &next_ev, &cycle, step), want);
            }
        }
    }

    #[test]
    fn scan4_tiers_agree_on_randomized_sets() {
        let mut rng = Rng(0x5eed_0003);
        for case in 0..500 {
            // Distinct non-empty tags (the cache invariant), a sprinkle
            // of empty ways, live stamps >= 1 with deliberate ties.
            let mut tags = [0u64; 4];
            let mut lru = [0u32; 4];
            for i in 0..4 {
                tags[i] = if rng.next() % 4 == 0 {
                    u64::MAX
                } else {
                    // Unique per way by construction.
                    (rng.next() % 1000) * 4 + i as u64
                };
                lru[i] = 1 + (rng.next() % 5) as u32;
            }
            // Probe either a resident tag or an absent one.
            let probe = if rng.next() % 2 == 0 {
                tags[(rng.next() % 4) as usize]
            } else {
                rng.next() % 4000 + 4096
            };
            let probe = if probe == u64::MAX { 7 } else { probe };
            let want = scan4_scalar(&tags, &lru, probe);
            for tier in SimdTier::available_tiers() {
                assert_eq!(
                    scan4(tier, &tags, &lru, probe),
                    want,
                    "tier {} case {case} tags {tags:?} lru {lru:?} probe {probe}",
                    tier.label()
                );
            }
            assert_eq!(
                scan4_probe(&tags, &lru, probe),
                want,
                "static probe kernel, case {case} tags {tags:?} lru {lru:?} probe {probe}"
            );
        }
    }

    #[test]
    fn scan4_prefers_first_empty_way_then_first_lru_tie() {
        let lru = [7, 3, 3, 9];
        // No empties: first of the tied-minimum ways (1) wins.
        let tags = [10, 20, 30, 40];
        for tier in SimdTier::available_tiers() {
            assert_eq!(scan4(tier, &tags, &lru, 30), (2, 1), "{}", tier.label());
            assert_eq!(scan4(tier, &tags, &lru, 99), (4, 1), "{}", tier.label());
        }
        // An empty way beats every live stamp.
        let tags = [10, 20, u64::MAX, u64::MAX];
        for tier in SimdTier::available_tiers() {
            assert_eq!(scan4(tier, &tags, &lru, 10), (0, 2), "{}", tier.label());
        }
    }
}
