//! Property tests for the std-only JSON codec (`ebcp_harness::json`).
//!
//! The codec backs the result store and both results artifacts, so the
//! properties pin exactly what those rely on: `u64` counters survive
//! with no `f64` round-trip, every escape class in strings survives,
//! and arbitrarily nested documents re-parse to the same tree from both
//! the compact and the pretty renderer.

use ebcp_harness::json::{parse, Value};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Characters chosen to hit every writer branch: plain ASCII, the
/// named escapes, raw control bytes (`\u00xx`), multi-byte UTF-8, and
/// the solidus the parser accepts escaped.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '/', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', 'é',
    'λ', '中', '💾',
];

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| PALETTE[i]).collect())
}

/// Generates one value at `depth` remaining levels of nesting.
fn gen_value(rng: &mut TestRng, depth: usize) -> Value {
    let arms = if depth == 0 { 5 } else { 7 };
    match rng.below(arms) {
        0 => Value::Null,
        1 => Value::Bool(rng.next_u64() & 1 == 1),
        2 => Value::Int(rng.next_u64()),
        // Finite floats only (the writer maps NaN/inf to null).
        3 => Value::Num(rng.next_u64() as i64 as f64 / 777.0),
        4 => {
            use proptest::strategy::Strategy as _;
            Value::Str(arb_string().generate(rng))
        }
        5 => Value::Arr(
            (0..rng.below(4))
                .map(|_| gen_value(rng, depth - 1))
                .collect(),
        ),
        _ => {
            use proptest::strategy::Strategy as _;
            Value::Obj(
                (0..rng.below(4))
                    .map(|_| (arb_string().generate(rng), gen_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Arbitrary documents nested up to four levels deep.
struct ArbValue;

impl Strategy for ArbValue {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        gen_value(rng, 4)
    }
}

/// What the codec canonicalizes on a write→parse pass: a non-negative
/// integral float re-parses as the exact integer it prints as, and
/// non-finite floats print as `null`. Everything else is preserved.
fn normalize(v: &Value) -> Value {
    match v {
        Value::Num(f) if !f.is_finite() => Value::Null,
        Value::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
            // Display prints e.g. 42.0 as "42", which parses as Int —
            // but only when the shortest decimal rendering carries no
            // '.', 'e' or '+', i.e. the value also survives u64 parse.
            match format!("{f}").parse::<u64>() {
                Ok(n) => Value::Int(n),
                Err(_) => Value::Num(*f),
            }
        }
        Value::Arr(items) => Value::Arr(items.iter().map(normalize).collect()),
        Value::Obj(fields) => Value::Obj(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), normalize(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

proptest! {
    #[test]
    fn u64_counters_round_trip_exactly(n in any::<u64>()) {
        // No f64 detour: 2^53-adjacent and max values stay bit-exact.
        prop_assert_eq!(parse(&Value::Int(n).to_json()).unwrap(), Value::Int(n));
        prop_assert_eq!(
            parse(&Value::Int(n).to_json_pretty()).unwrap().as_u64(),
            Some(n)
        );
    }

    #[test]
    fn strings_with_every_escape_class_round_trip(s in arb_string()) {
        let v = Value::Str(s.clone());
        for text in [v.to_json(), v.to_json_pretty()] {
            prop_assert_eq!(parse(&text).unwrap().as_str(), Some(s.as_str()));
        }
    }

    #[test]
    fn nested_documents_round_trip_compact_and_pretty(v in ArbValue) {
        let want = normalize(&v);
        prop_assert_eq!(parse(&v.to_json()).unwrap(), want.clone());
        prop_assert_eq!(parse(&v.to_json_pretty()).unwrap(), want);
    }

    #[test]
    fn parse_then_write_is_a_fixed_point(v in ArbValue) {
        // After one write→parse pass the representation is canonical:
        // writing and re-parsing it changes nothing, which is what the
        // byte-identical results.json contract leans on.
        let once = parse(&v.to_json()).unwrap();
        let twice = parse(&once.to_json()).unwrap();
        prop_assert_eq!(&twice, &once);
        prop_assert_eq!(parse(&once.to_json_pretty()).unwrap(), once);
    }
}
