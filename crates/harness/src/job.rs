//! Content-addressed simulation jobs.
//!
//! A [`Job`] pairs a [`RunSpec`] with a [`PrefetcherSpec`]. Its identity
//! is a hash over a canonical byte string derived from both, so the same
//! `(workload, seed, lengths, machine, prefetcher)` submitted by two
//! different experiment drivers collapses to one simulation — and to one
//! entry in the on-disk result store across processes.

use ebcp_sim::{PrefetcherSpec, RunSpec};

/// Schema tag mixed into every canonical string. Bump when the meaning
/// of a spec field changes without its `Debug` shape changing, to
/// invalidate stale on-disk results.
///
/// v2: the engine switched to eager L1 fills (two-phase pipeline), which
/// shifts absolute timing numbers — v1 cached results describe the old
/// model.
pub const CANON_VERSION: &str = "ebcp-job-v2";

/// 64-bit FNV-1a. Stable across platforms and processes (unlike
/// `DefaultHasher`, which is randomly keyed per process), so hashes can
/// key an on-disk store.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Incremental form of [`fnv1a64`], for hashing data produced in
/// chunks (e.g. streaming cache-file writers) without buffering it.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts a fresh hash at the FNV offset basis.
    #[must_use]
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A job's stable identity: the FNV-1a hash of its canonical string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One unit of work: run `pf` over the trace described by `spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Workload, trace length and machine.
    pub spec: RunSpec,
    /// Prefetcher to simulate.
    pub pf: PrefetcherSpec,
}

impl Job {
    /// Creates a job.
    pub fn new(spec: RunSpec, pf: PrefetcherSpec) -> Self {
        Job { spec, pf }
    }

    /// The canonical string the job's identity hashes over.
    ///
    /// Built from the `Debug` representation of both specs, which is
    /// complete (every field of every spec type derives `Debug`) and
    /// deterministic. `f64` fields print as shortest round-trip decimals,
    /// so distinct bit patterns yield distinct strings; config floats
    /// are plain literals (no NaN, no −0.0), so the mapping is injective
    /// in practice. Stored next to each cached result to detect hash
    /// collisions.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!("{CANON_VERSION}|{:?}|{:?}", self.spec, self.pf)
    }

    /// The job's content hash.
    #[must_use]
    pub fn id(&self) -> JobId {
        JobId(fnv1a64(self.canonical().as_bytes()))
    }

    /// Hash identifying the *trace* this job replays: workload, seed and
    /// record count, but not the machine or prefetcher. Jobs with equal
    /// trace keys can share one materialized trace.
    #[must_use]
    pub fn trace_key(&self) -> u64 {
        let s = format!(
            "{CANON_VERSION}|trace|{:?}|{}|{}",
            self.spec.workload,
            self.spec.seed,
            self.spec.warmup_insts + self.spec.measure_insts,
        );
        fnv1a64(s.as_bytes())
    }

    /// Hash identifying the *pre-resolved event stream* this job can
    /// replay: the trace identity plus the L1 geometries the stream was
    /// resolved under — but not the rest of the machine or the
    /// prefetcher. Jobs with equal pre-keys (every cell of a prefetcher
    /// sweep) share one stream.
    #[must_use]
    pub fn pre_key(&self) -> u64 {
        let s = format!(
            "{CANON_VERSION}|pre|{:?}|{}|{}|{:?}|{:?}",
            self.spec.workload,
            self.spec.seed,
            self.spec.warmup_insts + self.spec.measure_insts,
            self.spec.sim.l1i,
            self.spec.sim.l1d,
        );
        fnv1a64(s.as_bytes())
    }

    /// Total trace records the job will consume.
    #[must_use]
    pub const fn records(&self) -> u64 {
        self.spec.warmup_insts + self.spec.measure_insts
    }

    /// Short human label, e.g. `database x ebcp`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} x {}", self.spec.workload.name, self.pf.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_core::EbcpConfig;
    use ebcp_sim::SimConfig;
    use ebcp_trace::WorkloadSpec;

    fn job(seed: u64) -> Job {
        Job::new(
            RunSpec {
                workload: WorkloadSpec::database().scaled(1, 16),
                seed,
                warmup_insts: 10_000,
                measure_insts: 5_000,
                sim: SimConfig::scaled_down(16),
            },
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()),
        )
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn equal_jobs_equal_ids() {
        assert_eq!(job(3).id(), job(3).id());
    }

    #[test]
    fn different_seed_different_id_same_everything_else() {
        assert_ne!(job(3).id(), job(4).id());
    }

    #[test]
    fn prefetcher_changes_id_but_not_trace_key() {
        let a = job(3);
        let b = Job::new(a.spec.clone(), PrefetcherSpec::None);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.trace_key(), b.trace_key());
    }

    #[test]
    fn machine_changes_id_but_not_trace_key() {
        let a = job(3);
        let mut b = a.clone();
        b.spec.sim = SimConfig::scaled_down(4);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.trace_key(), b.trace_key());
    }

    #[test]
    fn prefetcher_and_backend_changes_keep_pre_key() {
        let a = job(3);
        // Different prefetcher: same stream.
        let b = Job::new(a.spec.clone(), PrefetcherSpec::None);
        assert_eq!(a.pre_key(), b.pre_key());
        // Back-end machine change (L2 etc.) with identical L1s: still
        // the same stream.
        let mut c = a.clone();
        c.spec.sim.l2 = ebcp_mem::CacheGeometry::new(1 << 20, 8);
        assert_eq!(a.pre_key(), c.pre_key());
        // L1 geometry change: a different stream.
        let mut d = a.clone();
        d.spec.sim.l1d = ebcp_mem::CacheGeometry::new(1 << 13, 2);
        assert_ne!(a.pre_key(), d.pre_key());
        // Different trace: a different stream.
        let e = job(4);
        assert_ne!(a.pre_key(), e.pre_key());
    }

    #[test]
    fn workload_changes_trace_key() {
        let a = job(3);
        let mut b = a.clone();
        b.spec.workload = WorkloadSpec::tpcw().scaled(1, 16);
        assert_ne!(a.trace_key(), b.trace_key());
    }

    #[test]
    fn id_formats_as_16_hex_digits() {
        let id = job(1).id();
        let s = id.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
