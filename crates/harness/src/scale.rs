//! Experiment scaling.
//!
//! Lives in the harness (rather than the bench crate) because it is
//! shared by every layer that turns a *named* sweep into concrete jobs:
//! the experiment drivers in `ebcp-bench` and the sweep service in
//! `ebcp-serve` both resolve scales and rosters through this module, so
//! a client and a daemon built from the same workspace agree exactly on
//! what "quick" means.

use ebcp_prefetch::{
    AmcConfig, BaselineConfig, GhbConfig, SmsConfig, SolihinConfig, StreamConfig, TcpConfig,
    TriangelConfig,
};
use ebcp_sim::{CmpSpec, RunSpec, SimConfig};
use ebcp_trace::WorkloadSpec;

/// How large an experiment to run.
///
/// `den` divides the machine's caches, the workload footprints and every
/// capacity-class predictor table; warm-up and measurement lengths are
/// expressed in tenths of the workload's recurrence interval (warm-up
/// needs ~3.5 intervals for correlation tables to mature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Scale denominator (1 = the paper's full machine).
    pub den: u64,
    /// Warm-up, in tenths of the recurrence interval.
    pub warm_tenths: u64,
    /// Measurement, in tenths of the recurrence interval.
    pub measure_tenths: u64,
    /// Trace seed.
    pub seed: u64,
}

impl Scale {
    /// Fast CI-sized runs (1/16 machine).
    pub const fn quick() -> Self {
        Scale {
            den: 16,
            warm_tenths: 35,
            measure_tenths: 10,
            seed: 11,
        }
    }

    /// The default reporting scale (1/4 machine, ~minutes for the full
    /// suite on one core).
    pub const fn standard() -> Self {
        Scale {
            den: 4,
            warm_tenths: 35,
            measure_tenths: 10,
            seed: 11,
        }
    }

    /// The paper's full 2 MB-L2 machine (long runs, streamed traces).
    pub const fn full() -> Self {
        Scale {
            den: 1,
            warm_tenths: 35,
            measure_tenths: 10,
            seed: 11,
        }
    }

    /// The scale-out tier: the quick machine over **100×-longer
    /// traces** (the warm-up/measure tenths are 100× quick's). Trace
    /// length, not machine size, is what stresses the scaled-out
    /// pipeline — segmented on-disk traces, block-streamed pre-resolved
    /// events, segment-parallel replay — so this tier keeps the 1/16
    /// machine where every prefetcher is cheap to build and spends its
    /// time on volume. Runs are expected to use the bounded-memory
    /// streamed path (`--mem-budget`): peak RSS stays O(segment)
    /// regardless of trace length.
    pub const fn large() -> Self {
        Scale {
            den: 16,
            warm_tenths: 3_500,
            measure_tenths: 1_000,
            seed: 11,
        }
    }

    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "standard" => Some(Self::standard()),
            "full" => Some(Self::full()),
            "large" => Some(Self::large()),
            _ => None,
        }
    }

    /// The four workload presets at this scale.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        WorkloadSpec::all_presets()
            .into_iter()
            .map(|w| w.scaled(1, self.den as usize))
            .collect()
    }

    /// The extended workload roster at this scale: the paper's four plus
    /// the evolving-graph preset. Comparison sweeps and differential
    /// batteries use this; the paper's figures keep
    /// [`Scale::workloads`].
    pub fn workloads_all(&self) -> Vec<WorkloadSpec> {
        WorkloadSpec::extended_presets()
            .into_iter()
            .map(|w| w.scaled(1, self.den as usize))
            .collect()
    }

    /// The machine at this scale.
    pub fn machine(&self) -> SimConfig {
        SimConfig::scaled_down(self.den)
    }

    /// Builds the run specification for one workload.
    pub fn run_spec(&self, w: &WorkloadSpec, sim: SimConfig) -> RunSpec {
        let interval = w.recurrence_interval();
        RunSpec {
            workload: w.clone(),
            seed: self.seed,
            warmup_insts: interval * self.warm_tenths / 10,
            measure_insts: interval * self.measure_tenths / 10,
            sim,
        }
    }

    /// The N-core CMP cell for one **unscaled** workload preset: each
    /// core runs a disjoint copy of the workload — its own transaction
    /// mix (`seed_tag`), its own address space, and a per-core share of
    /// the footprint — over the shared L2/bus/DRAM at this scale.
    ///
    /// One recipe shared by the figure driver (`repro cmp`), the sweep
    /// service's `cores` axis and the throughput bench, so the same
    /// grid point is content-identical (same `CmpJob` id, same caches)
    /// wherever it is built.
    pub fn cmp_spec(&self, preset: &WorkloadSpec, cores: usize) -> CmpSpec {
        let per_core: Vec<(WorkloadSpec, u64)> = (0..cores)
            .map(|k| {
                let w = WorkloadSpec {
                    seed_tag: 0x0d00 + k as u64,
                    addr_space: 1 + k as u64,
                    ..preset.clone().scaled(1, self.den as usize * cores)
                };
                (w, self.seed + k as u64)
            })
            .collect();
        let interval = per_core
            .iter()
            .map(|(w, _)| w.recurrence_interval())
            .max()
            .unwrap_or(1);
        CmpSpec::heterogeneous(
            &format!("{}-mix", preset.name),
            per_core,
            interval * self.warm_tenths / 10,
            interval * self.measure_tenths / 10,
            self.machine(),
        )
    }

    /// Divides a table-entry count by the scale denominator (minimum 1K).
    pub fn entries(&self, full_scale: u64) -> u64 {
        (full_scale / self.den).max(1 << 10)
    }

    /// The Figure 9 baseline roster with capacity-class tables scaled.
    pub fn figure9_roster(&self) -> Vec<(&'static str, BaselineConfig)> {
        let d = self.den as usize;
        let l1_sets = ((32 << 10) / self.den / 64 / 4).max(16);
        vec![
            (
                "ghb-small",
                BaselineConfig::Ghb(GhbConfig {
                    index_entries: ((16 << 10) / d).max(1 << 9),
                    ghb_entries: ((16 << 10) / d).max(1 << 9),
                    ..GhbConfig::small()
                }),
            ),
            (
                "ghb-large",
                BaselineConfig::Ghb(GhbConfig {
                    index_entries: ((256 << 10) / d).max(1 << 10),
                    ghb_entries: ((256 << 10) / d).max(1 << 10),
                    ..GhbConfig::large()
                }),
            ),
            (
                "tcp-small",
                BaselineConfig::Tcp(TcpConfig {
                    l1_sets,
                    pht_sets: (2048 / d).max(64),
                    ..TcpConfig::small()
                }),
            ),
            (
                "tcp-large",
                BaselineConfig::Tcp(TcpConfig {
                    l1_sets,
                    pht_sets: ((32 << 10) / d).max(256),
                    ..TcpConfig::large()
                }),
            ),
            ("stream", BaselineConfig::Stream(StreamConfig::default())),
            (
                "sms",
                BaselineConfig::Sms(SmsConfig {
                    pht_entries: ((16 << 10) / d).max(1 << 9),
                    ..SmsConfig::default()
                }),
            ),
            (
                "solihin-3,2",
                BaselineConfig::Solihin(SolihinConfig {
                    entries: self.entries(1 << 20),
                    ..SolihinConfig::original()
                }),
            ),
            (
                "solihin-6,1",
                BaselineConfig::Solihin(SolihinConfig {
                    entries: self.entries(1 << 20),
                    ..SolihinConfig::deep()
                }),
            ),
        ]
    }

    /// The post-2007 competitor roster with capacity-class tables
    /// scaled. Kept separate from [`Scale::figure9_roster`] so the
    /// paper's figures stay the paper's figures; comparison sweeps
    /// concatenate the two.
    pub fn modern_roster(&self) -> Vec<(&'static str, BaselineConfig)> {
        let d = self.den as usize;
        vec![
            (
                "triangel",
                BaselineConfig::Triangel(TriangelConfig {
                    pc_entries: ((1 << 10) / d).max(128),
                    sample_sets: (64 / d).max(8),
                    markov_sets: ((4 << 10) / d).max(256),
                    ..TriangelConfig::default_config()
                }),
            ),
            (
                "amc",
                BaselineConfig::Amc(AmcConfig {
                    sets: ((4 << 10) / d).max(256),
                    ..AmcConfig::default_config()
                }),
            ),
        ]
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Scale::parse("quick"), Some(Scale::quick()));
        assert_eq!(Scale::parse("standard"), Some(Scale::standard()));
        assert_eq!(Scale::parse("full"), Some(Scale::full()));
        assert_eq!(Scale::parse("large"), Some(Scale::large()));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn large_is_quick_machine_at_100x_length() {
        let (q, l) = (Scale::quick(), Scale::large());
        assert_eq!(l.den, q.den, "same machine");
        assert_eq!(l.warm_tenths, q.warm_tenths * 100);
        assert_eq!(l.measure_tenths, q.measure_tenths * 100);
        let w = &l.workloads()[0];
        let (qs, ls) = (q.run_spec(w, q.machine()), l.run_spec(w, l.machine()));
        assert_eq!(
            ls.warmup_insts + ls.measure_insts,
            (qs.warmup_insts + qs.measure_insts) * 100
        );
    }

    #[test]
    fn workloads_scaled() {
        let s = Scale::standard();
        for w in s.workloads() {
            assert!(w.templates > 0);
        }
        assert_eq!(s.machine().l2.size_bytes(), (2 << 20) / 4);
    }

    #[test]
    fn entries_floor() {
        let s = Scale {
            den: 1 << 30,
            ..Scale::quick()
        };
        assert_eq!(s.entries(1 << 20), 1 << 10);
    }

    #[test]
    fn roster_has_eight_baselines() {
        assert_eq!(Scale::standard().figure9_roster().len(), 8);
    }

    #[test]
    fn modern_roster_scales_and_builds() {
        let names: Vec<_> = Scale::quick()
            .modern_roster()
            .into_iter()
            .map(|(n, cfg)| {
                assert_eq!(cfg.build_named(n).name(), n);
                n
            })
            .collect();
        assert_eq!(names, vec!["triangel", "amc"]);
        // Capacity-class tables shrink with the machine.
        let (full, quick) = (Scale::full(), Scale::quick());
        for ((_, f), (_, q)) in full
            .modern_roster()
            .iter()
            .zip(quick.modern_roster().iter())
        {
            match (f, q) {
                (BaselineConfig::Triangel(f), BaselineConfig::Triangel(q)) => {
                    assert!(q.markov_sets < f.markov_sets);
                }
                (BaselineConfig::Amc(f), BaselineConfig::Amc(q)) => {
                    assert!(q.sets < f.sets);
                }
                other => panic!("unexpected roster pair {other:?}"),
            }
        }
    }

    #[test]
    fn workloads_all_adds_graph() {
        let s = Scale::quick();
        assert_eq!(s.workloads_all().len(), s.workloads().len() + 1);
        let graph = s
            .workloads_all()
            .into_iter()
            .find(|w| w.name == "graph")
            .expect("graph preset present");
        assert!(graph.evolve_every_execs > 0);
        graph.validate().unwrap();
    }

    #[test]
    fn cmp_spec_builds_disjoint_per_core_mixes() {
        let s = Scale::quick();
        let preset = WorkloadSpec::database();
        let spec = s.cmp_spec(&preset, 4);
        assert_eq!(spec.cores(), 4);
        assert_eq!(spec.name, "database-mix");
        for (k, w) in spec.workloads.iter().enumerate() {
            assert_eq!(w.addr_space, 1 + k as u64, "truly disjoint lines");
            assert_eq!(w.seed_tag, 0x0d00 + k as u64, "distinct mixes");
        }
        assert_eq!(spec.seeds, vec![11, 12, 13, 14]);
        // The per-core footprint is a per-core share: scaled by den x n.
        let single = s.cmp_spec(&preset, 1);
        assert!(spec.workloads[0].templates <= single.workloads[0].templates);
        assert!(spec.warmup_insts > 0 && spec.measure_insts > 0);
    }
}
