//! Parallel experiment orchestration for the EBCP reproduction.
//!
//! The harness sits between the simulator (`ebcp-sim`) and the
//! experiment drivers (`ebcp-bench`). Drivers describe work as
//! content-addressed [`Job`]s — a `RunSpec` × `PrefetcherSpec` pair —
//! and submit batches to a [`Harness`], which:
//!
//! - **deduplicates** by content hash, so the no-prefetch baseline a
//!   dozen figures share runs exactly once per workload;
//! - **parallelizes** across a `std::thread` worker pool, running every
//!   job two-phase: one `Arc`-shared pre-resolved L1 event stream per
//!   `(workload, seed, length, L1 geometry)` feeds back-end-only
//!   replays, so a prefetcher sweep pays the front-end cost once per
//!   workload (streams are built by chunked generation — constant
//!   memory — and disk-cached under `preres/`);
//! - **caches** results on disk ([`ResultStore`]), making re-runs
//!   incremental across processes;
//! - **reports** progress and throughput over a telemetry channel,
//!   republishing every event on a harness-lifetime [`EventBus`] (the
//!   seam the sweep service streams live telemetry through), and writes
//!   machine-readable artifacts: a *deterministic* `results.json`
//!   (byte-identical for any worker count, cache state, or transport —
//!   see [`results_doc`]) and a volatile `telemetry.json` (timings,
//!   rates, cache provenance);
//! - **isolates faults**: a job whose simulation panics is caught
//!   ([`std::panic::catch_unwind`]), retried once, and — if it fails
//!   again — recorded as [`JobOutcome::Failed`] without disturbing its
//!   siblings, whose results stay cached; corrupt cache entries are
//!   quarantined (`*.corrupt`) and transparently re-run (self-heal).
//!
//! Results come back in submission order and are bit-identical for any
//! worker count: the simulator is deterministic and assembly never
//! depends on completion order.
//!
//! [`Harness::run`] is the strict entry point: any failed job makes it
//! panic with a summary naming the failed cells (after the whole batch
//! has executed, so sibling results are already memoized and cached).
//! [`Harness::run_outcomes`] is the keep-going entry point: it returns
//! one [`JobOutcome`] per submitted job and never panics on job
//! failure.
//!
//! # Examples
//!
//! ```
//! use ebcp_harness::{Harness, Job};
//! use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
//! use ebcp_trace::WorkloadSpec;
//!
//! let spec = RunSpec {
//!     workload: WorkloadSpec::database().scaled(1, 32),
//!     seed: 7,
//!     warmup_insts: 20_000,
//!     measure_insts: 20_000,
//!     sim: SimConfig::scaled_down(16),
//! };
//! let h = Harness::serial();
//! // The duplicate baseline collapses: two results, one simulation.
//! let jobs =
//!     vec![Job::new(spec.clone(), PrefetcherSpec::None), Job::new(spec, PrefetcherSpec::None)];
//! let results = h.run(&jobs);
//! assert_eq!(results[0], results[1]);
//! assert_eq!(h.summary().executed, 1);
//! ```

pub mod cmp;
pub mod job;
pub mod json;
pub mod preres;
pub mod queue;
pub mod scale;
pub mod source;
pub mod store;
pub mod telemetry;
pub mod traces;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use ebcp_sim::frontend::{PreResolved, PreResolver};
use ebcp_sim::{run_pipelined, run_preresolved_blocks, run_preresolved_blocks_many};
use ebcp_sim::{Engine, SimResult};
use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::{Backing, ChunkSource, TraceGenerator};

pub use crate::cmp::{CmpJob, CmpOutcome, CMP_CANON_VERSION};
pub use crate::job::{fnv1a64, Fnv64, Job, JobId};
pub use crate::json::Value;
pub use crate::queue::{JobService, QueueConfig, ServiceStatus, SubmitError};
pub use crate::scale::Scale;
pub use crate::source::{
    est_pre_bytes, seg_records_for_budget, streamed_peak_bytes, TraceSource,
    DEFAULT_MEM_BUDGET_BYTES,
};
pub use crate::store::{
    store_footprint, CacheRead, ResultStore, StoreClassFootprint, StoreFootprint,
};
pub use crate::telemetry::{Event, EventBus, Progress, ResultSource, RunSummary};

/// Poison-recovering lock. A panic inside a worker is caught and
/// converted to a [`JobOutcome::Failed`], but if one ever unwinds while
/// a guard is held (e.g. out of a hook the catch does not cover), the
/// mutex is *poisoned* — and the data it protects (queues of indices,
/// append-only output slots, counters) is still perfectly valid: no
/// invariant spans a critical section here. Recovering instead of
/// propagating keeps one crashed job from aborting the whole sweep.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload (the `panic!` message when it was a
/// string, which it practically always is).
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".into(),
        },
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Simulated (or served from a cache) successfully.
    Ok(SimResult),
    /// First attempt panicked; the retry succeeded. The result is as
    /// trustworthy as an [`JobOutcome::Ok`] one — the simulator is
    /// deterministic, so a one-shot panic means external interference
    /// (e.g. a blown fault-injection fuse), not flakiness in the result.
    Retried(SimResult),
    /// Both attempts panicked. The job is memoized as failed — it will
    /// not be retried by later batches — and nothing was cached.
    Failed {
        /// The second attempt's panic message.
        reason: String,
    },
}

impl JobOutcome {
    /// The result, unless the job failed.
    pub const fn result(&self) -> Option<&SimResult> {
        match self {
            JobOutcome::Ok(r) | JobOutcome::Retried(r) => Some(r),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// The failure reason, if the job failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            JobOutcome::Failed { reason } => Some(reason),
            _ => None,
        }
    }

    /// True for [`JobOutcome::Failed`].
    pub const fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Per-process trace memory budget, honoured by the
    /// [`TraceSource`] materialize-vs-stream decision for library
    /// callers. The harness's own job execution no longer materializes
    /// traces at all — it builds packed pre-resolved event streams by
    /// chunked generation, whose footprint
    /// ([`PreResolved::est_bytes`]) is a small fraction of the trace's.
    pub mem_budget_bytes: u64,
    /// On-disk result store directory; `None` disables caching.
    pub store_dir: Option<PathBuf>,
    /// Render the live progress line on stderr.
    pub progress: bool,
    /// Replay jobs that share a pre-resolved stream *and* a full
    /// `RunSpec` in lockstep: one pass over the shared event stream
    /// drives all their prefetcher lanes ([`ebcp_sim::Lockstep`]),
    /// amortizing event decode and gap collapse across the sweep.
    /// Results are byte-identical to the serial per-job path (that is
    /// tested, not assumed); a lane that panics is retried serially and
    /// fails alone. Disable to force the one-job-per-replay path.
    pub lockstep: bool,
    /// Keep generated traces on disk in the segmented binary format
    /// (`traces/` under the store directory) and replay them through
    /// mmap'd windows. Effective only with a store configured; each
    /// workload is then generated once per store lifetime instead of
    /// once per process, at the cost of the trace's 17 B/record on
    /// disk. Off by default: generation is deterministic and usually
    /// cheaper than the disk space at quick/standard scales.
    pub trace_store: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            jobs: 0,
            mem_budget_bytes: DEFAULT_MEM_BUDGET_BYTES,
            store_dir: None,
            progress: false,
            lockstep: true,
            trace_store: false,
        }
    }
}

/// Per-job entry for the consolidated `results.json`, created in
/// submission order so the file is deterministic.
#[derive(Debug, Clone)]
struct JobRecord {
    id: JobId,
    workload: String,
    prefetcher: String,
    source: ResultSource,
    wall_ms: Option<u64>,
    insts_per_sec: Option<f64>,
    /// The job succeeded only on its second attempt.
    retried: bool,
    /// Panic message when the job failed on both attempts.
    error: Option<String>,
}

impl JobRecord {
    /// Human label matching [`Job::label`].
    fn label(&self) -> String {
        format!("{} x {}", self.workload, self.prefetcher)
    }

    /// The `outcome` tag written to `results.json`.
    fn outcome_tag(&self) -> &'static str {
        if self.error.is_some() {
            "failed"
        } else if self.retried {
            "retried"
        } else {
            "ok"
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: usize,
    unique: usize,
    executed: usize,
    memo_hits: usize,
    disk_hits: usize,
    failed: usize,
    retried: usize,
    quarantined: usize,
    records_simulated: u64,
    wall: Duration,
}

/// The job-execution engine. See the crate docs for the full contract.
///
/// A `Harness` is long-lived: experiment drivers submit successive
/// batches to the same instance, and the in-process memo deduplicates
/// *across* batches (Figure 4's baselines feed Figure 6 for free).
pub struct Harness {
    cfg: HarnessConfig,
    workers: usize,
    store: Option<ResultStore>,
    memo: Mutex<HashMap<JobId, JobOutcome>>,
    records: Mutex<Vec<JobRecord>>,
    counters: Mutex<Counters>,
    /// Pre-resolved event streams, keyed by [`Job::pre_key`] and shared
    /// across batches for the harness's whole lifetime — in the sweep
    /// daemon, this is the warm cache that makes a repeat sweep's front
    /// end free. One stream is built (or disk-loaded) exactly once: the
    /// first worker to need it initializes the `OnceLock` while others
    /// block on `get_or_init`, then all share the `Arc`.
    pres: Mutex<HashMap<u64, Arc<OnceLock<Arc<PreResolved>>>>>,
    /// Outcomes of CMP cells ([`CmpJob`]), memoized separately from the
    /// single-core memo because the result shapes differ; identity and
    /// lifetime rules are the same.
    cmp_memo: Mutex<HashMap<JobId, CmpOutcome>>,
    /// Fan-out republisher for telemetry [`Event`]s.
    bus: EventBus,
}

impl Harness {
    /// Creates a harness. A configured store directory is created
    /// eagerly; if that fails, caching is disabled with a warning rather
    /// than failing the run.
    pub fn new(cfg: HarnessConfig) -> Self {
        let workers = match cfg.jobs {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            n => n,
        };
        let store = cfg
            .store_dir
            .as_ref()
            .and_then(|dir| match ResultStore::open(dir) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!(
                        "warning: result store at {} unavailable ({e}); caching disabled",
                        dir.display()
                    );
                    None
                }
            });
        Harness {
            cfg,
            workers,
            store,
            memo: Mutex::new(HashMap::new()),
            records: Mutex::new(Vec::new()),
            counters: Mutex::new(Counters::default()),
            pres: Mutex::new(HashMap::new()),
            cmp_memo: Mutex::new(HashMap::new()),
            bus: EventBus::new(),
        }
    }

    /// A single-threaded harness with no disk cache and no progress
    /// output — dedup and memoization only. The right default for tests
    /// and library callers.
    pub fn serial() -> Self {
        Self::new(HarnessConfig {
            jobs: 1,
            ..HarnessConfig::default()
        })
    }

    /// Resolved worker-thread count.
    pub const fn workers(&self) -> usize {
        self.workers
    }

    /// The on-disk store directory, if caching is active.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(ResultStore::dir)
    }

    /// The store's current on-disk footprint — results, pre-resolved
    /// streams and segmented traces — or `None` without a store.
    /// Walks the store directory; cheap at any realistic entry count
    /// but not free, so callers poll it (status requests), they don't
    /// spin on it.
    pub fn store_footprint(&self) -> Option<store::StoreFootprint> {
        self.store_dir().map(store::store_footprint)
    }

    /// The harness's telemetry bus. Subscribe to receive a copy of
    /// every [`Event`] from every batch this harness runs.
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// The already-known outcome for `job`, if the in-process memo has
    /// one — no disk probe, no execution. The sweep service's submit
    /// fast path: warm cells answer instantly without entering the
    /// queue.
    pub fn cached_outcome(&self, job: &Job) -> Option<JobOutcome> {
        lock(&self.memo).get(&job.id()).cloned()
    }

    /// Pre-resolved streams currently held warm (distinct pre-keys).
    pub fn warm_streams(&self) -> usize {
        lock(&self.pres)
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }

    /// Resolves a batch of jobs, returning results in submission order.
    ///
    /// Duplicates — within the batch, against earlier batches, or
    /// against the on-disk store — are served without simulating.
    ///
    /// This is the **strict** entry point: every job must succeed.
    ///
    /// # Panics
    ///
    /// Panics with a summary naming the failed cells if any job failed
    /// (panicked on both attempts). The panic is raised only after the
    /// whole batch has executed, so sibling results are already
    /// memoized and cached; use [`Harness::run_outcomes`] to keep going
    /// instead.
    pub fn run(&self, jobs: &[Job]) -> Vec<SimResult> {
        let outcomes = self.run_outcomes(jobs);
        let mut failed: Vec<String> = Vec::new();
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            if let Some(reason) = outcome.failure() {
                let entry = format!("{} ({reason})", job.label());
                if !failed.contains(&entry) {
                    failed.push(entry);
                }
            }
        }
        assert!(
            failed.is_empty(),
            "{} job(s) failed: {}",
            failed.len(),
            failed.join("; ")
        );
        outcomes
            .into_iter()
            .map(|o| match o {
                JobOutcome::Ok(r) | JobOutcome::Retried(r) => r,
                JobOutcome::Failed { .. } => unreachable!("failures rejected above"),
            })
            .collect()
    }

    /// Resolves a batch of jobs, returning one [`JobOutcome`] per job in
    /// submission order. The **keep-going** entry point: a failed job
    /// yields [`JobOutcome::Failed`] and never disturbs its siblings,
    /// whose results are memoized and cached as usual. Failures are
    /// memoized too — the deterministic simulator would only fail
    /// again — so resubmitting a failed job reports the same outcome
    /// without re-running it.
    pub fn run_outcomes(&self, jobs: &[Job]) -> Vec<JobOutcome> {
        let t0 = Instant::now();

        // Deduplicate, preserving first-submission order. A 64-bit
        // content-hash collision between *different* jobs is astronomically
        // unlikely but cheap to rule out.
        let mut first_seen: HashMap<JobId, usize> = HashMap::new();
        let mut uniques: Vec<&Job> = Vec::new();
        for job in jobs {
            match first_seen.get(&job.id()) {
                Some(&idx) => assert_eq!(
                    uniques[idx],
                    job,
                    "job content-hash collision on {}; bump CANON_VERSION",
                    job.id()
                ),
                None => {
                    first_seen.insert(job.id(), uniques.len());
                    uniques.push(job);
                }
            }
        }

        // Serve what the memo and the disk store already know; queue the
        // rest. Each pending job remembers the index of its pre-created
        // record so worker timing lands in submission order. A corrupt
        // store entry is quarantined by `load_checked` and its job
        // queued like a plain miss — the re-run overwrites it.
        let mut pending: Vec<(usize, &Job)> = Vec::new();
        {
            let mut memo = lock(&self.memo);
            let mut records = lock(&self.records);
            let mut c = lock(&self.counters);
            c.submitted += jobs.len();
            c.unique += uniques.len();
            for job in &uniques {
                let id = job.id();
                let source = match memo.entry(id) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        c.memo_hits += 1;
                        ResultSource::Memory
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        // A single-core `Job` over a CMP *per-core*
                        // workload is a capability mismatch, not a
                        // queueing problem: its trace lives in one core's
                        // private address space and only means something
                        // interleaved with its co-runners through the
                        // shared L2 — which is [`Harness::run_cmp`]'s
                        // job (the discrete-event `CmpEngine`, first-class
                        // memo/disk-cache/fault-isolation included).
                        // Reject with a precise error naming the routing
                        // fix instead of quietly simulating a meaningless
                        // single-core run. The rejection is memoized like
                        // any other failure and never disk-cached.
                        if job.spec.workload.addr_space != 0 {
                            let reason = format!(
                                "single-core Job cannot represent CMP per-core workload '{}' \
                                 (addr_space {}): submit the whole cell as a CmpJob via \
                                 Harness::run_cmp, which routes it through the discrete-event \
                                 CMP engine",
                                job.spec.workload.name, job.spec.workload.addr_space
                            );
                            self.bus.publish(&Event::JobFailed {
                                label: job.label(),
                                reason: reason.clone(),
                            });
                            c.failed += 1;
                            slot.insert(JobOutcome::Failed {
                                reason: reason.clone(),
                            });
                            records.push(JobRecord {
                                id,
                                workload: job.spec.workload.name.clone(),
                                prefetcher: job.pf.name(),
                                source: ResultSource::Executed,
                                wall_ms: None,
                                insts_per_sec: None,
                                retried: false,
                                error: Some(reason),
                            });
                            continue;
                        }
                        let read = match &self.store {
                            Some(s) => s.load_checked(job),
                            None => CacheRead::Miss,
                        };
                        match read {
                            CacheRead::Hit(r) => {
                                c.disk_hits += 1;
                                slot.insert(JobOutcome::Ok(r));
                                ResultSource::Disk
                            }
                            CacheRead::Miss => {
                                pending.push((records.len(), job));
                                ResultSource::Executed
                            }
                            CacheRead::Quarantined { path, reason } => {
                                c.quarantined += 1;
                                let path = path.display().to_string();
                                if self.cfg.progress {
                                    eprintln!(
                                        "warning: quarantined corrupt cache entry {path} \
                                         ({reason}); re-running"
                                    );
                                }
                                self.bus.publish(&Event::CacheQuarantined { path, reason });
                                pending.push((records.len(), job));
                                ResultSource::Executed
                            }
                        }
                    }
                };
                records.push(JobRecord {
                    id,
                    workload: job.spec.workload.name.clone(),
                    prefetcher: job.pf.name(),
                    source,
                    wall_ms: None,
                    insts_per_sec: None,
                    retried: false,
                    error: None,
                });
            }
        }

        if !pending.is_empty() {
            self.execute(&pending);
        }

        {
            let mut c = lock(&self.counters);
            c.wall += t0.elapsed();
        }

        let memo = lock(&self.memo);
        jobs.iter().map(|j| memo[&j.id()].clone()).collect()
    }

    /// The labels and panic reasons of every job that failed so far,
    /// in submission order — the material for a driver's end-of-run
    /// failure summary.
    pub fn failures(&self) -> Vec<(String, String)> {
        lock(&self.records)
            .iter()
            .filter_map(|rec| Some((rec.label(), rec.error.clone()?)))
            .collect()
    }

    /// Runs the pending jobs on the worker pool and folds the outcomes
    /// into the memo, the record table and the counters.
    ///
    /// Every job runs two-phase: its trace is pre-resolved through the
    /// L1 front end into a compact event stream (constant memory — the
    /// generator is streamed in chunks, never materialized), then the
    /// prefetcher-dependent back end replays the stream. Streams are
    /// keyed by [`Job::pre_key`] and `Arc`-shared, so a whole
    /// workload × prefetcher sweep pays the front-end cost once per
    /// workload; with a store configured they are also cached on disk
    /// (`preres/`), making the front end free across processes.
    fn execute(&self, pending: &[(usize, &Job)]) {
        // Group pending jobs that share one pre-resolved stream AND one
        // full `RunSpec` into lockstep units: one replay pass over the
        // shared event stream drives all their prefetcher lanes
        // (`ebcp_sim::Lockstep` via `run_preresolved_many`). Unit order
        // follows first-member submission order; members keep
        // submission order, so results stay deterministic.
        let mut units: Vec<Vec<usize>> = Vec::new();
        if self.cfg.lockstep {
            let mut by_key: HashMap<u64, Vec<usize>> = HashMap::new();
            for (idx, (_, job)) in pending.iter().enumerate() {
                let candidates = by_key.entry(job.pre_key()).or_default();
                // The pre-key covers workload/seed/length/L1; lanes must
                // also agree on the rest of the machine (`SimConfig`).
                match candidates
                    .iter()
                    .find(|&&u| pending[units[u][0]].1.spec == job.spec)
                {
                    Some(&u) => units[u].push(idx),
                    None => {
                        candidates.push(units.len());
                        units.push(vec![idx]);
                    }
                }
            }
        } else {
            units = (0..pending.len()).map(|i| vec![i]).collect();
        }
        let units = &units;
        let workers = self.workers.min(units.len()).max(1);
        // Each concurrent worker gets an equal share of the process
        // memory budget; jobs whose pre-resolved stream would not fit
        // the share run segment-at-a-time (see `stream_plan`).
        let per_worker = (self.cfg.mem_budget_bytes / workers as u64).max(1);

        // Streams come from the harness-lifetime `pres` map (see the
        // field docs). If an initializer panics, the cell stays
        // uninitialized, so a retry (or a sibling job on the same key)
        // rebuilds it from scratch.
        let pres = &self.pres;
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..units.len()).collect());
        type Slot = Result<(SimResult, u64, f64, bool), String>;
        // A lane's outcome before timing attribution: result + retried flag.
        type LaneOut = Result<(SimResult, bool), String>;
        let outputs: Mutex<Vec<Option<Slot>>> = Mutex::new(vec![None; pending.len()]);
        let (tx, rx) = mpsc::channel::<Event>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (queue, outputs) = (&queue, &outputs);
                s.spawn(move || loop {
                    let Some(u) = lock(queue).pop_front() else {
                        break;
                    };
                    let unit = &units[u];
                    for &i in unit {
                        let _ = tx.send(Event::JobStarted {
                            label: pending[i].1.label(),
                        });
                    }
                    let t = Instant::now();

                    // One single-job attempt: front end (shared,
                    // disk-cached) + back-end replay, with any panic
                    // caught so a buggy prefetcher fails only its own
                    // cell. The closure touches `pres` only through a
                    // cloned Arc outside any lock, so no guard is held
                    // across user code. Also the serial retry path for
                    // a lockstep lane that panicked.
                    let attempt_one = |job: &Job| -> Result<SimResult, String> {
                        catch_unwind(AssertUnwindSafe(|| {
                            if let Some(seg_records) = self.stream_plan(job, per_worker) {
                                return self.run_streamed(job, seg_records, &tx);
                            }
                            let cell = Arc::clone(
                                lock(pres)
                                    .entry(job.pre_key())
                                    .or_insert_with(|| Arc::new(OnceLock::new())),
                            );
                            let pre = cell.get_or_init(|| Arc::new(self.prepare_pre(job, &tx)));
                            job.spec.run_preresolved(pre, &job.pf)
                        }))
                        .map_err(panic_reason)
                    };

                    // First attempts: one lockstep pass when the unit
                    // has siblings, the plain single-job path otherwise.
                    // `Lockstep` catches per-lane panics itself, so a
                    // faulting lane surfaces as its own `Err` here; this
                    // outer catch covers pre-resolution and the driver.
                    let firsts: Vec<Result<SimResult, String>> = if unit.len() > 1 {
                        let lead = pending[unit[0]].1;
                        let pfs: Vec<ebcp_sim::PrefetcherSpec> =
                            unit.iter().map(|&i| pending[i].1.pf.clone()).collect();
                        match catch_unwind(AssertUnwindSafe(|| {
                            if let Some(seg_records) = self.stream_plan(lead, per_worker) {
                                if let Some(dir) = self.store_dir() {
                                    // One disk pass over the cached
                                    // block stream drives every lane —
                                    // lockstep amortization at
                                    // O(segment) memory.
                                    let mut stream =
                                        self.prepare_stream(dir, lead, seg_records, &tx);
                                    return run_preresolved_blocks_many(
                                        &lead.spec,
                                        stream.blocks(),
                                        &pfs,
                                    );
                                }
                                // No disk to stream blocks from: each
                                // lane runs the bounded-memory
                                // pipelined path on its own.
                                return unit
                                    .iter()
                                    .map(|&i| Ok(self.run_streamed(pending[i].1, seg_records, &tx)))
                                    .collect();
                            }
                            let cell = Arc::clone(
                                lock(pres)
                                    .entry(lead.pre_key())
                                    .or_insert_with(|| Arc::new(OnceLock::new())),
                            );
                            let pre = cell.get_or_init(|| Arc::new(self.prepare_pre(lead, &tx)));
                            lead.spec.run_preresolved_many(pre, &pfs)
                        })) {
                            Ok(lanes) => lanes,
                            Err(payload) => {
                                let reason = panic_reason(payload);
                                unit.iter().map(|_| Err(reason.clone())).collect()
                            }
                        }
                    } else {
                        vec![attempt_one(pending[unit[0]].1)]
                    };

                    // Retry-once policy, per lane: a first-attempt panic
                    // may be environmental (a torn mmap, a one-shot
                    // fault); a second one is the job's own and final.
                    let lanes: Vec<(usize, LaneOut)> = unit
                        .iter()
                        .zip(firsts)
                        .map(|(&i, first)| {
                            let job = pending[i].1;
                            let out = match first {
                                Ok(result) => Ok((result, false)),
                                Err(first) => {
                                    let _ = tx.send(Event::JobRetried {
                                        label: job.label(),
                                        reason: first,
                                    });
                                    match attempt_one(job) {
                                        Ok(result) => Ok((result, true)),
                                        Err(reason) => Err(reason),
                                    }
                                }
                            };
                            (i, out)
                        })
                        .collect();

                    // The unit ran as one pass; attribute an equal share
                    // of its wall clock to each lane so per-job rates
                    // reflect the amortization.
                    let wall = t.elapsed() / unit.len() as u32;
                    let wall_ms = wall.as_millis() as u64;
                    for (i, out) in lanes {
                        let job = pending[i].1;
                        let slot: Slot = out.map(|(result, retried)| {
                            let rate = job.records() as f64 / wall.as_secs_f64().max(1e-9);
                            (result, wall_ms, rate, retried)
                        });
                        match &slot {
                            Ok((result, wall_ms, rate, _)) => {
                                if let Some(store) = &self.store {
                                    // Cache-write failure loses only incrementality.
                                    let _ = store.save(job, result);
                                }
                                let _ = tx.send(Event::JobFinished {
                                    label: job.label(),
                                    wall_ms: *wall_ms,
                                    insts_per_sec: *rate,
                                });
                            }
                            Err(reason) => {
                                // Nothing cached: a failed job leaves no
                                // on-disk trace to be mistaken for a result.
                                let _ = tx.send(Event::JobFailed {
                                    label: job.label(),
                                    reason: reason.clone(),
                                });
                            }
                        }
                        lock(outputs)[i] = Some(slot);
                    }
                });
            }
            drop(tx);
            // The submitting thread renders progress, republishes every
            // event on the bus, and tallies the resilience events (the
            // per-slot data only says *that* a job was retried, not how
            // many quarantines it healed).
            let mut progress = Progress::new(self.cfg.progress, pending.len());
            let mut quarantined = 0usize;
            for ev in rx {
                if let Event::CacheQuarantined { .. } = &ev {
                    quarantined += 1;
                }
                self.bus.publish(&ev);
                progress.handle(&ev);
            }
            progress.finish();
            lock(&self.counters).quarantined += quarantined;
        });

        let outputs = outputs.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut memo = lock(&self.memo);
        let mut records = lock(&self.records);
        let mut c = lock(&self.counters);
        for ((rec_idx, job), out) in pending.iter().zip(outputs) {
            let slot = out.expect("worker completed every queued job");
            match slot {
                Ok((result, wall_ms, rate, retried)) => {
                    memo.insert(
                        job.id(),
                        if retried {
                            c.retried += 1;
                            JobOutcome::Retried(result.clone())
                        } else {
                            JobOutcome::Ok(result.clone())
                        },
                    );
                    records[*rec_idx].wall_ms = Some(wall_ms);
                    records[*rec_idx].insts_per_sec = Some(rate);
                    records[*rec_idx].retried = retried;
                    c.executed += 1;
                    c.records_simulated += job.records();
                }
                Err(reason) => {
                    memo.insert(
                        job.id(),
                        JobOutcome::Failed {
                            reason: reason.clone(),
                        },
                    );
                    records[*rec_idx].error = Some(reason);
                    c.failed += 1;
                }
            }
        }
    }

    /// Resolves a batch of CMP cells, returning results in submission
    /// order — the **strict** multi-core entry point, mirroring
    /// [`Harness::run`].
    ///
    /// # Panics
    ///
    /// Panics with a summary naming the failed cells if any job failed,
    /// after the whole batch has executed.
    pub fn run_cmp(&self, jobs: &[CmpJob]) -> Vec<ebcp_sim::CmpResult> {
        let outcomes = self.run_cmp_outcomes(jobs);
        let mut failed: Vec<String> = Vec::new();
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            if let Some(reason) = outcome.failure() {
                let entry = format!("{} ({reason})", job.label());
                if !failed.contains(&entry) {
                    failed.push(entry);
                }
            }
        }
        assert!(
            failed.is_empty(),
            "{} CMP job(s) failed: {}",
            failed.len(),
            failed.join("; ")
        );
        outcomes
            .into_iter()
            .map(|o| match o {
                CmpOutcome::Ok(r) | CmpOutcome::Retried(r) => r,
                CmpOutcome::Failed { .. } => unreachable!("failures rejected above"),
            })
            .collect()
    }

    /// Resolves a batch of CMP cells, returning one [`CmpOutcome`] per
    /// job in submission order — the **keep-going** multi-core entry
    /// point, mirroring [`Harness::run_outcomes`].
    ///
    /// CMP cells are first-class: deduplicated and memoized by content
    /// hash (within and across batches), served from the checksummed
    /// disk store when warm (corrupt entries quarantined + re-run),
    /// executed on the worker pool with per-cell panic isolation and
    /// the retry-once policy, and counted in [`Harness::summary`] and
    /// the telemetry stream like any other cell. Per-core pre-resolved
    /// streams come from the same warm map and `preres/` disk cache the
    /// single-core path uses (see [`CmpJob::core_job`]).
    pub fn run_cmp_outcomes(&self, jobs: &[CmpJob]) -> Vec<CmpOutcome> {
        let t0 = Instant::now();

        let mut first_seen: HashMap<JobId, usize> = HashMap::new();
        let mut uniques: Vec<&CmpJob> = Vec::new();
        for job in jobs {
            match first_seen.get(&job.id()) {
                Some(&idx) => assert_eq!(
                    uniques[idx],
                    job,
                    "CMP job content-hash collision on {}; bump CMP_CANON_VERSION",
                    job.id()
                ),
                None => {
                    first_seen.insert(job.id(), uniques.len());
                    uniques.push(job);
                }
            }
        }

        let mut pending: Vec<&CmpJob> = Vec::new();
        {
            let mut memo = lock(&self.cmp_memo);
            let mut c = lock(&self.counters);
            c.submitted += jobs.len();
            c.unique += uniques.len();
            for job in &uniques {
                match memo.entry(job.id()) {
                    std::collections::hash_map::Entry::Occupied(_) => c.memo_hits += 1,
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let read = match &self.store {
                            Some(s) => s.load_checked_cmp(job),
                            None => CacheRead::Miss,
                        };
                        match read {
                            CacheRead::Hit(r) => {
                                c.disk_hits += 1;
                                slot.insert(CmpOutcome::Ok(r));
                            }
                            CacheRead::Miss => pending.push(job),
                            CacheRead::Quarantined { path, reason } => {
                                c.quarantined += 1;
                                let path = path.display().to_string();
                                if self.cfg.progress {
                                    eprintln!(
                                        "warning: quarantined corrupt cache entry {path} \
                                         ({reason}); re-running"
                                    );
                                }
                                self.bus.publish(&Event::CacheQuarantined { path, reason });
                                pending.push(job);
                            }
                        }
                    }
                }
            }
        }

        if !pending.is_empty() {
            self.execute_cmp(&pending);
        }

        lock(&self.counters).wall += t0.elapsed();
        let memo = lock(&self.cmp_memo);
        jobs.iter().map(|j| memo[&j.id()].clone()).collect()
    }

    /// Runs pending CMP cells on the worker pool: per-core streams from
    /// the shared warm map (+ `preres/` disk cache), then one
    /// discrete-event `CmpEngine` run per cell, panic-caught with the
    /// retry-once policy. Outcomes fold into the CMP memo and the
    /// shared counters.
    fn execute_cmp(&self, pending: &[&CmpJob]) {
        let workers = self.workers.min(pending.len()).max(1);
        let pres = &self.pres;
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..pending.len()).collect());
        type CmpSlot = Result<(ebcp_sim::CmpResult, u64, f64, bool), String>;
        let outputs: Mutex<Vec<Option<CmpSlot>>> = Mutex::new(vec![None; pending.len()]);
        let (tx, rx) = mpsc::channel::<Event>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (queue, outputs) = (&queue, &outputs);
                s.spawn(move || loop {
                    let Some(i) = lock(queue).pop_front() else {
                        break;
                    };
                    let job = pending[i];
                    let _ = tx.send(Event::JobStarted { label: job.label() });
                    let t = Instant::now();

                    // One attempt: resolve every core's stream through
                    // the shared cells (no guard held across user code),
                    // then run the cell on the DES engine. A panic
                    // anywhere fails only this cell.
                    let attempt_one = || -> Result<ebcp_sim::CmpResult, String> {
                        catch_unwind(AssertUnwindSafe(|| {
                            let streams: Vec<Arc<PreResolved>> = (0..job.cores())
                                .map(|k| {
                                    let cj = job.core_job(k);
                                    let cell = Arc::clone(
                                        lock(pres)
                                            .entry(cj.pre_key())
                                            .or_insert_with(|| Arc::new(OnceLock::new())),
                                    );
                                    Arc::clone(
                                        cell.get_or_init(|| Arc::new(self.prepare_pre(&cj, &tx))),
                                    )
                                })
                                .collect();
                            let refs: Vec<&PreResolved> = streams.iter().map(Arc::as_ref).collect();
                            job.spec.run_streams(&refs, &job.pf)
                        }))
                        .map_err(panic_reason)
                    };

                    let out = match attempt_one() {
                        Ok(result) => Ok((result, false)),
                        Err(first) => {
                            let _ = tx.send(Event::JobRetried {
                                label: job.label(),
                                reason: first,
                            });
                            attempt_one().map(|result| (result, true))
                        }
                    };

                    let wall = t.elapsed();
                    let wall_ms = wall.as_millis() as u64;
                    let slot: CmpSlot = out.map(|(result, retried)| {
                        let rate = job.records() as f64 / wall.as_secs_f64().max(1e-9);
                        (result, wall_ms, rate, retried)
                    });
                    match &slot {
                        Ok((result, wall_ms, rate, _)) => {
                            if let Some(store) = &self.store {
                                // Cache-write failure loses only incrementality.
                                let _ = store.save_cmp(job, result);
                            }
                            let _ = tx.send(Event::JobFinished {
                                label: job.label(),
                                wall_ms: *wall_ms,
                                insts_per_sec: *rate,
                            });
                        }
                        Err(reason) => {
                            let _ = tx.send(Event::JobFailed {
                                label: job.label(),
                                reason: reason.clone(),
                            });
                        }
                    }
                    lock(outputs)[i] = Some(slot);
                });
            }
            drop(tx);
            let mut progress = Progress::new(self.cfg.progress, pending.len());
            let mut quarantined = 0usize;
            for ev in rx {
                if let Event::CacheQuarantined { .. } = &ev {
                    quarantined += 1;
                }
                self.bus.publish(&ev);
                progress.handle(&ev);
            }
            progress.finish();
            lock(&self.counters).quarantined += quarantined;
        });

        let outputs = outputs.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut memo = lock(&self.cmp_memo);
        let mut c = lock(&self.counters);
        for (job, out) in pending.iter().zip(outputs) {
            let slot = out.expect("worker completed every queued CMP job");
            match slot {
                Ok((result, _, _, retried)) => {
                    memo.insert(
                        job.id(),
                        if retried {
                            c.retried += 1;
                            CmpOutcome::Retried(result)
                        } else {
                            CmpOutcome::Ok(result)
                        },
                    );
                    c.executed += 1;
                    c.records_simulated += job.records();
                }
                Err(reason) => {
                    memo.insert(job.id(), CmpOutcome::Failed { reason });
                    c.failed += 1;
                }
            }
        }
    }

    /// The segment length (in trace records) a bounded-memory replay of
    /// `job` should use, or `None` when the whole pre-resolved stream
    /// fits the worker's budget share — then the materialized,
    /// `Arc`-shared warm-map path is both cheaper and enables
    /// cross-batch stream reuse.
    ///
    /// The streamed paths are replay-**exact**: block-at-a-time replay
    /// over any segmentation produces byte-identical results to the
    /// monolithic stream (`ebcp_sim::segment` proves this property), so
    /// this decision affects memory and wall clock, never results.
    fn stream_plan(&self, job: &Job, per_worker_bytes: u64) -> Option<u64> {
        if source::est_pre_bytes(&job.spec) <= per_worker_bytes {
            return None;
        }
        Some(source::seg_records_for_budget(per_worker_bytes))
    }

    /// Bounded-memory single-job execution: with a store, replay the
    /// per-segment pre-resolved block stream from disk (building it
    /// first if cold — also segment-at-a-time); without one, overlap
    /// front-end production and back-end replay through the two-worker
    /// pipelined path. Peak resident set is O(segment) either way.
    ///
    /// CMP cells deliberately do not take this path: the discrete-event
    /// engine interleaves all cores' streams by cycle, so it holds them
    /// whole; per-core workloads are footprint-scaled by core count,
    /// which keeps them inside the budget at supported scales.
    fn run_streamed(&self, job: &Job, seg_records: u64, tx: &mpsc::Sender<Event>) -> SimResult {
        if let Some(dir) = self.store_dir() {
            let mut stream = self.prepare_stream(dir, job, seg_records, tx);
            run_preresolved_blocks(&job.spec, stream.blocks(), &job.pf)
        } else {
            let program = Arc::new(WorkloadProgram::build(&job.spec.workload));
            run_pipelined(&job.spec, program, seg_records, &job.pf)
        }
    }

    /// Opens `job`'s per-segment pre-resolved block stream from the
    /// store, building it first when cold: trace records come from the
    /// segmented trace store (mmap'd windows) when enabled, else from
    /// chunked generation, and finished blocks go straight to disk — so
    /// even building the stream never materializes it. Corrupt cached
    /// files (stream or trace) are quarantined, reported over `tx`, and
    /// rebuilt.
    ///
    /// # Panics
    ///
    /// Panics on file-system failure — the worker's `catch_unwind`
    /// converts that to a failed (retried-once) job. Unlike the
    /// materialized path there is no memory fallback to offer: the
    /// budget says the stream must live on disk.
    fn prepare_stream(
        &self,
        dir: &Path,
        job: &Job,
        seg_records: u64,
        tx: &mpsc::Sender<Event>,
    ) -> preres::PreresStream {
        match preres::open_stream_checked(dir, job) {
            CacheRead::Hit(stream) => return stream,
            CacheRead::Miss => {}
            CacheRead::Quarantined { path, reason } => {
                let _ = tx.send(Event::CacheQuarantined {
                    path: path.display().to_string(),
                    reason,
                });
            }
        }
        let spec = &job.spec;
        let mut writer =
            preres::PreresWriter::create(dir, job, seg_records).expect("preres stream writer");
        let mut src: Box<dyn ChunkSource> = if self.cfg.trace_store {
            let trace =
                traces::open_or_generate(dir, spec, seg_records, Backing::Mmap, |path, reason| {
                    let _ = tx.send(Event::CacheQuarantined {
                        path: path.display().to_string(),
                        reason,
                    });
                })
                .expect("segmented trace store");
            Box::new(trace)
        } else {
            Box::new(TraceGenerator::new(&spec.workload, spec.seed))
        };
        let mut pr = PreResolver::new(&spec.sim);
        let mut chunk = Vec::with_capacity(Engine::CHUNK_RECORDS);
        let mut left = spec.warmup_insts + spec.measure_insts;
        let mut blocks = 0u64;
        while left > 0 {
            let room = seg_records - pr.pending_records();
            let want = (Engine::CHUNK_RECORDS as u64).min(left).min(room) as usize;
            let got = src.next_chunk(&mut chunk, want);
            if got == 0 {
                break;
            }
            pr.push_chunk(&chunk);
            left -= got as u64;
            if pr.pending_records() == seg_records {
                let b = pr.split_block();
                writer
                    .push_block(&b.events, b.records)
                    .expect("preres block write");
                blocks += 1;
            }
        }
        if pr.pending_records() > 0 || blocks == 0 {
            let b = pr.split_block();
            writer
                .push_block(&b.events, b.records)
                .expect("preres block write");
        }
        writer.finish().expect("preres stream publish");
        match preres::open_stream_checked(dir, job) {
            CacheRead::Hit(stream) => stream,
            other => panic!(
                "freshly written pre-resolved stream failed to verify: {:?}",
                other.into_hit().is_some()
            ),
        }
    }

    /// Obtains the pre-resolved event stream for `job`: from the disk
    /// cache when possible, otherwise by running the front-end pass (and
    /// caching the result for the next process). A corrupt cached
    /// stream is quarantined (reported over `tx`) and rebuilt, its
    /// replacement overwriting the original path.
    fn prepare_pre(&self, job: &Job, tx: &mpsc::Sender<Event>) -> PreResolved {
        if let Some(dir) = self.store_dir() {
            match preres::load_checked(dir, job) {
                CacheRead::Hit(pre) => return pre,
                CacheRead::Miss => {}
                CacheRead::Quarantined { path, reason } => {
                    let _ = tx.send(Event::CacheQuarantined {
                        path: path.display().to_string(),
                        reason,
                    });
                }
            }
        }
        let pre = job.spec.pre_resolve();
        if let Some(dir) = self.store_dir() {
            // Cache-write failure loses only incrementality.
            let _ = preres::save(dir, job, &pre);
        }
        pre
    }

    /// Generic parallel map over the same worker pool sizing, for work
    /// that does not fit either job shape (CMP multi-core cells are
    /// first-class now — see [`Harness::run_cmp`] — so this is for
    /// one-off work like bulk trace generation).
    /// Output order matches input order; `jobs = 1` degenerates to a
    /// plain serial map.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.workers.min(items.len()).max(1);
        if workers == 1 {
            return items.iter().map(f).collect();
        }
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..items.len()).collect());
        let outputs: Mutex<Vec<Option<R>>> =
            Mutex::new(std::iter::repeat_with(|| None).take(items.len()).collect());
        std::thread::scope(|s| {
            for _ in 0..workers {
                let (queue, outputs, f) = (&queue, &outputs, &f);
                s.spawn(move || loop {
                    let Some(i) = lock(queue).pop_front() else {
                        break;
                    };
                    let r = f(&items[i]);
                    lock(outputs)[i] = Some(r);
                });
            }
        });
        outputs
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|r| r.expect("worker completed every queued item"))
            .collect()
    }

    /// Aggregate statistics over everything resolved so far.
    pub fn summary(&self) -> RunSummary {
        let c = lock(&self.counters);
        RunSummary {
            submitted: c.submitted,
            unique: c.unique,
            executed: c.executed,
            memo_hits: c.memo_hits,
            disk_hits: c.disk_hits,
            failed: c.failed,
            retried: c.retried,
            quarantined: c.quarantined,
            records_simulated: c.records_simulated,
            wall: c.wall,
        }
    }

    /// The deterministic [`ResultRow`]s for everything resolved so far,
    /// in first-submission order — the input to [`results_doc`].
    pub fn result_rows(&self) -> Vec<ResultRow> {
        let memo = lock(&self.memo);
        lock(&self.records)
            .iter()
            .map(|rec| ResultRow {
                id: rec.id,
                workload: rec.workload.clone(),
                prefetcher: rec.prefetcher.clone(),
                outcome: memo[&rec.id].clone(),
            })
            .collect()
    }

    /// Writes the **deterministic** `results.json`: per unique job
    /// (submission order) its identity, outcome and full result —
    /// nothing that varies with worker count, cache temperature, wall
    /// clock, or transport. A sweep submitted to a warm daemon writes
    /// the same bytes as a cold local run. Timings and cache provenance
    /// go to [`Harness::write_telemetry_json`] instead.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn write_results_json(&self, path: &Path) -> io::Result<()> {
        let submitted = lock(&self.counters).submitted;
        write_doc(path, &results_doc(submitted, &self.result_rows()))
    }

    /// Writes the **volatile** `telemetry.json` companion: the full run
    /// summary (hit counts, wall clock, throughput) plus per-job cache
    /// provenance and timing. Everything results.json deliberately
    /// omits to stay deterministic lands here.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn write_telemetry_json(&self, path: &Path) -> io::Result<()> {
        let summary = self.summary();
        let records = lock(&self.records);
        let jobs: Vec<Value> = records
            .iter()
            .map(|rec| {
                Value::Obj(vec![
                    ("id".into(), Value::Str(rec.id.to_string())),
                    ("workload".into(), Value::Str(rec.workload.clone())),
                    ("prefetcher".into(), Value::Str(rec.prefetcher.clone())),
                    ("source".into(), Value::Str(rec.source.tag().into())),
                    ("outcome".into(), Value::Str(rec.outcome_tag().into())),
                    (
                        "wall_ms".into(),
                        rec.wall_ms.map_or(Value::Null, Value::Int),
                    ),
                    (
                        "insts_per_sec".into(),
                        rec.insts_per_sec.map_or(Value::Null, Value::Num),
                    ),
                ])
            })
            .collect();
        let doc = Value::Obj(vec![
            (
                "summary".into(),
                Value::Obj(vec![
                    ("submitted".into(), Value::Int(summary.submitted as u64)),
                    ("unique".into(), Value::Int(summary.unique as u64)),
                    ("executed".into(), Value::Int(summary.executed as u64)),
                    ("memo_hits".into(), Value::Int(summary.memo_hits as u64)),
                    ("disk_hits".into(), Value::Int(summary.disk_hits as u64)),
                    ("failed".into(), Value::Int(summary.failed as u64)),
                    ("retried".into(), Value::Int(summary.retried as u64)),
                    ("quarantined".into(), Value::Int(summary.quarantined as u64)),
                    (
                        "records_simulated".into(),
                        Value::Int(summary.records_simulated),
                    ),
                    (
                        "wall_ms".into(),
                        Value::Int(summary.wall.as_millis() as u64),
                    ),
                    ("insts_per_sec".into(), Value::Num(summary.insts_per_sec())),
                ]),
            ),
            ("jobs".into(), Value::Arr(jobs)),
        ]);
        write_doc(path, &doc)
    }
}

/// One deterministic `results.json` row: a unique job's identity and
/// outcome, nothing volatile.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Content hash of the job.
    pub id: JobId,
    /// Workload preset name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// How the job ended. [`JobOutcome::Retried`] renders as `"ok"` —
    /// whether a cell needed its second attempt is timing, not result.
    pub outcome: JobOutcome,
}

/// One deterministic `results.json` row for a multi-core CMP cell: the
/// cell's identity and outcome, nothing volatile.
#[derive(Debug, Clone)]
pub struct CmpResultRow {
    /// Content hash of the CMP job.
    pub id: JobId,
    /// The cell name ([`ebcp_sim::CmpSpec::name`], e.g. `database-mix`).
    pub cell: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Cores on the chip.
    pub cores: u64,
    /// How the cell ended ([`CmpOutcome::Retried`] renders as `"ok"`).
    pub outcome: CmpOutcome,
}

/// Renders the deterministic results document from per-job rows.
///
/// This is the **single** renderer behind `results.json`: local `repro`
/// runs call it through [`Harness::write_results_json`], and the sweep
/// service's client assembles the rows it streamed back and calls it
/// directly — which is what makes `repro submit` byte-identical to a
/// local run of the same sweep.
pub fn results_doc(submitted: usize, rows: &[ResultRow]) -> Value {
    results_doc_cmp(submitted, rows, &[])
}

/// [`results_doc`] with multi-core CMP cells appended: single-core jobs
/// render exactly as before, and a `"cmp_jobs"` array is added only
/// when the sweep actually carried multi-core cells — so a sweep
/// without a `cores` axis stays byte-identical to the pre-CMP format.
/// Both the local sweep path and the service client assemble through
/// this one renderer, preserving the byte-identity contract for CMP
/// grids too.
pub fn results_doc_cmp(submitted: usize, rows: &[ResultRow], cmp_rows: &[CmpResultRow]) -> Value {
    let failed = rows.iter().filter(|r| r.outcome.is_failed()).count()
        + cmp_rows.iter().filter(|r| r.outcome.is_failed()).count();
    let jobs: Vec<Value> = rows
        .iter()
        .map(|row| {
            Value::Obj(vec![
                ("id".into(), Value::Str(row.id.to_string())),
                ("workload".into(), Value::Str(row.workload.clone())),
                ("prefetcher".into(), Value::Str(row.prefetcher.clone())),
                (
                    "outcome".into(),
                    Value::Str(
                        if row.outcome.is_failed() {
                            "failed"
                        } else {
                            "ok"
                        }
                        .into(),
                    ),
                ),
                (
                    "error".into(),
                    row.outcome
                        .failure()
                        .map_or(Value::Null, |e| Value::Str(e.into())),
                ),
                (
                    "result".into(),
                    row.outcome
                        .result()
                        .map_or(Value::Null, store::result_to_json),
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        (
            "summary".into(),
            Value::Obj(vec![
                ("submitted".into(), Value::Int(submitted as u64)),
                (
                    "unique".into(),
                    Value::Int((rows.len() + cmp_rows.len()) as u64),
                ),
                ("failed".into(), Value::Int(failed as u64)),
            ]),
        ),
        ("jobs".into(), Value::Arr(jobs)),
    ];
    if !cmp_rows.is_empty() {
        let cmp_jobs: Vec<Value> = cmp_rows
            .iter()
            .map(|row| {
                Value::Obj(vec![
                    ("id".into(), Value::Str(row.id.to_string())),
                    ("cell".into(), Value::Str(row.cell.clone())),
                    ("prefetcher".into(), Value::Str(row.prefetcher.clone())),
                    ("cores".into(), Value::Int(row.cores)),
                    (
                        "outcome".into(),
                        Value::Str(
                            if row.outcome.is_failed() {
                                "failed"
                            } else {
                                "ok"
                            }
                            .into(),
                        ),
                    ),
                    (
                        "error".into(),
                        row.outcome
                            .failure()
                            .map_or(Value::Null, |e| Value::Str(e.into())),
                    ),
                    (
                        "result".into(),
                        row.outcome
                            .result()
                            .map_or(Value::Null, crate::cmp::cmp_result_to_json),
                    ),
                ])
            })
            .collect();
        fields.push(("cmp_jobs".into(), Value::Arr(cmp_jobs)));
    }
    Value::Obj(fields)
}

/// Writes a pretty-printed JSON document, creating parent directories.
pub fn write_doc(path: &Path, doc: &Value) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_json_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
    use ebcp_trace::WorkloadSpec;

    fn spec(workload: WorkloadSpec, seed: u64) -> RunSpec {
        RunSpec {
            workload,
            seed,
            warmup_insts: 15_000,
            measure_insts: 15_000,
            sim: SimConfig::scaled_down(16),
        }
    }

    fn small_batch() -> Vec<Job> {
        let w = WorkloadSpec::database().scaled(1, 16);
        vec![
            Job::new(spec(w.clone(), 3), PrefetcherSpec::None),
            Job::new(
                spec(w.clone(), 3),
                PrefetcherSpec::Ebcp(ebcp_core::EbcpConfig::tuned()),
            ),
            // Duplicate of the first: must not re-run.
            Job::new(spec(w, 3), PrefetcherSpec::None),
        ]
    }

    #[test]
    fn dedups_within_batch() {
        let h = Harness::serial();
        let jobs = small_batch();
        let out = h.run(&jobs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2]);
        let s = h.summary();
        assert_eq!((s.submitted, s.unique, s.executed), (3, 2, 2));
    }

    #[test]
    fn memoizes_across_batches() {
        let h = Harness::serial();
        let jobs = small_batch();
        let a = h.run(&jobs);
        let b = h.run(&jobs);
        assert_eq!(a, b);
        let s = h.summary();
        assert_eq!(s.executed, 2, "second batch must be all memo hits");
        assert_eq!(s.memo_hits, 2);
    }

    #[test]
    fn harness_replay_matches_direct_stepping() {
        // The harness runs jobs over pre-resolved streams; the results
        // must be byte-identical to stepping the spec directly.
        let h = Harness::serial();
        let jobs = small_batch();
        let out = h.run(&jobs);
        for (job, got) in jobs.iter().zip(&out) {
            let direct = job.spec.run(&job.pf);
            assert_eq!(&direct, got, "job {}", job.label());
        }
    }

    #[test]
    fn preres_disk_cache_round_trips_through_execute() {
        let dir = std::env::temp_dir().join(format!("ebcp-harness-pre-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = HarnessConfig {
            jobs: 1,
            store_dir: Some(dir.clone()),
            ..Default::default()
        };
        let jobs = small_batch();
        let a = Harness::new(cfg.clone()).run(&jobs);
        // The stream file exists and names the shared pre-key.
        let p = preres::path_for(&dir, &jobs[0]);
        assert!(p.is_file(), "stream must be cached at {}", p.display());
        // A fresh harness with the results wiped but streams kept must
        // still execute (results gone) — from the cached stream — and
        // agree byte-for-byte. Result entries live in 2-hex shard
        // subdirectories; streams live under `preres/`.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() && path.file_name().is_some_and(|n| n != "preres") {
                std::fs::remove_dir_all(path).unwrap();
            }
        }
        let h2 = Harness::new(cfg);
        let b = h2.run(&jobs);
        assert_eq!(a, b);
        assert_eq!(h2.summary().executed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs = small_batch();
        let serial = Harness::serial().run(&jobs);
        let par = Harness::new(HarnessConfig {
            jobs: 4,
            ..HarnessConfig::default()
        })
        .run(&jobs);
        assert_eq!(serial, par);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let h = Harness::new(HarnessConfig {
            jobs: 4,
            ..HarnessConfig::default()
        });
        let w = WorkloadSpec::database().scaled(1, 16);
        let jobs: Vec<Job> = (0..6)
            .map(|s| Job::new(spec(w.clone(), s), PrefetcherSpec::None))
            .collect();
        let out = h.run(&jobs);
        // Each seed yields a distinct result; order must match input.
        let rerun = Harness::serial().run(&jobs);
        assert_eq!(out, rerun);
    }

    #[test]
    fn disk_store_round_trip_executes_zero_second_time() {
        let dir = std::env::temp_dir().join(format!("ebcp-harness-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = HarnessConfig {
            jobs: 1,
            store_dir: Some(dir.clone()),
            ..Default::default()
        };
        let jobs = small_batch();
        let a = Harness::new(cfg.clone()).run(&jobs);
        // Fresh process simulation: a new harness, same store.
        let h2 = Harness::new(cfg);
        let b = h2.run(&jobs);
        assert_eq!(a, b);
        let s = h2.summary();
        assert_eq!(s.executed, 0, "warm store must satisfy every job");
        assert_eq!(s.disk_hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn map_preserves_order_and_covers_all_items() {
        let h = Harness::new(HarnessConfig {
            jobs: 3,
            ..HarnessConfig::default()
        });
        let items: Vec<u64> = (0..37).collect();
        let out = h.map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn results_json_lists_every_unique_job() {
        let dir = std::env::temp_dir().join(format!("ebcp-harness-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = Harness::serial();
        let jobs = small_batch();
        let _ = h.run(&jobs);
        let path = dir.join("results.json");
        h.write_results_json(&path).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("jobs").unwrap().as_arr().unwrap().len(), 2);
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("submitted").unwrap().as_u64(), Some(3));
        assert_eq!(summary.get("unique").unwrap().as_u64(), Some(2));
        assert_eq!(summary.get("failed").unwrap().as_u64(), Some(0));
        let first = &doc.get("jobs").unwrap().as_arr().unwrap()[0];
        assert_eq!(first.get("outcome").unwrap().as_str(), Some("ok"));
        assert!(
            first.get("source").is_none(),
            "cache provenance is telemetry, not a result"
        );
        assert!(
            first
                .get("result")
                .unwrap()
                .get("insts")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );

        // The volatile companion carries provenance and timing.
        let tpath = dir.join("telemetry.json");
        h.write_telemetry_json(&tpath).unwrap();
        let tdoc = json::parse(&std::fs::read_to_string(&tpath).unwrap()).unwrap();
        assert_eq!(
            tdoc.get("summary")
                .unwrap()
                .get("executed")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        let tfirst = &tdoc.get("jobs").unwrap().as_arr().unwrap()[0];
        assert_eq!(tfirst.get("source").unwrap().as_str(), Some("run"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A one-workload × many-prefetcher batch forms a single lockstep
    /// unit; its results must be byte-identical to the per-job serial
    /// replay path, with every cell counted as executed.
    #[test]
    fn lockstep_batch_matches_per_job_replay() {
        let w = WorkloadSpec::database().scaled(1, 16);
        let pfs = [
            PrefetcherSpec::None,
            PrefetcherSpec::baseline(
                "stream",
                ebcp_prefetch::BaselineConfig::Stream(ebcp_prefetch::StreamConfig::default()),
            ),
            PrefetcherSpec::Ebcp(ebcp_core::EbcpConfig::tuned()),
        ];
        let jobs: Vec<Job> = pfs
            .iter()
            .map(|pf| Job::new(spec(w.clone(), 3), pf.clone()))
            .collect();
        let lockstep = Harness::serial(); // lockstep is the default
        let serial = Harness::new(HarnessConfig {
            jobs: 1,
            lockstep: false,
            ..HarnessConfig::default()
        });
        assert_eq!(lockstep.run(&jobs), serial.run(&jobs));
        assert_eq!(lockstep.summary().executed, jobs.len());
        assert_eq!(serial.summary().executed, jobs.len());
    }

    /// A fault-injected lane panicking mid-lockstep fails only its own
    /// cell; sibling lanes return results byte-identical to the serial
    /// path's.
    #[test]
    fn lockstep_fault_lane_fails_alone() {
        use ebcp_prefetch::{BaselineConfig, FaultConfig};
        let w = WorkloadSpec::database().scaled(1, 16);
        let jobs = vec![
            Job::new(spec(w.clone(), 3), PrefetcherSpec::None),
            Job::new(
                spec(w.clone(), 3),
                PrefetcherSpec::baseline(
                    "fault",
                    BaselineConfig::Fault(FaultConfig::panic_after(40)),
                ),
            ),
            Job::new(
                spec(w, 3),
                PrefetcherSpec::Ebcp(ebcp_core::EbcpConfig::tuned()),
            ),
        ];
        let h = Harness::serial();
        let out = h.run_outcomes(&jobs);
        let reason = out[1].failure().expect("fault lane must fail");
        assert!(reason.contains("injected fault"), "{reason}");
        assert_eq!(h.summary().failed, 1);
        // Siblings are untouched and byte-identical to serial replays.
        let serial = Harness::new(HarnessConfig {
            jobs: 1,
            lockstep: false,
            ..HarnessConfig::default()
        });
        for k in [0, 2] {
            let reference = serial.run_outcomes(&jobs[k..=k]);
            assert_eq!(out[k], reference[0], "sibling lane {k}");
        }
    }

    /// The routing decision, both directions: a mis-shaped single-core
    /// `Job` over a CMP per-core workload gets a precise capability
    /// error that names the correct route (`Harness::run_cmp`), and the
    /// correctly-shaped `CmpJob` actually runs there — through the DES
    /// engine — instead of being rejected.
    #[test]
    fn cmp_routing_rejects_misshaped_job_and_runs_cmp_job() {
        let h = Harness::serial();
        let mut w = WorkloadSpec::database().scaled(1, 16);
        w.addr_space = 2; // per-core CMP address-space id
        let job = Job::new(spec(w.clone(), 3), PrefetcherSpec::None);
        let out = h.run_outcomes(std::slice::from_ref(&job));
        let reason = out[0].failure().expect("mis-shaped job must be rejected");
        assert!(reason.contains("CMP"), "{reason}");
        assert!(
            reason.contains("Harness::run_cmp"),
            "the error must name the correct route: {reason}"
        );
        let s = h.summary();
        assert_eq!((s.failed, s.executed), (1, 0), "rejected before any run");
        // Resubmission reports the same failure from the memo.
        let again = h.run_outcomes(&[job]);
        assert_eq!(again[0], out[0]);
        assert_eq!(h.summary().failed, 1, "no double-count on resubmission");

        // The very same per-core workload, correctly shaped as one
        // CmpJob cell, routes through the DES engine and succeeds.
        let cell = CmpJob::new(
            ebcp_sim::CmpSpec::heterogeneous(
                "pair",
                vec![
                    (
                        ebcp_trace::WorkloadSpec {
                            addr_space: 1,
                            ..w.clone()
                        },
                        3,
                    ),
                    (ebcp_trace::WorkloadSpec { addr_space: 2, ..w }, 4),
                ],
                10_000,
                10_000,
                SimConfig::scaled_down(16),
            ),
            PrefetcherSpec::None,
        );
        let cmp_out = h.run_cmp_outcomes(std::slice::from_ref(&cell));
        let r = cmp_out[0]
            .result()
            .expect("CmpJob must run, not be rejected");
        assert_eq!(r.cores.len(), 2);
        assert!(r.cores.iter().all(|c| c.insts == 10_000));
    }

    /// CMP cells are first-class harness citizens: memoized across
    /// batches, disk-cached with self-healing entries, results
    /// identical to a direct engine run.
    #[test]
    fn cmp_cells_memoize_and_disk_cache() {
        let dir = std::env::temp_dir().join(format!("ebcp-harness-cmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = HarnessConfig {
            jobs: 1,
            store_dir: Some(dir.clone()),
            ..Default::default()
        };
        let cell = CmpJob::new(
            ebcp_sim::CmpSpec::homogeneous(
                WorkloadSpec::database().scaled(1, 32),
                2,
                10_000,
                10_000,
                SimConfig::scaled_down(16),
            ),
            PrefetcherSpec::Ebcp(ebcp_core::EbcpConfig::tuned()),
        );
        let h = Harness::new(cfg.clone());
        let a = h.run_cmp(std::slice::from_ref(&cell));
        assert_eq!(a[0], cell.spec.run(&cell.pf), "harness == direct engine");
        // Same harness: memo hit, nothing executed.
        let b = h.run_cmp(std::slice::from_ref(&cell));
        assert_eq!(a, b);
        assert_eq!(h.summary().executed, 1);
        assert_eq!(h.summary().memo_hits, 1);
        // Fresh harness, warm store: disk hit, zero simulations.
        let h2 = Harness::new(cfg);
        let c = h2.run_cmp(std::slice::from_ref(&cell));
        assert_eq!(a, c);
        let s = h2.summary();
        assert_eq!((s.executed, s.disk_hits), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A faulting prefetcher fails only its own CMP cell; the sibling
    /// cell completes and matches its direct run.
    #[test]
    fn cmp_fault_cell_fails_alone() {
        use ebcp_prefetch::{BaselineConfig, FaultConfig};
        let spec = ebcp_sim::CmpSpec::homogeneous(
            WorkloadSpec::database().scaled(1, 32),
            2,
            10_000,
            10_000,
            SimConfig::scaled_down(16),
        );
        let cells = vec![
            CmpJob::new(spec.clone(), PrefetcherSpec::None),
            CmpJob::new(
                spec.clone(),
                PrefetcherSpec::baseline(
                    "fault",
                    BaselineConfig::Fault(FaultConfig::panic_after(40)),
                ),
            ),
        ];
        let h = Harness::serial();
        let out = h.run_cmp_outcomes(&cells);
        let reason = out[1].failure().expect("fault cell must fail");
        assert!(reason.contains("injected fault"), "{reason}");
        assert_eq!(h.summary().failed, 1);
        assert_eq!(out[0].result().unwrap(), &spec.run(&PrefetcherSpec::None));
    }

    /// The bounded-memory streamed path — in every store configuration —
    /// must be byte-identical to the unconstrained materialized path:
    /// with no store (pipelined FE∥BE), with a store (per-segment block
    /// stream on disk), and with the segmented trace store feeding the
    /// front end through mmap'd windows.
    #[test]
    fn tiny_budget_streams_and_matches_materialized() {
        let jobs = small_batch();
        let reference = Harness::serial().run(&jobs);

        // No store: the pipelined path.
        let h = Harness::new(HarnessConfig {
            jobs: 1,
            mem_budget_bytes: 1,
            ..HarnessConfig::default()
        });
        assert_eq!(h.run(&jobs), reference, "pipelined path diverged");

        // Store: the on-disk block-stream path, cold then warm, with
        // and without the segmented trace store.
        for trace_store in [false, true] {
            let dir = std::env::temp_dir().join(format!(
                "ebcp-harness-stream-{trace_store}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = HarnessConfig {
                jobs: 1,
                mem_budget_bytes: 1,
                store_dir: Some(dir.clone()),
                trace_store,
                ..HarnessConfig::default()
            };
            let cold = Harness::new(cfg.clone());
            assert_eq!(
                cold.run(&jobs),
                reference,
                "block-stream path diverged (trace_store={trace_store})"
            );
            // The stream was written segmented, and with the trace
            // store enabled the trace file exists too.
            let stream = preres::open_stream_checked(&dir, &jobs[0])
                .into_hit()
                .expect("stream cached");
            // These 30k-record jobs fit one clamped-minimum segment
            // (64 Ki records); multi-segment geometry is covered by the
            // preres and traces module tests.
            assert_eq!(stream.records(), 30_000);
            assert_eq!(stream.seg_records(), 1 << 16, "clamp floor applies");
            assert_eq!(traces::path_for(&dir, &jobs[0].spec).is_file(), trace_store);
            // Warm run: streams (and traces) are reused, results identical.
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir()
                    && path
                        .file_name()
                        .is_some_and(|n| n != "preres" && n != "traces")
                {
                    std::fs::remove_dir_all(path).unwrap();
                }
            }
            let warm = Harness::new(cfg);
            assert_eq!(warm.run(&jobs), reference);
            assert_eq!(warm.summary().executed, 2, "results were wiped");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// With a tiny budget a lockstep unit replays the on-disk block
    /// stream once for all lanes; results must match the serial path.
    #[test]
    fn streamed_lockstep_matches_serial() {
        let w = WorkloadSpec::database().scaled(1, 16);
        let pfs = [
            PrefetcherSpec::None,
            PrefetcherSpec::Ebcp(ebcp_core::EbcpConfig::tuned()),
        ];
        let jobs: Vec<Job> = pfs
            .iter()
            .map(|pf| Job::new(spec(w.clone(), 3), pf.clone()))
            .collect();
        let reference = Harness::new(HarnessConfig {
            jobs: 1,
            lockstep: false,
            ..HarnessConfig::default()
        })
        .run(&jobs);
        let dir = std::env::temp_dir().join(format!("ebcp-harness-slock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = Harness::new(HarnessConfig {
            jobs: 1,
            mem_budget_bytes: 1,
            store_dir: Some(dir.clone()),
            ..HarnessConfig::default()
        });
        assert_eq!(h.run(&jobs), reference);
        assert_eq!(h.summary().executed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `store_footprint` counts what a populated store actually holds.
    #[test]
    fn store_footprint_reports_all_three_classes() {
        let dir = std::env::temp_dir().join(format!("ebcp-harness-foot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = Harness::new(HarnessConfig {
            jobs: 1,
            mem_budget_bytes: 1, // force streaming: preres + traces on disk
            store_dir: Some(dir.clone()),
            trace_store: true,
            ..HarnessConfig::default()
        });
        let jobs = small_batch();
        let _ = h.run(&jobs);
        let f = store_footprint(&dir);
        assert_eq!(f.results.files, 2, "two unique jobs cached");
        assert_eq!(f.preres.files, 1, "one shared stream");
        assert_eq!(f.traces.files, 1, "one shared trace");
        assert!(f.preres.segments >= 1 && f.traces.segments >= 1);
        assert!(f.results.bytes > 0 && f.preres.bytes > 0 && f.traces.bytes > 0);
        assert_eq!(
            f.total_bytes(),
            f.results.bytes + f.preres.bytes + f.traces.bytes
        );
        assert_eq!(
            (f.results.corrupt, f.preres.corrupt, f.traces.corrupt),
            (0, 0, 0)
        );
        assert_eq!(f.quarantined_bytes(), 0);
        // A quarantined file shows up in the corrupt tally, its bytes
        // move from the healthy total to the quarantine accounting.
        let healthy_total = f.total_bytes();
        let p = preres::path_for(&dir, &jobs[0]);
        let moved = std::fs::metadata(&p).unwrap().len();
        let mut corrupt = p.clone().into_os_string();
        corrupt.push(".corrupt");
        std::fs::rename(&p, corrupt).unwrap();
        let f = store_footprint(&dir);
        assert_eq!((f.preres.files, f.preres.corrupt), (0, 1));
        assert_eq!(f.preres.quarantined_bytes, moved);
        assert_eq!(f.quarantined_bytes(), moved);
        assert_eq!(
            f.total_bytes(),
            healthy_total - moved,
            "quarantined bytes must leave the healthy total"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// results.json must not depend on where results came from: a cold
    /// executing run and a warm all-disk-hits run of the same jobs
    /// write byte-identical files.
    #[test]
    fn results_json_is_byte_identical_cold_vs_warm() {
        let dir = std::env::temp_dir().join(format!("ebcp-harness-det-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = HarnessConfig {
            jobs: 2,
            store_dir: Some(dir.join("store")),
            ..Default::default()
        };
        let jobs = small_batch();
        let cold = Harness::new(cfg.clone());
        let _ = cold.run(&jobs);
        cold.write_results_json(&dir.join("cold.json")).unwrap();
        let warm = Harness::new(cfg);
        let _ = warm.run(&jobs);
        assert_eq!(warm.summary().executed, 0);
        warm.write_results_json(&dir.join("warm.json")).unwrap();
        assert_eq!(
            std::fs::read(dir.join("cold.json")).unwrap(),
            std::fs::read(dir.join("warm.json")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
