//! Trace delivery: materialize in memory when the budget allows,
//! stream from the generator otherwise.

use std::sync::Arc;

use ebcp_sim::{PrefetcherSpec, RunSpec, SimResult};
use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::TraceRecord;

/// Default per-process trace memory budget (~1.5 GB). Replaces the old
/// hard-coded materialization threshold; the harness divides it by the
/// number of concurrent workers so N parallel materialized traces never
/// exceed one budget.
pub const DEFAULT_MEM_BUDGET_BYTES: u64 = 1_500_000_000;

/// Peak resident bytes *per trace record* a streamed (segment-at-a-time)
/// worker charges against its budget share: one mmap'd trace-file
/// window at 17 B/record ([`ebcp_trace::segfile`]'s fixed-width
/// encoding) plus one packed pre-resolved event block at its 24 B/event
/// worst case (every record an L1 miss). The materialized path used to
/// count only the event stream; the streamed path's windows and blocks
/// are charged here so N concurrent streamed workers still fit one
/// process budget.
pub const STREAMED_BYTES_PER_RECORD: u64 = 17 + 24;

/// Headroom multiplier on [`STREAMED_BYTES_PER_RECORD`] covering decode
/// scratch (one `TraceRecord` chunk), the replay engine itself and
/// allocator slack.
pub const STREAMED_HEADROOM: u64 = 4;

/// Estimated materialized footprint of `spec`'s *pre-resolved* event
/// stream, from the spec alone (before any front-end pass has run).
/// Packed events are 24 B and only L1 misses plus gap fillers emit one;
/// 8 B/record is an upper bound across every workload preset at every
/// scale (observed densities are 1–5 B/record), so the harness errs
/// toward streaming — which is exact — never toward blowing the budget.
pub fn est_pre_bytes(spec: &RunSpec) -> u64 {
    (spec.warmup_insts + spec.measure_insts) * 8
}

/// The segment length (in trace records) that keeps one streamed
/// worker's peak resident set — mmap window + event block + headroom —
/// inside `per_worker_bytes`, clamped to `[64 Ki, 4 Mi]` records so
/// tiny budgets still make progress and huge ones don't defeat the
/// point of segmenting.
pub fn seg_records_for_budget(per_worker_bytes: u64) -> u64 {
    (per_worker_bytes / (STREAMED_HEADROOM * STREAMED_BYTES_PER_RECORD)).clamp(1 << 16, 4 << 20)
}

/// The budget charge of one streamed worker at `seg_records` — the
/// inverse of [`seg_records_for_budget`], used by tests and the status
/// report.
pub fn streamed_peak_bytes(seg_records: u64) -> u64 {
    seg_records * STREAMED_HEADROOM * STREAMED_BYTES_PER_RECORD
}

/// A trace source: materialized when it fits the budget, streamed from
/// a shared [`WorkloadProgram`] otherwise.
///
/// Materialized traces are `Arc`-shared: every job replaying the same
/// `(workload, seed, length)` reads one allocation.
pub enum TraceSource {
    /// Fully materialized records.
    Materialized(Arc<Vec<TraceRecord>>),
    /// Regenerate per run from a shared program.
    Streamed(Arc<WorkloadProgram>),
}

impl TraceSource {
    /// Estimated materialized footprint of `spec`'s trace.
    pub fn est_bytes(spec: &RunSpec) -> u64 {
        let records = spec.warmup_insts + spec.measure_insts;
        records * std::mem::size_of::<TraceRecord>() as u64
    }

    /// Prepares the trace for `spec` under the default whole-process
    /// budget (single-threaded callers).
    pub fn prepare(spec: &RunSpec) -> Self {
        Self::prepare_budgeted(spec, DEFAULT_MEM_BUDGET_BYTES)
    }

    /// Prepares the trace for `spec`, materializing only when the
    /// estimated footprint fits `budget_bytes`.
    pub fn prepare_budgeted(spec: &RunSpec, budget_bytes: u64) -> Self {
        if Self::est_bytes(spec) <= budget_bytes {
            TraceSource::Materialized(spec.materialize())
        } else {
            TraceSource::Streamed(Arc::new(WorkloadProgram::build(&spec.workload)))
        }
    }

    /// Whether the trace is held in memory.
    pub const fn is_materialized(&self) -> bool {
        matches!(self, TraceSource::Materialized(_))
    }

    /// Runs one prefetcher over this trace.
    pub fn run(&self, spec: &RunSpec, pf: &PrefetcherSpec) -> SimResult {
        match self {
            TraceSource::Materialized(t) => spec.run_on(t, pf),
            TraceSource::Streamed(p) => spec.run_streaming(Arc::clone(p), pf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::SimConfig;
    use ebcp_trace::WorkloadSpec;

    fn spec(records: u64) -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::database().scaled(1, 16),
            seed: 5,
            warmup_insts: records / 2,
            measure_insts: records - records / 2,
            sim: SimConfig::scaled_down(16),
        }
    }

    #[test]
    fn small_trace_materializes_under_default_budget() {
        assert!(TraceSource::prepare(&spec(10_000)).is_materialized());
    }

    #[test]
    fn tight_budget_forces_streaming() {
        let s = spec(10_000);
        let src = TraceSource::prepare_budgeted(&s, TraceSource::est_bytes(&s) - 1);
        assert!(!src.is_materialized());
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        let s = spec(10_000);
        let src = TraceSource::prepare_budgeted(&s, TraceSource::est_bytes(&s));
        assert!(src.is_materialized());
    }

    #[test]
    fn seg_records_respects_budget_and_clamps() {
        // Inside the clamp range the charge stays within budget.
        let budget = 100_000_000;
        let seg = seg_records_for_budget(budget);
        assert!(streamed_peak_bytes(seg) <= budget);
        // Tiny and huge budgets clamp instead of degenerating.
        assert_eq!(seg_records_for_budget(0), 1 << 16);
        assert_eq!(seg_records_for_budget(u64::MAX / 8), 4 << 20);
    }

    #[test]
    fn est_pre_bytes_scales_with_records() {
        let s = spec(10_000);
        assert_eq!(est_pre_bytes(&s), 80_000);
    }

    #[test]
    fn streamed_and_materialized_agree() {
        let s = spec(40_000);
        let m = TraceSource::prepare(&s).run(&s, &PrefetcherSpec::None);
        let st = TraceSource::prepare_budgeted(&s, 0).run(&s, &PrefetcherSpec::None);
        assert_eq!(m, st);
    }
}
