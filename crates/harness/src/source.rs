//! Trace delivery: materialize in memory when the budget allows,
//! stream from the generator otherwise.

use std::sync::Arc;

use ebcp_sim::{PrefetcherSpec, RunSpec, SimResult};
use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::TraceRecord;

/// Default per-process trace memory budget (~1.5 GB). Replaces the old
/// hard-coded materialization threshold; the harness divides it by the
/// number of concurrent workers so N parallel materialized traces never
/// exceed one budget.
pub const DEFAULT_MEM_BUDGET_BYTES: u64 = 1_500_000_000;

/// A trace source: materialized when it fits the budget, streamed from
/// a shared [`WorkloadProgram`] otherwise.
///
/// Materialized traces are `Arc`-shared: every job replaying the same
/// `(workload, seed, length)` reads one allocation.
pub enum TraceSource {
    /// Fully materialized records.
    Materialized(Arc<Vec<TraceRecord>>),
    /// Regenerate per run from a shared program.
    Streamed(Arc<WorkloadProgram>),
}

impl TraceSource {
    /// Estimated materialized footprint of `spec`'s trace.
    pub fn est_bytes(spec: &RunSpec) -> u64 {
        let records = spec.warmup_insts + spec.measure_insts;
        records * std::mem::size_of::<TraceRecord>() as u64
    }

    /// Prepares the trace for `spec` under the default whole-process
    /// budget (single-threaded callers).
    pub fn prepare(spec: &RunSpec) -> Self {
        Self::prepare_budgeted(spec, DEFAULT_MEM_BUDGET_BYTES)
    }

    /// Prepares the trace for `spec`, materializing only when the
    /// estimated footprint fits `budget_bytes`.
    pub fn prepare_budgeted(spec: &RunSpec, budget_bytes: u64) -> Self {
        if Self::est_bytes(spec) <= budget_bytes {
            TraceSource::Materialized(spec.materialize())
        } else {
            TraceSource::Streamed(Arc::new(WorkloadProgram::build(&spec.workload)))
        }
    }

    /// Whether the trace is held in memory.
    pub const fn is_materialized(&self) -> bool {
        matches!(self, TraceSource::Materialized(_))
    }

    /// Runs one prefetcher over this trace.
    pub fn run(&self, spec: &RunSpec, pf: &PrefetcherSpec) -> SimResult {
        match self {
            TraceSource::Materialized(t) => spec.run_on(t, pf),
            TraceSource::Streamed(p) => spec.run_streaming(Arc::clone(p), pf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::SimConfig;
    use ebcp_trace::WorkloadSpec;

    fn spec(records: u64) -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::database().scaled(1, 16),
            seed: 5,
            warmup_insts: records / 2,
            measure_insts: records - records / 2,
            sim: SimConfig::scaled_down(16),
        }
    }

    #[test]
    fn small_trace_materializes_under_default_budget() {
        assert!(TraceSource::prepare(&spec(10_000)).is_materialized());
    }

    #[test]
    fn tight_budget_forces_streaming() {
        let s = spec(10_000);
        let src = TraceSource::prepare_budgeted(&s, TraceSource::est_bytes(&s) - 1);
        assert!(!src.is_materialized());
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        let s = spec(10_000);
        let src = TraceSource::prepare_budgeted(&s, TraceSource::est_bytes(&s));
        assert!(src.is_materialized());
    }

    #[test]
    fn streamed_and_materialized_agree() {
        let s = spec(40_000);
        let m = TraceSource::prepare(&s).run(&s, &PrefetcherSpec::None);
        let st = TraceSource::prepare_budgeted(&s, 0).run(&s, &PrefetcherSpec::None);
        assert_eq!(m, st);
    }
}
