//! On-disk store of generated traces in the segmented binary format.
//!
//! Trace generation is deterministic, so this store is a *performance*
//! cache, not a correctness one: a trace depends only on
//! `(workload, seed, record count)`, and with the store enabled
//! ([`crate::HarnessConfig::trace_store`]) each workload is generated
//! **once**, written through [`TraceSink`] in one streaming pass, and
//! every later front-end pass replays the file zero-copy through an
//! mmap'd [`SegmentedTrace`] window (O(segment) resident) instead of
//! re-running the generator.
//!
//! Files live under `<store_dir>/traces/<2-hex>/<trace_key>.seg`,
//! sharded like result entries. The cache discipline matches the rest
//! of the store: the file's meta field carries the full canonical
//! string its name hashes (collision guard); a wrong-version or
//! wrong-meta file is *staleness* — regenerated in place; a checksum or
//! length failure is *corruption* — the file is quarantined
//! (`*.corrupt`) and transparently regenerated.

use std::io;
use std::path::{Path, PathBuf};

use ebcp_sim::{Engine, RunSpec};
use ebcp_trace::{Backing, SegfileError, SegmentedTrace, TraceGenerator, TraceSink};

use crate::job::{fnv1a64, CANON_VERSION};
use crate::store::{quarantine, CacheRead};

/// The canonical string a trace file's name hashes and its meta field
/// stores verbatim. Covers everything generation depends on — and the
/// record count, so length changes never alias.
pub fn trace_canonical(spec: &RunSpec) -> String {
    format!(
        "{CANON_VERSION}|trace|{:?}|{}|{}",
        spec.workload,
        spec.seed,
        spec.warmup_insts + spec.measure_insts,
    )
}

/// Stable identity of `spec`'s trace in the store.
pub fn trace_key(spec: &RunSpec) -> u64 {
    fnv1a64(trace_canonical(spec).as_bytes())
}

/// Store path for `spec`'s trace (sharded by the key's first two hex
/// digits). The file may or may not exist.
pub fn path_for(store_dir: &Path, spec: &RunSpec) -> PathBuf {
    let name = format!("{:016x}.seg", trace_key(spec));
    store_dir.join("traces").join(&name[..2]).join(name)
}

/// Generates `spec`'s trace into the store in one streaming pass
/// (chunked generation feeding [`TraceSink`]; nothing materialized) and
/// returns the record count written. Publication is atomic — temp file
/// + rename — so concurrent generators race benignly.
///
/// # Errors
///
/// Propagates file-system failures.
pub fn generate(store_dir: &Path, spec: &RunSpec, seg_records: u64) -> io::Result<u64> {
    let path = path_for(store_dir, spec);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let meta = trace_canonical(spec);
    let mut sink = TraceSink::create(&path, meta.as_bytes(), seg_records)?;
    let mut gen = TraceGenerator::new(&spec.workload, spec.seed);
    let mut chunk = Vec::with_capacity(Engine::CHUNK_RECORDS);
    let mut left = spec.warmup_insts + spec.measure_insts;
    while left > 0 {
        let want = (Engine::CHUNK_RECORDS as u64).min(left) as usize;
        let got = gen.next_chunk(&mut chunk, want);
        if got == 0 {
            break;
        }
        sink.push_chunk(&chunk)?;
        left -= got as u64;
    }
    sink.finish()
}

/// Opens `spec`'s stored trace for zero-copy replay, generating (or
/// regenerating) it as needed: a missing or stale file is written in
/// place; a corrupt file is quarantined — reported through
/// `on_quarantine` — and regenerated (self-heal). At most one
/// regeneration is attempted; a file that fails to verify immediately
/// after being written is an environment fault and surfaces as an
/// error.
///
/// # Errors
///
/// Propagates file-system failures and regeneration that fails to
/// verify.
pub fn open_or_generate(
    store_dir: &Path,
    spec: &RunSpec,
    seg_records: u64,
    backing: Backing,
    mut on_quarantine: impl FnMut(PathBuf, String),
) -> io::Result<SegmentedTrace> {
    let path = path_for(store_dir, spec);
    let meta = trace_canonical(spec);
    let mut regenerated = false;
    loop {
        match SegmentedTrace::open(&path, meta.as_bytes(), backing) {
            Ok(t) => return Ok(t),
            Err(e) => {
                if regenerated {
                    return Err(io::Error::other(format!(
                        "freshly generated trace {} failed to verify: {e}",
                        path.display()
                    )));
                }
                if let SegfileError::Corrupt(reason) = &e {
                    if let CacheRead::Quarantined { path, reason } =
                        quarantine::<()>(path.clone(), reason.clone())
                    {
                        on_quarantine(path, reason);
                    }
                }
                // Stale, corrupt (now moved aside), missing, or
                // unreadable: regenerate over the top.
                generate(store_dir, spec, seg_records)?;
                regenerated = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::SimConfig;
    use ebcp_trace::{ChunkSource, TraceRecord, WorkloadSpec};

    fn spec() -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::database().scaled(1, 16),
            seed: 21,
            warmup_insts: 6_000,
            measure_insts: 6_000,
            sim: SimConfig::scaled_down(16),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ebcp-traces-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn collect_all(src: &mut dyn ChunkSource) -> Vec<TraceRecord> {
        let mut all = Vec::new();
        let mut chunk = Vec::new();
        while src.next_chunk(&mut chunk, 4096) > 0 {
            all.extend_from_slice(&chunk);
        }
        all
    }

    #[test]
    fn stored_trace_replays_identically_to_the_generator() {
        let dir = tmpdir("identical");
        let s = spec();
        let mut seg = open_or_generate(&dir, &s, 1_000, Backing::Mmap, |_, _| {
            panic!("fresh store cannot quarantine")
        })
        .unwrap();
        assert_eq!(seg.records(), 12_000);
        assert_eq!(seg.n_segments(), 12);
        let from_store = collect_all(&mut seg);
        let direct = TraceGenerator::new(&s.workload, s.seed).collect_n(from_store.len());
        assert_eq!(from_store, direct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_open_reuses_the_file() {
        let dir = tmpdir("reuse");
        let s = spec();
        let _ = open_or_generate(&dir, &s, 2_000, Backing::Buffered, |_, _| {}).unwrap();
        let p = path_for(&dir, &s);
        let written = std::fs::metadata(&p).unwrap().modified().unwrap();
        let again = open_or_generate(&dir, &s, 2_000, Backing::Buffered, |_, _| {
            panic!("valid file must not be quarantined")
        })
        .unwrap();
        assert_eq!(again.records(), 12_000);
        assert_eq!(
            std::fs::metadata(&p).unwrap().modified().unwrap(),
            written,
            "a valid cached trace must not be regenerated"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_trace_is_quarantined_and_regenerated() {
        let dir = tmpdir("heal");
        let s = spec();
        let _ = open_or_generate(&dir, &s, 2_000, Backing::Buffered, |_, _| {}).unwrap();
        let p = path_for(&dir, &s);
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let mut seen = Vec::new();
        let seg = open_or_generate(&dir, &s, 2_000, Backing::Buffered, |path, reason| {
            seen.push((path, reason));
        })
        .unwrap();
        assert_eq!(seg.records(), 12_000, "self-healed trace replays");
        assert_eq!(seen.len(), 1);
        assert!(seen[0].0.to_string_lossy().ends_with(".corrupt"));
        assert!(seen[0].0.is_file(), "corrupt bytes preserved");
        assert!(seen[0].1.contains("checksum"), "{}", seen[0].1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_trace_is_regenerated_without_quarantine() {
        let dir = tmpdir("stale");
        let s = spec();
        let _ = open_or_generate(&dir, &s, 2_000, Backing::Buffered, |_, _| {}).unwrap();
        let p = path_for(&dir, &s);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[..8].copy_from_slice(b"EBCPSEG0"); // an older format revision
        std::fs::write(&p, &bytes).unwrap();
        let seg = open_or_generate(&dir, &s, 2_000, Backing::Buffered, |_, reason| {
            panic!("stale is not corruption: {reason}")
        })
        .unwrap();
        assert_eq!(seg.records(), 12_000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_specs_key_different_files() {
        let a = spec();
        let mut b = spec();
        b.seed = 22;
        let mut c = spec();
        c.measure_insts += 1;
        assert_ne!(trace_key(&a), trace_key(&b));
        assert_ne!(trace_key(&a), trace_key(&c));
        let dir = Path::new("/store");
        let pa = path_for(dir, &a);
        assert!(pa.starts_with("/store/traces"));
        assert!(pa.to_string_lossy().ends_with(".seg"));
    }
}
