//! On-disk result store: one JSON file per job, keyed by content hash.
//!
//! A warm store makes re-runs incremental — `repro all` executed twice
//! at the same scale performs zero simulations the second time. Files
//! carry the job's full canonical string so a (vanishingly unlikely)
//! 64-bit hash collision is detected and treated as a miss rather than
//! silently returning the wrong result.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ebcp_mem::{BusStats, MemStats};
use ebcp_sim::SimResult;

use crate::job::Job;
use crate::json::{self, Value};

/// On-disk schema version; bump on incompatible result layout changes.
const SCHEMA: u64 = 2;

/// A directory of cached [`SimResult`]s, keyed by [`Job`] hash.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, job: &Job) -> PathBuf {
        self.dir.join(format!("{}.json", job.id()))
    }

    /// Loads the cached result for `job`, if present and valid.
    ///
    /// Unreadable, unparsable, stale-schema or hash-colliding entries
    /// all read as a miss (the job simply re-runs and overwrites them).
    pub fn load(&self, job: &Job) -> Option<SimResult> {
        let text = fs::read_to_string(self.path_for(job)).ok()?;
        let v = json::parse(&text).ok()?;
        if v.get("schema")?.as_u64()? != SCHEMA {
            return None;
        }
        // Collision / corruption guard: the stored canonical string must
        // match the job that hashed to this file name.
        if v.get("job")?.as_str()? != job.canonical() {
            return None;
        }
        result_from_json(v.get("result")?)
    }

    /// Persists `result` for `job` (atomically: write temp, rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers may treat them as non-fatal
    /// (the run still succeeded, only the cache write was lost).
    pub fn save(&self, job: &Job, result: &SimResult) -> io::Result<()> {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Int(SCHEMA)),
            ("id".into(), Value::Str(job.id().to_string())),
            ("job".into(), Value::Str(job.canonical())),
            ("result".into(), result_to_json(result)),
        ]);
        let path = self.path_for(job);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, doc.to_json_pretty())?;
        fs::rename(&tmp, &path)
    }
}

fn bus_to_json(b: &BusStats) -> Value {
    let arr = |a: &[u64; 5]| Value::Arr(a.iter().map(|&n| Value::Int(n)).collect());
    Value::Obj(vec![
        ("transfers".into(), arr(&b.transfers)),
        ("dropped".into(), arr(&b.dropped)),
        ("busy_cycles".into(), arr(&b.busy_cycles)),
    ])
}

fn bus_from_json(v: &Value) -> Option<BusStats> {
    let arr = |key: &str| -> Option<[u64; 5]> {
        let items = v.get(key)?.as_arr()?;
        if items.len() != 5 {
            return None;
        }
        let mut out = [0u64; 5];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = item.as_u64()?;
        }
        Some(out)
    };
    Some(BusStats {
        transfers: arr("transfers")?,
        dropped: arr("dropped")?,
        busy_cycles: arr("busy_cycles")?,
    })
}

/// Encodes a [`SimResult`] as JSON (also used for `results.json`).
pub fn result_to_json(r: &SimResult) -> Value {
    Value::Obj(vec![
        ("prefetcher".into(), Value::Str(r.prefetcher.clone())),
        ("workload".into(), Value::Str(r.workload.clone())),
        ("insts".into(), Value::Int(r.insts)),
        ("cycles".into(), Value::Int(r.cycles)),
        ("epochs".into(), Value::Int(r.epochs)),
        ("l2_inst_misses".into(), Value::Int(r.l2_inst_misses)),
        ("l2_load_misses".into(), Value::Int(r.l2_load_misses)),
        ("l2_store_misses".into(), Value::Int(r.l2_store_misses)),
        ("secondary_misses".into(), Value::Int(r.secondary_misses)),
        ("averted_inst".into(), Value::Int(r.averted_inst)),
        ("averted_load".into(), Value::Int(r.averted_load)),
        ("averted_store".into(), Value::Int(r.averted_store)),
        ("partial_hits".into(), Value::Int(r.partial_hits)),
        ("pf_requested".into(), Value::Int(r.pf_requested)),
        ("pf_issued".into(), Value::Int(r.pf_issued)),
        ("pf_dropped_bus".into(), Value::Int(r.pf_dropped_bus)),
        ("pf_dropped_mshr".into(), Value::Int(r.pf_dropped_mshr)),
        ("pf_filtered".into(), Value::Int(r.pf_filtered)),
        ("pf_evicted_unused".into(), Value::Int(r.pf_evicted_unused)),
        ("table_reads".into(), Value::Int(r.table_reads)),
        ("table_read_drops".into(), Value::Int(r.table_read_drops)),
        ("table_writes".into(), Value::Int(r.table_writes)),
        ("writebacks".into(), Value::Int(r.writebacks)),
        ("store_skipped".into(), Value::Int(r.store_skipped)),
        ("stall_cycles".into(), Value::Int(r.stall_cycles)),
        (
            "mem".into(),
            Value::Obj(vec![
                ("read".into(), bus_to_json(&r.mem.read)),
                ("write".into(), bus_to_json(&r.mem.write)),
            ]),
        ),
    ])
}

/// Decodes a [`SimResult`]; `None` on any missing or mistyped field.
pub fn result_from_json(v: &Value) -> Option<SimResult> {
    let n = |key: &str| v.get(key)?.as_u64();
    Some(SimResult {
        prefetcher: v.get("prefetcher")?.as_str()?.to_owned(),
        workload: v.get("workload")?.as_str()?.to_owned(),
        insts: n("insts")?,
        cycles: n("cycles")?,
        epochs: n("epochs")?,
        l2_inst_misses: n("l2_inst_misses")?,
        l2_load_misses: n("l2_load_misses")?,
        l2_store_misses: n("l2_store_misses")?,
        secondary_misses: n("secondary_misses")?,
        averted_inst: n("averted_inst")?,
        averted_load: n("averted_load")?,
        averted_store: n("averted_store")?,
        partial_hits: n("partial_hits")?,
        pf_requested: n("pf_requested")?,
        pf_issued: n("pf_issued")?,
        pf_dropped_bus: n("pf_dropped_bus")?,
        pf_dropped_mshr: n("pf_dropped_mshr")?,
        pf_filtered: n("pf_filtered")?,
        pf_evicted_unused: n("pf_evicted_unused")?,
        table_reads: n("table_reads")?,
        table_read_drops: n("table_read_drops")?,
        table_writes: n("table_writes")?,
        writebacks: n("writebacks")?,
        store_skipped: n("store_skipped")?,
        stall_cycles: n("stall_cycles")?,
        mem: MemStats {
            read: bus_from_json(v.get("mem")?.get("read")?)?,
            write: bus_from_json(v.get("mem")?.get("write")?)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
    use ebcp_trace::WorkloadSpec;

    fn sample_result() -> SimResult {
        SimResult {
            prefetcher: "ebcp".into(),
            workload: "database".into(),
            insts: 123_456,
            cycles: 456_789,
            epochs: 777,
            l2_load_misses: 4_242,
            pf_issued: u64::MAX, // exercise exact u64 round-trip
            mem: MemStats {
                read: BusStats {
                    transfers: [1, 2, 3, 4, 5],
                    dropped: [0; 5],
                    busy_cycles: [9, 8, 7, 6, 5],
                },
                write: BusStats::default(),
            },
            ..SimResult::default()
        }
    }

    fn sample_job() -> Job {
        Job::new(
            RunSpec {
                workload: WorkloadSpec::database().scaled(1, 16),
                seed: 1,
                warmup_insts: 100,
                measure_insts: 100,
                sim: SimConfig::scaled_down(16),
            },
            PrefetcherSpec::None,
        )
    }

    fn temp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("ebcp-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn result_codec_round_trips() {
        let r = sample_result();
        let v = result_to_json(&r);
        let text = v.to_json_pretty();
        let back = result_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn save_then_load() {
        let store = temp_store("roundtrip");
        let job = sample_job();
        assert!(store.load(&job).is_none(), "cold store must miss");
        let r = sample_result();
        store.save(&job, &r).unwrap();
        assert_eq!(store.load(&job), Some(r));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_entry_reads_as_miss() {
        let store = temp_store("corrupt");
        let job = sample_job();
        store.save(&job, &sample_result()).unwrap();
        fs::write(store.dir().join(format!("{}.json", job.id())), "{ not json").unwrap();
        assert!(store.load(&job).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn canonical_mismatch_reads_as_miss() {
        let store = temp_store("collision");
        let job = sample_job();
        // Simulate a hash collision: a valid entry under this job's file
        // name whose canonical string belongs to some other job.
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Int(SCHEMA)),
            ("id".into(), Value::Str(job.id().to_string())),
            ("job".into(), Value::Str("other-job".into())),
            ("result".into(), result_to_json(&sample_result())),
        ]);
        let path = store.dir().join(format!("{}.json", job.id()));
        fs::write(&path, doc.to_json()).unwrap();
        assert!(store.load(&job).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}
