//! On-disk result store: one JSON file per job, keyed by content hash.
//!
//! A warm store makes re-runs incremental — `repro all` executed twice
//! at the same scale performs zero simulations the second time. Files
//! carry the job's full canonical string so a (vanishingly unlikely)
//! 64-bit hash collision is detected and treated as a miss rather than
//! silently returning the wrong result.
//!
//! Entries are **integrity-checked**: each file stores an FNV-1a
//! checksum of its compact result encoding. A corrupt entry — torn
//! write, flipped bit, unparsable JSON — is *quarantined* (renamed to
//! `<id>.json.corrupt`) and reads as a miss, so the job transparently
//! re-runs and overwrites it (self-heal). Merely *stale* entries (an
//! older schema version) are not corruption: they read as a plain miss
//! and are overwritten in place.
//!
//! Entries are **sharded** by the first two hex digits of the job id
//! (`<dir>/ab/<id>.json`, 256-way fan-out), so a store shared by many
//! hosts over a network mount never degenerates into one flat directory
//! of hundreds of thousands of files. Pre-sharding stores migrate
//! transparently: [`ResultStore::open`] sweeps any flat entries (and
//! their `.corrupt` quarantines) into their shards, and reads fall back
//! to the flat path — migrating read-through — in case another process
//! wrote one mid-transition.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ebcp_mem::{BusStats, MemStats};
use ebcp_sim::SimResult;

use crate::job::{fnv1a64, Job};
use crate::json::{self, Value};

/// On-disk schema version; bump on incompatible result layout changes.
///
/// v3: added the `checksum` integrity field.
const SCHEMA: u64 = 3;

/// Sequence counter making concurrent temp-file names unique within a
/// process; the pid makes them unique across processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A pid- and sequence-unique sibling temp path for atomically
/// replacing `path` (write temp, rename). Two processes — or two
/// threads of one process — publishing the same target concurrently
/// each write their own temp file, so the final rename is the only
/// contended step and readers never observe a torn file.
pub(crate) fn unique_tmp(path: &Path, ext: &str) -> PathBuf {
    path.with_extension(format!(
        "{ext}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Outcome of an integrity-checked cache read.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheRead<T> {
    /// A valid entry.
    Hit(T),
    /// No entry (absent, stale schema, or a detected hash collision) —
    /// the caller simply runs the job and overwrites.
    Miss,
    /// A corrupt entry was detected and renamed to `*.corrupt`; the
    /// caller re-runs the job, overwriting the original path.
    Quarantined {
        /// Where the corrupt bytes were moved (best effort: the
        /// original path if the rename itself failed).
        path: PathBuf,
        /// Why the entry was rejected.
        reason: String,
    },
}

impl<T> CacheRead<T> {
    /// The hit value, if any.
    pub fn into_hit(self) -> Option<T> {
        match self {
            CacheRead::Hit(v) => Some(v),
            _ => None,
        }
    }
}

/// Moves a corrupt cache file out of the way (`<file>.corrupt`,
/// overwriting any previous quarantine of the same path) and returns
/// the quarantine record.
pub(crate) fn quarantine<T>(path: PathBuf, reason: String) -> CacheRead<T> {
    let mut corrupt = path.clone().into_os_string();
    corrupt.push(".corrupt");
    let corrupt = PathBuf::from(corrupt);
    let moved = fs::rename(&path, &corrupt).is_ok();
    CacheRead::Quarantined {
        path: if moved { corrupt } else { path },
        reason,
    }
}

/// The 2-hex shard directory a store file belongs to: the first two
/// characters of its 16-hex-digit id (256-way fan-out).
fn shard_of(name: &str) -> &str {
    &name[..2]
}

/// Whether `name` is a store entry (`<16 hex>.json`, optionally with a
/// `.corrupt` quarantine suffix). Temp files and foreign files are not.
fn is_store_entry_name(name: &str) -> bool {
    let stem = name.strip_suffix(".corrupt").unwrap_or(name);
    let Some(hex) = stem.strip_suffix(".json") else {
        return false;
    };
    hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit())
}

/// One-time sweep moving flat (pre-sharding) entries — `<id>.json` and
/// their `.corrupt` quarantines — into their shard directories. Best
/// effort and idempotent; concurrent opens race benignly (renaming an
/// already-moved file simply fails and the entry is found sharded).
pub(crate) fn migrate_flat_entries(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !is_store_entry_name(name) {
            continue;
        }
        let shard = dir.join(shard_of(name));
        if fs::create_dir_all(&shard).is_ok() {
            let _ = fs::rename(&path, shard.join(name));
        }
    }
}

/// A directory of cached [`SimResult`]s, keyed by [`Job`] hash.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`, migrating any
    /// flat (pre-sharding) entries into their 2-hex shard directories.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created. Migration is best
    /// effort: an entry whose rename fails stays flat and is still
    /// readable through the read-through fallback.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        migrate_flat_entries(&dir);
        crate::preres::migrate_flat_streams(&dir);
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of `job`'s entry (sharded layout). The file may
    /// or may not exist.
    pub fn entry_path(&self, job: &Job) -> PathBuf {
        let name = format!("{}.json", job.id());
        self.dir.join(shard_of(&name)).join(name)
    }

    fn path_for(&self, job: &Job) -> PathBuf {
        self.entry_path(job)
    }

    /// The legacy flat path entries lived at before sharding.
    fn flat_path_for(&self, job: &Job) -> PathBuf {
        self.dir.join(format!("{}.json", job.id()))
    }

    /// Loads the cached result for `job`, if present and valid.
    ///
    /// Convenience wrapper over [`ResultStore::load_checked`] that
    /// collapses misses and quarantines to `None`.
    pub fn load(&self, job: &Job) -> Option<SimResult> {
        self.load_checked(job).into_hit()
    }

    /// Integrity-checked load: distinguishes a valid entry, a plain
    /// miss (absent, stale schema, hash collision) and a *corrupt*
    /// entry, which is quarantined (renamed to `<id>.json.corrupt`) so
    /// the caller can log it and transparently re-run the job.
    pub fn load_checked(&self, job: &Job) -> CacheRead<SimResult> {
        let sharded = self.path_for(job);
        let (path, text) = match fs::read_to_string(&sharded) {
            Ok(text) => (sharded, text),
            Err(_) => {
                // Read-through migration: a process running pre-sharding
                // code may have written a flat entry after this store
                // was opened and swept. Move it home, best effort.
                let flat = self.flat_path_for(job);
                let Ok(text) = fs::read_to_string(&flat) else {
                    return CacheRead::Miss;
                };
                if let Some(parent) = sharded.parent() {
                    let _ = fs::create_dir_all(parent);
                }
                if fs::rename(&flat, &sharded).is_ok() {
                    (sharded, text)
                } else {
                    (flat, text)
                }
            }
        };
        let Ok(v) = json::parse(&text) else {
            return quarantine(path, "unparsable JSON".into());
        };
        let Some(schema) = v.get("schema").and_then(Value::as_u64) else {
            return quarantine(path, "missing schema field".into());
        };
        if schema != SCHEMA {
            // A different (older or newer) schema is staleness, not
            // corruption: plain miss, overwritten on save.
            return CacheRead::Miss;
        }
        // Collision guard: the stored canonical string must match the
        // job that hashed to this file name. A well-formed entry for a
        // *different* job is a collision, not corruption.
        match v.get("job").and_then(Value::as_str) {
            None => return quarantine(path, "missing job field".into()),
            Some(canon) if canon != job.canonical() => return CacheRead::Miss,
            Some(_) => {}
        }
        let Some(result) = v.get("result") else {
            return quarantine(path, "missing result field".into());
        };
        match v.get("checksum").and_then(Value::as_str) {
            Some(stored) if stored == result_checksum(result) => {}
            Some(_) => return quarantine(path, "checksum mismatch".into()),
            None => return quarantine(path, "missing checksum field".into()),
        }
        match result_from_json(result) {
            Some(r) => CacheRead::Hit(r),
            None => quarantine(path, "undecodable result".into()),
        }
    }

    /// Persists `result` for `job` (atomically: write temp, rename).
    /// The temp name is pid- and sequence-unique, so concurrent saves
    /// of the same job — from two processes sharing a store, or two
    /// threads — can never interleave writes into one temp file and
    /// publish a torn entry.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers may treat them as non-fatal
    /// (the run still succeeded, only the cache write was lost).
    pub fn save(&self, job: &Job, result: &SimResult) -> io::Result<()> {
        let result_json = result_to_json(result);
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Int(SCHEMA)),
            ("id".into(), Value::Str(job.id().to_string())),
            ("job".into(), Value::Str(job.canonical())),
            ("checksum".into(), Value::Str(result_checksum(&result_json))),
            ("result".into(), result_json),
        ]);
        let path = self.path_for(job);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = unique_tmp(&path, "json");
        fs::write(&tmp, doc.to_json_pretty())?;
        fs::rename(&tmp, &path)
    }
}

/// On-disk footprint of one class of store files (results, pre-resolved
/// streams, or traces).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreClassFootprint {
    /// Valid (non-quarantined) files.
    pub files: u64,
    /// Their total size in bytes.
    pub bytes: u64,
    /// Total segments across the class's segmented files (0 for the
    /// JSON result entries, which are not segmented).
    pub segments: u64,
    /// Quarantined `*.corrupt` files still on disk.
    pub corrupt: u64,
    /// Total size of those quarantined files in bytes. Kept out of
    /// [`StoreClassFootprint::bytes`] so healthy-store totals are not
    /// inflated by quarantine debris awaiting cleanup.
    pub quarantined_bytes: u64,
}

/// On-disk footprint of a whole result store: what `repro status`
/// reports, locally or through the sweep service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreFootprint {
    /// Cached simulation results (`<id>.json`).
    pub results: StoreClassFootprint,
    /// Pre-resolved event streams (`preres/*.bin`).
    pub preres: StoreClassFootprint,
    /// Segmented binary traces (`traces/*.seg`).
    pub traces: StoreClassFootprint,
}

impl StoreFootprint {
    /// Total healthy bytes across every class (quarantined files
    /// excluded — see [`StoreFootprint::quarantined_bytes`]).
    pub const fn total_bytes(&self) -> u64 {
        self.results.bytes + self.preres.bytes + self.traces.bytes
    }

    /// Total bytes held hostage by `*.corrupt` quarantine files across
    /// every class.
    pub const fn quarantined_bytes(&self) -> u64 {
        self.results.quarantined_bytes
            + self.preres.quarantined_bytes
            + self.traces.quarantined_bytes
    }
}

/// Segment count from the 48-byte checksummed footer shared by the
/// segmented trace and pre-resolved stream formats (`n_segs` at offset
/// 16, self-checksum over the first 40 bytes at offset 40). `None` when
/// the file is too short or the footer does not verify — the scan then
/// counts the file's bytes but no segments, without quarantining
/// (footprint reporting is read-only).
fn footer_segments(path: &Path) -> Option<u64> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = fs::File::open(path).ok()?;
    let len = f.metadata().ok()?.len();
    if len < 48 {
        return None;
    }
    let mut footer = [0u8; 48];
    f.seek(SeekFrom::Start(len - 48)).ok()?;
    f.read_exact(&mut footer).ok()?;
    let stored = u64::from_le_bytes(footer[40..48].try_into().ok()?);
    if fnv1a64(&footer[0..40]) != stored {
        return None;
    }
    Some(u64::from_le_bytes(footer[16..24].try_into().ok()?))
}

/// Scans one class directory tree, tallying files with `suffix` (and
/// their `.corrupt` quarantines); `segmented` adds per-file footer
/// segment counts.
fn scan_class(root: &Path, suffix: &str, segmented: bool) -> StoreClassFootprint {
    let mut out = StoreClassFootprint::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".corrupt") {
                out.corrupt += 1;
                out.quarantined_bytes += entry.metadata().map_or(0, |m| m.len());
                continue;
            }
            if !name.ends_with(suffix) {
                continue;
            }
            out.files += 1;
            out.bytes += entry.metadata().map_or(0, |m| m.len());
            if segmented {
                out.segments += footer_segments(&path).unwrap_or(0);
            }
        }
    }
    out
}

/// Scans a store directory and reports its on-disk footprint: file and
/// byte counts for result entries, pre-resolved streams and segmented
/// traces, segment counts for the segmented classes, and leftover
/// quarantines. Read-only and best-effort (unreadable entries are
/// skipped); safe to run concurrently with active sweeps.
pub fn store_footprint(dir: &Path) -> StoreFootprint {
    let mut results = StoreClassFootprint::default();
    // Result entries live in 2-hex shard directories directly under the
    // root (plus any not-yet-migrated flat files); `preres/` and
    // `traces/` are separate classes.
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if path.is_dir() && name != "preres" && name != "traces" {
                let sub = scan_class(&path, ".json", false);
                results.files += sub.files;
                results.bytes += sub.bytes;
                results.corrupt += sub.corrupt;
                results.quarantined_bytes += sub.quarantined_bytes;
            } else if path.is_file() && is_store_entry_name(name) {
                if name.ends_with(".corrupt") {
                    results.corrupt += 1;
                    results.quarantined_bytes += entry.metadata().map_or(0, |m| m.len());
                } else {
                    results.files += 1;
                    results.bytes += entry.metadata().map_or(0, |m| m.len());
                }
            }
        }
    }
    StoreFootprint {
        results,
        preres: scan_class(&dir.join("preres"), ".bin", true),
        traces: scan_class(&dir.join("traces"), ".seg", true),
    }
}

/// The integrity checksum stored with each entry: FNV-1a over the
/// *compact* serialization of the result value, so pretty-printing
/// whitespace can never perturb it.
fn result_checksum(result: &Value) -> String {
    format!("{:016x}", fnv1a64(result.to_json().as_bytes()))
}

fn bus_to_json(b: &BusStats) -> Value {
    let arr = |a: &[u64; 5]| Value::Arr(a.iter().map(|&n| Value::Int(n)).collect());
    Value::Obj(vec![
        ("transfers".into(), arr(&b.transfers)),
        ("dropped".into(), arr(&b.dropped)),
        ("busy_cycles".into(), arr(&b.busy_cycles)),
    ])
}

fn bus_from_json(v: &Value) -> Option<BusStats> {
    let arr = |key: &str| -> Option<[u64; 5]> {
        let items = v.get(key)?.as_arr()?;
        if items.len() != 5 {
            return None;
        }
        let mut out = [0u64; 5];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = item.as_u64()?;
        }
        Some(out)
    };
    Some(BusStats {
        transfers: arr("transfers")?,
        dropped: arr("dropped")?,
        busy_cycles: arr("busy_cycles")?,
    })
}

/// Encodes a [`SimResult`] as JSON (also used for `results.json`).
pub fn result_to_json(r: &SimResult) -> Value {
    Value::Obj(vec![
        ("prefetcher".into(), Value::Str(r.prefetcher.clone())),
        ("workload".into(), Value::Str(r.workload.clone())),
        ("insts".into(), Value::Int(r.insts)),
        ("cycles".into(), Value::Int(r.cycles)),
        ("epochs".into(), Value::Int(r.epochs)),
        ("l2_inst_misses".into(), Value::Int(r.l2_inst_misses)),
        ("l2_load_misses".into(), Value::Int(r.l2_load_misses)),
        ("l2_store_misses".into(), Value::Int(r.l2_store_misses)),
        ("secondary_misses".into(), Value::Int(r.secondary_misses)),
        ("averted_inst".into(), Value::Int(r.averted_inst)),
        ("averted_load".into(), Value::Int(r.averted_load)),
        ("averted_store".into(), Value::Int(r.averted_store)),
        ("partial_hits".into(), Value::Int(r.partial_hits)),
        ("pf_requested".into(), Value::Int(r.pf_requested)),
        ("pf_issued".into(), Value::Int(r.pf_issued)),
        ("pf_dropped_bus".into(), Value::Int(r.pf_dropped_bus)),
        ("pf_dropped_mshr".into(), Value::Int(r.pf_dropped_mshr)),
        ("pf_filtered".into(), Value::Int(r.pf_filtered)),
        ("pf_evicted_unused".into(), Value::Int(r.pf_evicted_unused)),
        ("table_reads".into(), Value::Int(r.table_reads)),
        ("table_read_drops".into(), Value::Int(r.table_read_drops)),
        ("table_writes".into(), Value::Int(r.table_writes)),
        ("writebacks".into(), Value::Int(r.writebacks)),
        ("store_skipped".into(), Value::Int(r.store_skipped)),
        ("stall_cycles".into(), Value::Int(r.stall_cycles)),
        (
            "mem".into(),
            Value::Obj(vec![
                ("read".into(), bus_to_json(&r.mem.read)),
                ("write".into(), bus_to_json(&r.mem.write)),
            ]),
        ),
    ])
}

/// Decodes a [`SimResult`]; `None` on any missing or mistyped field.
pub fn result_from_json(v: &Value) -> Option<SimResult> {
    let n = |key: &str| v.get(key)?.as_u64();
    Some(SimResult {
        prefetcher: v.get("prefetcher")?.as_str()?.to_owned(),
        workload: v.get("workload")?.as_str()?.to_owned(),
        insts: n("insts")?,
        cycles: n("cycles")?,
        epochs: n("epochs")?,
        l2_inst_misses: n("l2_inst_misses")?,
        l2_load_misses: n("l2_load_misses")?,
        l2_store_misses: n("l2_store_misses")?,
        secondary_misses: n("secondary_misses")?,
        averted_inst: n("averted_inst")?,
        averted_load: n("averted_load")?,
        averted_store: n("averted_store")?,
        partial_hits: n("partial_hits")?,
        pf_requested: n("pf_requested")?,
        pf_issued: n("pf_issued")?,
        pf_dropped_bus: n("pf_dropped_bus")?,
        pf_dropped_mshr: n("pf_dropped_mshr")?,
        pf_filtered: n("pf_filtered")?,
        pf_evicted_unused: n("pf_evicted_unused")?,
        table_reads: n("table_reads")?,
        table_read_drops: n("table_read_drops")?,
        table_writes: n("table_writes")?,
        writebacks: n("writebacks")?,
        store_skipped: n("store_skipped")?,
        stall_cycles: n("stall_cycles")?,
        mem: MemStats {
            read: bus_from_json(v.get("mem")?.get("read")?)?,
            write: bus_from_json(v.get("mem")?.get("write")?)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
    use ebcp_trace::WorkloadSpec;

    fn sample_result() -> SimResult {
        SimResult {
            prefetcher: "ebcp".into(),
            workload: "database".into(),
            insts: 123_456,
            cycles: 456_789,
            epochs: 777,
            l2_load_misses: 4_242,
            pf_issued: u64::MAX, // exercise exact u64 round-trip
            mem: MemStats {
                read: BusStats {
                    transfers: [1, 2, 3, 4, 5],
                    dropped: [0; 5],
                    busy_cycles: [9, 8, 7, 6, 5],
                },
                write: BusStats::default(),
            },
            ..SimResult::default()
        }
    }

    fn sample_job() -> Job {
        Job::new(
            RunSpec {
                workload: WorkloadSpec::database().scaled(1, 16),
                seed: 1,
                warmup_insts: 100,
                measure_insts: 100,
                sim: SimConfig::scaled_down(16),
            },
            PrefetcherSpec::None,
        )
    }

    fn temp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("ebcp-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn result_codec_round_trips() {
        let r = sample_result();
        let v = result_to_json(&r);
        let text = v.to_json_pretty();
        let back = result_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn save_then_load() {
        let store = temp_store("roundtrip");
        let job = sample_job();
        assert!(store.load(&job).is_none(), "cold store must miss");
        let r = sample_result();
        store.save(&job, &r).unwrap();
        assert_eq!(store.load(&job), Some(r));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unparsable_entry_is_quarantined() {
        let store = temp_store("corrupt");
        let job = sample_job();
        store.save(&job, &sample_result()).unwrap();
        let path = store.entry_path(&job);
        fs::write(&path, "{ not json").unwrap();
        match store.load_checked(&job) {
            CacheRead::Quarantined { path: q, reason } => {
                assert!(q.to_string_lossy().ends_with(".corrupt"), "{}", q.display());
                assert!(q.is_file(), "corrupt bytes must be preserved");
                assert!(reason.contains("unparsable"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(!path.exists(), "the corrupt entry must be moved away");
        // Self-heal: saving again overwrites and the entry reads back.
        store.save(&job, &sample_result()).unwrap();
        assert_eq!(store.load(&job), Some(sample_result()));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bit_flip_in_counter_is_quarantined() {
        let store = temp_store("bitflip");
        let job = sample_job();
        store.save(&job, &sample_result()).unwrap();
        let path = store.entry_path(&job);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a digit inside the result payload: still valid JSON, but
        // a different value than the checksum covers.
        let at = bytes
            .windows(7)
            .position(|w| w == b"123456,")
            .expect("sample counter must appear in the entry");
        bytes[at] = b'9';
        fs::write(&path, &bytes).unwrap();
        match store.load_checked(&job) {
            CacheRead::Quarantined { reason, .. } => {
                assert!(reason.contains("checksum"), "{reason}")
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stale_schema_is_a_plain_miss_not_corruption() {
        let store = temp_store("stale");
        let job = sample_job();
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Int(SCHEMA - 1)),
            ("id".into(), Value::Str(job.id().to_string())),
            ("job".into(), Value::Str(job.canonical())),
            ("result".into(), result_to_json(&sample_result())),
        ]);
        let path = store.entry_path(&job);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, doc.to_json()).unwrap();
        assert_eq!(store.load_checked(&job), CacheRead::Miss);
        assert!(path.exists(), "stale entries are not quarantined");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn canonical_mismatch_reads_as_miss() {
        let store = temp_store("collision");
        let job = sample_job();
        // Simulate a hash collision: a valid entry under this job's file
        // name whose canonical string belongs to some other job.
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Int(SCHEMA)),
            ("id".into(), Value::Str(job.id().to_string())),
            ("job".into(), Value::Str("other-job".into())),
            ("result".into(), result_to_json(&sample_result())),
        ]);
        let path = store.entry_path(&job);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, doc.to_json()).unwrap();
        assert_eq!(store.load_checked(&job), CacheRead::Miss);
        assert!(path.exists(), "collisions are not quarantined");
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Two concurrent writers publishing the same job id — the shape of
    /// two `repro` processes sharing one store — must never tear an
    /// entry: every interleaved load sees either a miss or a fully
    /// valid result, and both final candidates are intact. Before temp
    /// names were unique per save, both writers shared one `json.tmp`
    /// and could rename a half-written file into place.
    #[test]
    fn concurrent_saves_never_publish_a_torn_entry() {
        let store = temp_store("race");
        let job = sample_job();
        let a = sample_result();
        let b = SimResult {
            insts: 999_999_999,
            ..sample_result()
        };
        std::thread::scope(|s| {
            for result in [&a, &b] {
                s.spawn(|| {
                    for _ in 0..200 {
                        store.save(&job, result).unwrap();
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..400 {
                    match store.load_checked(&job) {
                        CacheRead::Hit(r) => assert!(r == a || r == b, "torn entry read back"),
                        CacheRead::Miss => {}
                        CacheRead::Quarantined { reason, .. } => {
                            panic!("torn entry quarantined: {reason}")
                        }
                    }
                }
            });
        });
        let got = store.load(&job).expect("final entry must be valid");
        assert!(got == a || got == b);
        // No temp litter left behind once both writers finished.
        let shard = store.entry_path(&job);
        let leftovers: Vec<_> = fs::read_dir(shard.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(store.dir());
    }

    /// A flat (pre-sharding) store migrates on open: entries and their
    /// quarantines move into 2-hex shard directories and read back.
    #[test]
    fn flat_store_migrates_on_open() {
        let store = temp_store("migrate");
        let job = sample_job();
        store.save(&job, &sample_result()).unwrap();
        // Reconstruct the legacy layout: entry + a quarantine, flat.
        let sharded = store.entry_path(&job);
        let flat = store.dir().join(format!("{}.json", job.id()));
        fs::rename(&sharded, &flat).unwrap();
        let flat_corrupt = store.dir().join(format!("{}.json.corrupt", job.id()));
        fs::write(&flat_corrupt, "old corrupt bytes").unwrap();
        let dir = store.dir().to_path_buf();
        drop(store);

        let store = ResultStore::open(&dir).unwrap();
        assert!(!flat.exists(), "entry must move into its shard");
        assert!(sharded.is_file());
        assert!(!flat_corrupt.exists(), "quarantines migrate too");
        let mut corrupt = sharded.clone().into_os_string();
        corrupt.push(".corrupt");
        assert!(PathBuf::from(corrupt).is_file());
        assert_eq!(store.load(&job), Some(sample_result()));
        let _ = fs::remove_dir_all(store.dir());
    }

    /// A flat entry that appears *after* open (written by a pre-sharding
    /// process sharing the store) is found and migrated read-through.
    #[test]
    fn flat_entry_is_read_through_migrated() {
        let store = temp_store("readthrough");
        let job = sample_job();
        store.save(&job, &sample_result()).unwrap();
        let sharded = store.entry_path(&job);
        let flat = store.dir().join(format!("{}.json", job.id()));
        fs::rename(&sharded, &flat).unwrap();
        assert_eq!(store.load(&job), Some(sample_result()));
        assert!(!flat.exists(), "read must migrate the flat entry");
        assert!(sharded.is_file());
        let _ = fs::remove_dir_all(store.dir());
    }
}
