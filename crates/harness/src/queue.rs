//! The sweep service's job queue: bounded, fair, and deduplicating.
//!
//! A [`JobService`] wraps a shared [`Harness`] with daemon-lifetime
//! semantics the batch API does not provide:
//!
//! - **backpressure** — total queued depth is bounded; a submit beyond
//!   it is refused with [`SubmitError::QueueFull`] and a retry hint,
//!   so a flooding client gets pushback instead of unbounded memory;
//! - **per-client fairness** — each client gets its own FIFO and the
//!   workers drain clients round-robin, so one client's thousand-cell
//!   sweep cannot starve another's three-cell smoke test;
//! - **in-flight dedup** — a job already queued or running (for any
//!   client) is never queued again; later submitters register as
//!   waiters and all receive the one outcome when it lands;
//! - **warm fast path** — a job the harness memo already knows is
//!   answered synchronously, without touching the queue at all.
//!
//! Outcomes are delivered per job over the `mpsc` sender the client
//! passed at submit time, tagged with the [`JobId`] so the client can
//! map completions (which arrive in *completion* order) back to its
//! sweep cells. Fault isolation is inherited from the harness: a cell
//! that panics becomes that client's [`JobOutcome::Failed`] and nothing
//! else — sibling cells, other clients' sweeps, and the caches are
//! untouched.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::job::{Job, JobId};
use crate::{lock, Harness, JobOutcome};

/// Queue sizing and policy.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum queued (accepted but not yet running) jobs across all
    /// clients; submits beyond it are refused with a retry hint.
    pub depth: usize,
    /// Worker threads executing queued jobs; `0` means the harness's
    /// resolved worker count.
    pub workers: usize,
    /// The hint returned with a [`SubmitError::QueueFull`] refusal.
    pub retry_after: Duration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            depth: 1024,
            workers: 0,
            retry_after: Duration::from_millis(500),
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity. Resubmit after the hint.
    QueueFull {
        /// Suggested client back-off before retrying.
        retry_after: Duration,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after } => {
                write!(f, "queue full; retry after {} ms", retry_after.as_millis())
            }
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// A point-in-time snapshot of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Jobs accepted and waiting for a worker.
    pub queued: usize,
    /// Jobs a worker is executing right now.
    pub running: usize,
    /// Clients with queued work.
    pub clients: usize,
    /// Jobs completed (delivered) since the service started.
    pub completed: u64,
    /// The configured queue bound.
    pub depth: usize,
    /// Pre-resolved event streams held warm by the shared harness.
    pub warm_streams: usize,
    /// On-disk footprint of the shared harness's store (results,
    /// pre-resolved streams, segmented traces); `None` when the
    /// harness runs without a store — or, on the client side, when the
    /// daemon predates the field (absent-tolerant protocol).
    pub store: Option<crate::store::StoreFootprint>,
}

/// One completion listener: where to deliver a job's outcome.
type Waiter = mpsc::Sender<(JobId, JobOutcome)>;

#[derive(Default)]
struct Inner {
    /// Per-client FIFOs, drained round-robin by the workers.
    queues: HashMap<u64, VecDeque<Job>>,
    /// Round-robin rotation of clients with non-empty queues.
    rotation: VecDeque<u64>,
    /// Total entries across all `queues`.
    queued: usize,
    /// Jobs currently executing.
    running: usize,
    /// Every queued-or-running job and the clients awaiting it. A job
    /// present here is never queued a second time: later submits just
    /// add a waiter.
    inflight: HashMap<JobId, Vec<Waiter>>,
}

impl Inner {
    /// Pops the next job round-robin: the head of the least recently
    /// served non-empty client queue.
    fn pop_next(&mut self) -> Option<Job> {
        // A rotation entry whose client queue vanished (or emptied) is
        // a bookkeeping inconsistency; skipping it loses at most one
        // wake-up, while panicking would take the worker thread down
        // and strand every queued job behind it.
        while let Some(client) = self.rotation.pop_front() {
            let Some(queue) = self.queues.get_mut(&client) else {
                continue;
            };
            let Some(job) = queue.pop_front() else {
                self.queues.remove(&client);
                continue;
            };
            if queue.is_empty() {
                self.queues.remove(&client);
            } else {
                self.rotation.push_back(client);
            }
            self.queued = self.queued.saturating_sub(1);
            self.running = self.running.saturating_add(1);
            return Some(job);
        }
        None
    }
}

/// Daemon-lifetime job intake over a shared [`Harness`]. See the
/// module docs for the contract.
pub struct JobService {
    harness: Arc<Harness>,
    cfg: QueueConfig,
    inner: Mutex<Inner>,
    work_ready: Condvar,
    shutting_down: AtomicBool,
    completed: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for JobService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobService")
            .field("cfg", &self.cfg)
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

impl JobService {
    /// Creates a service over `harness`. No workers run yet — call
    /// [`JobService::start`]; the split keeps intake order observable
    /// in tests and lets a server finish binding before work flows.
    pub fn new(harness: Arc<Harness>, cfg: QueueConfig) -> Arc<Self> {
        Arc::new(JobService {
            harness,
            cfg,
            inner: Mutex::new(Inner::default()),
            work_ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        })
    }

    /// The shared harness (for telemetry subscription and summaries).
    pub fn harness(&self) -> &Arc<Harness> {
        &self.harness
    }

    /// Spawns the worker pool. Idempotent-ish by construction: callers
    /// start a service exactly once; a second call would add workers,
    /// which is harmless but pointless.
    pub fn start(self: &Arc<Self>) {
        let n = match self.cfg.workers {
            0 => self.harness.workers(),
            n => n,
        };
        let mut workers = lock(&self.workers);
        for _ in 0..n {
            let svc = Arc::clone(self);
            workers.push(std::thread::spawn(move || svc.worker_loop()));
        }
    }

    /// Submits one job for `client`. On acceptance the outcome is
    /// delivered to `done` (tagged with the job's id) when the job
    /// completes — possibly immediately, if the memo already knows it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bound is hit (the job was
    /// *not* accepted; resubmit after the hint) and
    /// [`SubmitError::ShuttingDown`] during shutdown.
    pub fn submit(&self, client: u64, job: Job, done: Waiter) -> Result<(), SubmitError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        // Warm fast path: answer from the memo without queueing. Failed
        // jobs are memoized too — the deterministic simulator would
        // only fail again.
        if let Some(outcome) = self.harness.cached_outcome(&job) {
            self.completed.fetch_add(1, Ordering::Relaxed);
            let _ = done.send((job.id(), outcome));
            return Ok(());
        }
        let mut inner = lock(&self.inner);
        if let Some(waiters) = inner.inflight.get_mut(&job.id()) {
            // Already queued or running (for this or any other client):
            // ride along on the one execution.
            waiters.push(done);
            return Ok(());
        }
        if inner.queued >= self.cfg.depth {
            return Err(SubmitError::QueueFull {
                retry_after: self.cfg.retry_after,
            });
        }
        inner.inflight.insert(job.id(), vec![done]);
        let queue = inner.queues.entry(client).or_default();
        let newly_active = queue.is_empty();
        queue.push_back(job);
        if newly_active {
            inner.rotation.push_back(client);
        }
        inner.queued += 1;
        drop(inner);
        self.work_ready.notify_one();
        Ok(())
    }

    /// Begins shutdown: new submits are refused, queued jobs still
    /// drain, and the call returns once every worker has exited. Safe
    /// to call more than once.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.work_ready.notify_all();
        let handles = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// A point-in-time snapshot.
    pub fn status(&self) -> ServiceStatus {
        let inner = lock(&self.inner);
        ServiceStatus {
            queued: inner.queued,
            running: inner.running,
            clients: inner.queues.len(),
            completed: self.completed.load(Ordering::Relaxed),
            depth: self.cfg.depth,
            warm_streams: self.harness.warm_streams(),
            store: self.harness.store_footprint(),
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut inner = lock(&self.inner);
                loop {
                    if let Some(job) = inner.pop_next() {
                        break job;
                    }
                    if self.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    inner = self
                        .work_ready
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Execute outside the lock: a single-job batch through the
            // full harness path — memo, disk cache, quarantine
            // self-heal, panic isolation with retry-once, telemetry.
            let outcome = self
                .harness
                .run_outcomes(std::slice::from_ref(&job))
                .pop()
                // A one-job batch yields one outcome; if the harness
                // ever breaks that contract, fail the job for its
                // waiters instead of panicking the worker thread.
                .unwrap_or(JobOutcome::Failed {
                    reason: "harness returned no outcome for the job".into(),
                });
            let waiters = {
                let mut inner = lock(&self.inner);
                inner.running = inner.running.saturating_sub(1);
                inner.inflight.remove(&job.id()).unwrap_or_default()
            };
            for w in &waiters {
                self.completed.fetch_add(1, Ordering::Relaxed);
                let _ = w.send((job.id(), outcome.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
    use ebcp_trace::WorkloadSpec;

    fn job(seed: u64) -> Job {
        Job::new(
            RunSpec {
                workload: WorkloadSpec::database().scaled(1, 16),
                seed,
                warmup_insts: 10_000,
                measure_insts: 10_000,
                sim: SimConfig::scaled_down(16),
            },
            PrefetcherSpec::None,
        )
    }

    fn service(depth: usize, workers: usize) -> Arc<JobService> {
        JobService::new(
            Arc::new(Harness::serial()),
            QueueConfig {
                depth,
                workers,
                retry_after: Duration::from_millis(7),
            },
        )
    }

    #[test]
    fn delivers_outcomes_tagged_with_job_ids() {
        let svc = service(16, 1);
        let (tx, rx) = mpsc::channel();
        let jobs = [job(1), job(2)];
        for j in &jobs {
            svc.submit(0, j.clone(), tx.clone()).unwrap();
        }
        svc.start();
        let mut got = HashMap::new();
        for _ in 0..2 {
            let (id, outcome) = rx.recv().unwrap();
            got.insert(id, outcome);
        }
        for j in &jobs {
            assert!(
                matches!(got[&j.id()], JobOutcome::Ok(_)),
                "job {} must succeed",
                j.label()
            );
        }
        svc.shutdown();
    }

    #[test]
    fn queue_full_rejects_with_retry_hint_without_accepting() {
        // No workers: nothing drains, so the bound is exactly visible.
        let svc = service(2, 0);
        let (tx, _rx) = mpsc::channel();
        svc.submit(0, job(1), tx.clone()).unwrap();
        svc.submit(0, job(2), tx.clone()).unwrap();
        match svc.submit(0, job(3), tx.clone()) {
            Err(SubmitError::QueueFull { retry_after }) => {
                assert_eq!(retry_after, Duration::from_millis(7));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(svc.status().queued, 2, "the refused job was not queued");
        // A duplicate of a queued job still rides along at full depth:
        // dedup does not consume a slot.
        svc.submit(1, job(1), tx).unwrap();
        assert_eq!(svc.status().queued, 2);
    }

    #[test]
    fn flooding_far_past_depth_never_overdraws_or_panics() {
        // A client hammering a full queue: every submit past the bound
        // is refused with the same hint, the queued count stays pinned
        // at the bound (no drift from repeated refusals), and draining
        // afterwards brings the counters back to zero exactly.
        let svc = service(4, 0);
        let (tx, rx) = mpsc::channel();
        for seed in 0..4 {
            svc.submit(0, job(seed), tx.clone()).unwrap();
        }
        for seed in 4..40 {
            match svc.submit(seed % 3, job(seed), tx.clone()) {
                Err(SubmitError::QueueFull { retry_after }) => {
                    assert_eq!(retry_after, Duration::from_millis(7));
                }
                other => panic!("submit {seed} past depth must refuse, got {other:?}"),
            }
            assert_eq!(svc.status().queued, 4, "refusals must not move the count");
        }
        svc.start();
        let delivered: Vec<JobId> = (0..4).map(|_| rx.recv().unwrap().0).collect();
        assert_eq!(delivered.len(), 4);
        svc.shutdown();
        let status = svc.status();
        assert_eq!((status.queued, status.running), (0, 0));
        assert_eq!(status.completed, 4);
    }

    #[test]
    fn round_robin_interleaves_clients() {
        // Client 0 queues three jobs, then client 1 queues one. With a
        // single worker started only after intake, completion order
        // must be 0's first, then 1's — not all of 0's first.
        let svc = service(16, 1);
        let (tx0, rx0) = mpsc::channel();
        let (tx1, rx1) = mpsc::channel();
        let a = [job(10), job(11), job(12)];
        for j in &a {
            svc.submit(0, j.clone(), tx0.clone()).unwrap();
        }
        svc.submit(1, job(20), tx1.clone()).unwrap();
        svc.start();

        // Client 1's single job must complete before client 0's tail.
        let (id1, _) = rx1.recv().unwrap();
        assert_eq!(id1, job(20).id());
        let order: Vec<JobId> = (0..3).map(|_| rx0.recv().unwrap().0).collect();
        assert_eq!(order, vec![a[0].id(), a[1].id(), a[2].id()]);
        // The fairness property: when client 1's job finished, client 0
        // had at most two completions delivered (its third ran after).
        svc.shutdown();
        assert_eq!(svc.status().completed, 4);
    }

    #[test]
    fn inflight_dedup_serves_every_waiter_one_execution() {
        let svc = service(16, 0);
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        // Same job from two clients before any worker runs: one queue
        // slot, two waiters.
        svc.submit(0, job(5), tx_a).unwrap();
        svc.submit(1, job(5), tx_b).unwrap();
        assert_eq!(svc.status().queued, 1);
        svc.start();
        let (_, a) = rx_a.recv().unwrap();
        let (_, b) = rx_b.recv().unwrap();
        assert_eq!(a, b);
        svc.shutdown();
        assert_eq!(
            svc.harness().summary().executed,
            1,
            "one execution serves both clients"
        );
    }

    #[test]
    fn warm_memo_submits_answer_without_queueing() {
        let svc = service(16, 1);
        svc.start();
        let (tx, rx) = mpsc::channel();
        svc.submit(0, job(7), tx.clone()).unwrap();
        let first = rx.recv().unwrap().1;
        // Resubmit: served synchronously from the memo — observable as
        // an already-delivered outcome with zero queue traffic.
        svc.submit(0, job(7), tx).unwrap();
        let second = rx.try_recv().expect("warm submit answers synchronously").1;
        assert_eq!(first, second);
        assert_eq!(svc.status().queued, 0);
        svc.shutdown();
        assert_eq!(svc.harness().summary().executed, 1);
    }

    #[test]
    fn shutdown_refuses_new_work_and_joins_workers() {
        let svc = service(16, 2);
        svc.start();
        svc.shutdown();
        let (tx, _rx) = mpsc::channel();
        assert_eq!(svc.submit(0, job(9), tx), Err(SubmitError::ShuttingDown));
        // Idempotent.
        svc.shutdown();
    }
}
