//! Run telemetry: per-job events, a subscriber bus, a live progress
//! line, and the end-of-run throughput summary.
//!
//! Workers emit [`Event`]s over an `mpsc` channel; the submitting thread
//! drains it while jobs run and republishes every event on the harness's
//! [`EventBus`], where any number of subscribers — the sweep service's
//! per-client forwarders, a dashboard, a log — receive their own copy.
//! Everything renders to **stderr** so stdout stays byte-identical
//! regardless of `--jobs` — the figure tables are diffable artifacts.
//!
//! Rendering goes through a process-wide **single writer** ([`LineSink`]):
//! the self-overwriting progress line carries cursor state (how long the
//! last transient line was), and two harness runs in one process — e.g.
//! two sweeps served concurrently by the daemon — would tear each
//! other's lines if each kept its own state. One shared sink serializes
//! every write and keeps the clear-and-redraw math globally right.

use std::io::Write;
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::lock;

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// Simulated in this process, this call.
    Executed,
    /// Re-used from the in-process memo (duplicate submission).
    Memory,
    /// Loaded from the on-disk result store.
    Disk,
}

impl ResultSource {
    /// Short tag for logs.
    pub const fn tag(self) -> &'static str {
        match self {
            ResultSource::Executed => "run",
            ResultSource::Memory => "memo",
            ResultSource::Disk => "disk",
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A worker picked up a job.
    JobStarted {
        /// Job label (`workload x prefetcher`).
        label: String,
    },
    /// A job completed.
    JobFinished {
        /// Job label.
        label: String,
        /// Wall-clock time of the simulation.
        wall_ms: u64,
        /// Trace records consumed per wall-clock second.
        insts_per_sec: f64,
    },
    /// A job's first attempt panicked; the worker is retrying it once.
    JobRetried {
        /// Job label.
        label: String,
        /// The captured panic message.
        reason: String,
    },
    /// A job failed on its retry too; its cell is recorded as `Failed`
    /// and the sweep continues.
    JobFailed {
        /// Job label.
        label: String,
        /// The captured panic message.
        reason: String,
    },
    /// A corrupt cache entry was quarantined (renamed to `*.corrupt`)
    /// and its job transparently re-runs.
    CacheQuarantined {
        /// The quarantined file's new path.
        path: String,
        /// Why the entry was rejected.
        reason: String,
    },
}

/// Fan-out subscriber bus for telemetry events.
///
/// Subscribers receive a clone of every event published after they
/// subscribed, over their own `mpsc` channel. A dropped receiver is
/// pruned on the next publish, so transient subscribers (a client
/// connection that hung up mid-sweep) cost nothing after they go away.
///
/// This is the seam the sweep service forwards live telemetry through:
/// each client connection subscribes, filters for the labels of its own
/// sweep, and streams the events down its socket.
#[derive(Debug, Default)]
pub struct EventBus {
    subs: Mutex<Vec<mpsc::Sender<Event>>>,
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber; every event published from now on is
    /// delivered to the returned receiver until it is dropped.
    pub fn subscribe(&self) -> mpsc::Receiver<Event> {
        let (tx, rx) = mpsc::channel();
        lock(&self.subs).push(tx);
        rx
    }

    /// Publishes one event to every live subscriber, pruning the dead.
    pub fn publish(&self, ev: &Event) {
        lock(&self.subs).retain(|tx| tx.send(ev.clone()).is_ok());
    }

    /// Live subscriber count (dead subscribers linger until the next
    /// publish prunes them).
    pub fn subscriber_count(&self) -> usize {
        lock(&self.subs).len()
    }
}

/// The single writer behind every progress line in the process.
///
/// Owns the terminal cursor state: the length of the last *transient*
/// (self-overwriting) line, which the next write must clear. Writes are
/// composed into one buffer and flushed with a single `write_all` under
/// the sink's lock, so concurrent harness runs interleave by whole
/// lines, never by fragments — and the clear-padding math stays correct
/// because the state is shared rather than per-run.
pub struct LineSink {
    out: Box<dyn Write + Send>,
    last_len: usize,
}

impl std::fmt::Debug for LineSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineSink")
            .field("last_len", &self.last_len)
            .finish_non_exhaustive()
    }
}

impl LineSink {
    /// A sink writing to `out` with no live line yet.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        LineSink { out, last_len: 0 }
    }

    /// Draws a transient line that the next write will overwrite.
    fn transient(&mut self, line: &str) {
        let pad = self.last_len.saturating_sub(line.len());
        let _ = self
            .out
            .write_all(format!("\r{line}{}", " ".repeat(pad)).as_bytes());
        self.last_len = line.len();
        let _ = self.out.flush();
    }

    /// Prints a persistent line (newline-terminated), clearing any live
    /// transient line first.
    fn persistent(&mut self, line: &str) {
        let pad = self.last_len.saturating_sub(line.len());
        let _ = self
            .out
            .write_all(format!("\r{line}{}\n", " ".repeat(pad)).as_bytes());
        self.last_len = 0;
        let _ = self.out.flush();
    }

    /// Clears the live transient line, if any.
    fn clear(&mut self) {
        if self.last_len > 0 {
            let _ = self
                .out
                .write_all(format!("\r{}\r", " ".repeat(self.last_len)).as_bytes());
            self.last_len = 0;
            let _ = self.out.flush();
        }
    }
}

/// The process-wide stderr sink every default [`Progress`] shares.
pub fn stderr_sink() -> Arc<Mutex<LineSink>> {
    static SINK: OnceLock<Arc<Mutex<LineSink>>> = OnceLock::new();
    Arc::clone(
        SINK.get_or_init(|| Arc::new(Mutex::new(LineSink::new(Box::new(std::io::stderr()))))),
    )
}

/// Renders events as a single self-overwriting progress line.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    done: usize,
    total: usize,
    sink: Arc<Mutex<LineSink>>,
}

impl Progress {
    /// A renderer for `total` pending jobs; silent when `enabled` is
    /// false (tests, `--quiet`). Writes through the process-wide stderr
    /// sink, so concurrent renderers serialize behind one writer.
    pub fn new(enabled: bool, total: usize) -> Self {
        Self::with_sink(enabled, total, stderr_sink())
    }

    /// A renderer writing through an explicit sink (tests, capture).
    pub fn with_sink(enabled: bool, total: usize, sink: Arc<Mutex<LineSink>>) -> Self {
        Progress {
            enabled,
            done: 0,
            total,
            sink,
        }
    }

    /// Handles one event.
    pub fn handle(&mut self, ev: &Event) {
        match ev {
            Event::JobStarted { label } => self.draw(&format!("... {label}")),
            Event::JobFinished {
                label,
                wall_ms,
                insts_per_sec,
            } => {
                self.done += 1;
                self.draw(&format!(
                    "{label} ({:.1}s, {:.1} Minst/s)",
                    *wall_ms as f64 / 1000.0,
                    insts_per_sec / 1e6,
                ));
            }
            Event::JobRetried { label, reason } => {
                self.warn(&format!(
                    "warning: {label} panicked ({reason}); retrying once"
                ));
            }
            Event::JobFailed { label, reason } => {
                self.done += 1;
                self.warn(&format!("warning: {label} FAILED ({reason})"));
            }
            Event::CacheQuarantined { path, reason } => {
                self.warn(&format!(
                    "warning: quarantined corrupt cache entry {path} ({reason}); re-running"
                ));
            }
        }
    }

    /// Prints a persistent warning line without disturbing the live
    /// progress line (which is cleared first and redrawn by the next
    /// event). Silent when the renderer is disabled.
    fn warn(&mut self, msg: &str) {
        if !self.enabled {
            return;
        }
        lock(&self.sink).persistent(msg);
    }

    fn draw(&mut self, tail: &str) {
        if !self.enabled {
            return;
        }
        let line = format!("[{}/{}] {tail}", self.done, self.total);
        lock(&self.sink).transient(&line);
    }

    /// Clears the progress line (call before printing the summary).
    pub fn finish(&mut self) {
        if self.enabled {
            lock(&self.sink).clear();
        }
    }
}

/// Aggregate statistics for everything a [`crate::Harness`] resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunSummary {
    /// Jobs submitted (including duplicates).
    pub submitted: usize,
    /// Distinct jobs after content-hash deduplication.
    pub unique: usize,
    /// Simulations actually executed.
    pub executed: usize,
    /// Results served from the in-process memo.
    pub memo_hits: usize,
    /// Results served from the on-disk store.
    pub disk_hits: usize,
    /// Jobs whose simulation panicked on both attempts.
    pub failed: usize,
    /// Jobs that succeeded only on their second attempt.
    pub retried: usize,
    /// Corrupt cache entries quarantined (renamed to `*.corrupt`).
    pub quarantined: usize,
    /// Trace records consumed by executed simulations.
    pub records_simulated: u64,
    /// Wall-clock time spent inside `Harness::run`.
    pub wall: Duration,
}

impl RunSummary {
    /// Aggregate simulation throughput in trace records per second.
    pub fn insts_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.records_simulated as f64 / s
        } else {
            0.0
        }
    }

    /// One-line human rendering. Failure, retry and quarantine counts
    /// appear only when nonzero, so a healthy run reads as before.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} jobs ({} unique): {} executed, {} memo hits, {} disk hits",
            self.submitted, self.unique, self.executed, self.memo_hits, self.disk_hits,
        );
        if self.failed > 0 {
            s.push_str(&format!(", {} FAILED", self.failed));
        }
        if self.retried > 0 {
            s.push_str(&format!(", {} retried", self.retried));
        }
        if self.quarantined > 0 {
            s.push_str(&format!(", {} quarantined", self.quarantined));
        }
        s.push_str(&format!(
            "; {:.1}s wall, {:.1} Minst/s",
            self.wall.as_secs_f64(),
            self.insts_per_sec() / 1e6,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_counts_and_rate() {
        let s = RunSummary {
            submitted: 10,
            unique: 7,
            executed: 4,
            memo_hits: 3,
            disk_hits: 3,
            records_simulated: 2_000_000,
            wall: Duration::from_secs(2),
            ..RunSummary::default()
        };
        let line = s.render();
        assert!(line.contains("10 jobs (7 unique)"));
        assert!(line.contains("4 executed"));
        assert!((s.insts_per_sec() - 1e6).abs() < 1.0);
        // A healthy run never mentions failures.
        assert!(!line.contains("FAILED"));
        assert!(!line.contains("retried"));
        assert!(!line.contains("quarantined"));
        let sick = RunSummary {
            failed: 2,
            retried: 1,
            quarantined: 3,
            ..s
        };
        let line = sick.render();
        assert!(line.contains("2 FAILED"));
        assert!(line.contains("1 retried"));
        assert!(line.contains("3 quarantined"));
    }

    #[test]
    fn disabled_progress_is_silent_noop() {
        let mut p = Progress::new(false, 3);
        p.handle(&Event::JobStarted { label: "x".into() });
        p.handle(&Event::JobFinished {
            label: "x".into(),
            wall_ms: 5,
            insts_per_sec: 1.0,
        });
        p.finish();
        assert_eq!(p.done, 1);
    }

    #[test]
    fn zero_wall_rate_is_zero() {
        assert_eq!(RunSummary::default().insts_per_sec(), 0.0);
    }

    #[test]
    fn bus_fans_out_to_every_subscriber_and_prunes_the_dead() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.publish(&Event::JobStarted { label: "x".into() });
        for rx in [&a, &b] {
            match rx.try_recv() {
                Ok(Event::JobStarted { label }) => assert_eq!(label, "x"),
                other => panic!("expected JobStarted, got {other:?}"),
            }
        }
        drop(a);
        bus.publish(&Event::JobFinished {
            label: "x".into(),
            wall_ms: 1,
            insts_per_sec: 1.0,
        });
        assert_eq!(bus.subscriber_count(), 1, "dead subscriber must be pruned");
        assert!(matches!(b.try_recv(), Ok(Event::JobFinished { .. })));
    }

    /// A `Write` capturing into a shared buffer, so tests can inspect
    /// what a sink emitted.
    #[derive(Clone, Default)]
    struct Capture(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Two renderers hammering one shared sink from separate threads:
    /// every persistent line must come out intact — the single writer
    /// composes each line into one `write_all`, so fragments of two
    /// lines can never interleave.
    #[test]
    fn concurrent_renderers_never_tear_lines() {
        let cap = Capture::default();
        let sink = Arc::new(Mutex::new(LineSink::new(Box::new(cap.clone()))));
        std::thread::scope(|s| {
            for t in 0..2 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    let mut p = Progress::with_sink(true, 50, sink);
                    for i in 0..50 {
                        p.handle(&Event::JobStarted {
                            label: format!("t{t}-job{i}"),
                        });
                        p.handle(&Event::JobFailed {
                            label: format!("t{t}-job{i}"),
                            reason: "r".into(),
                        });
                    }
                    p.finish();
                });
            }
        });
        let bytes = lock(&cap.0).clone();
        let text = String::from_utf8(bytes).expect("sink output is UTF-8");
        // Every persistent warning line survives whole: for each of the
        // 100 emitted warnings, the exact rendering appears bounded by
        // line-discipline characters, never split by another write.
        for t in 0..2 {
            for i in 0..50 {
                let want = format!("warning: t{t}-job{i} FAILED (r)");
                assert!(text.contains(&want), "torn line: {want} missing");
            }
        }
        // And the cursor state ends cleared (no dangling transient line).
        assert!(text.ends_with('\r') || text.ends_with('\n'));
    }
}
