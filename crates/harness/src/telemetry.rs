//! Run telemetry: per-job events, a live progress line, and the
//! end-of-run throughput summary.
//!
//! Workers emit [`Event`]s over an `mpsc` channel; the submitting thread
//! drains it while jobs run. Everything renders to **stderr** so stdout
//! stays byte-identical regardless of `--jobs` — the figure tables are
//! diffable artifacts.

use std::io::Write as _;
use std::time::Duration;

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// Simulated in this process, this call.
    Executed,
    /// Re-used from the in-process memo (duplicate submission).
    Memory,
    /// Loaded from the on-disk result store.
    Disk,
}

impl ResultSource {
    /// Short tag for logs.
    pub const fn tag(self) -> &'static str {
        match self {
            ResultSource::Executed => "run",
            ResultSource::Memory => "memo",
            ResultSource::Disk => "disk",
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A worker picked up a job.
    JobStarted {
        /// Job label (`workload x prefetcher`).
        label: String,
    },
    /// A job completed.
    JobFinished {
        /// Job label.
        label: String,
        /// Wall-clock time of the simulation.
        wall_ms: u64,
        /// Trace records consumed per wall-clock second.
        insts_per_sec: f64,
    },
    /// A job's first attempt panicked; the worker is retrying it once.
    JobRetried {
        /// Job label.
        label: String,
        /// The captured panic message.
        reason: String,
    },
    /// A job failed on its retry too; its cell is recorded as `Failed`
    /// and the sweep continues.
    JobFailed {
        /// Job label.
        label: String,
        /// The captured panic message.
        reason: String,
    },
    /// A corrupt cache entry was quarantined (renamed to `*.corrupt`)
    /// and its job transparently re-runs.
    CacheQuarantined {
        /// The quarantined file's new path.
        path: String,
        /// Why the entry was rejected.
        reason: String,
    },
}

/// Renders events as a single self-overwriting progress line.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    done: usize,
    total: usize,
    last_len: usize,
}

impl Progress {
    /// A renderer for `total` pending jobs; silent when `enabled` is
    /// false (tests, `--quiet`).
    pub const fn new(enabled: bool, total: usize) -> Self {
        Progress {
            enabled,
            done: 0,
            total,
            last_len: 0,
        }
    }

    /// Handles one event.
    pub fn handle(&mut self, ev: &Event) {
        match ev {
            Event::JobStarted { label } => self.draw(&format!("... {label}")),
            Event::JobFinished {
                label,
                wall_ms,
                insts_per_sec,
            } => {
                self.done += 1;
                self.draw(&format!(
                    "{label} ({:.1}s, {:.1} Minst/s)",
                    *wall_ms as f64 / 1000.0,
                    insts_per_sec / 1e6,
                ));
            }
            Event::JobRetried { label, reason } => {
                self.warn(&format!(
                    "warning: {label} panicked ({reason}); retrying once"
                ));
            }
            Event::JobFailed { label, reason } => {
                self.done += 1;
                self.warn(&format!("warning: {label} FAILED ({reason})"));
            }
            Event::CacheQuarantined { path, reason } => {
                self.warn(&format!(
                    "warning: quarantined corrupt cache entry {path} ({reason}); re-running"
                ));
            }
        }
    }

    /// Prints a persistent warning line without disturbing the live
    /// progress line (which is cleared first and redrawn by the next
    /// event). Silent when the renderer is disabled.
    fn warn(&mut self, msg: &str) {
        if !self.enabled {
            return;
        }
        let pad = self.last_len.saturating_sub(msg.len());
        eprintln!("\r{msg}{}", " ".repeat(pad));
        self.last_len = 0;
        let _ = std::io::stderr().flush();
    }

    fn draw(&mut self, tail: &str) {
        if !self.enabled {
            return;
        }
        let line = format!("[{}/{}] {tail}", self.done, self.total);
        let pad = self.last_len.saturating_sub(line.len());
        eprint!("\r{line}{}", " ".repeat(pad));
        self.last_len = line.len();
        let _ = std::io::stderr().flush();
    }

    /// Clears the progress line (call before printing the summary).
    pub fn finish(&mut self) {
        if self.enabled && self.last_len > 0 {
            eprint!("\r{}\r", " ".repeat(self.last_len));
            self.last_len = 0;
            let _ = std::io::stderr().flush();
        }
    }
}

/// Aggregate statistics for everything a [`crate::Harness`] resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunSummary {
    /// Jobs submitted (including duplicates).
    pub submitted: usize,
    /// Distinct jobs after content-hash deduplication.
    pub unique: usize,
    /// Simulations actually executed.
    pub executed: usize,
    /// Results served from the in-process memo.
    pub memo_hits: usize,
    /// Results served from the on-disk store.
    pub disk_hits: usize,
    /// Jobs whose simulation panicked on both attempts.
    pub failed: usize,
    /// Jobs that succeeded only on their second attempt.
    pub retried: usize,
    /// Corrupt cache entries quarantined (renamed to `*.corrupt`).
    pub quarantined: usize,
    /// Trace records consumed by executed simulations.
    pub records_simulated: u64,
    /// Wall-clock time spent inside `Harness::run`.
    pub wall: Duration,
}

impl RunSummary {
    /// Aggregate simulation throughput in trace records per second.
    pub fn insts_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.records_simulated as f64 / s
        } else {
            0.0
        }
    }

    /// One-line human rendering. Failure, retry and quarantine counts
    /// appear only when nonzero, so a healthy run reads as before.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} jobs ({} unique): {} executed, {} memo hits, {} disk hits",
            self.submitted, self.unique, self.executed, self.memo_hits, self.disk_hits,
        );
        if self.failed > 0 {
            s.push_str(&format!(", {} FAILED", self.failed));
        }
        if self.retried > 0 {
            s.push_str(&format!(", {} retried", self.retried));
        }
        if self.quarantined > 0 {
            s.push_str(&format!(", {} quarantined", self.quarantined));
        }
        s.push_str(&format!(
            "; {:.1}s wall, {:.1} Minst/s",
            self.wall.as_secs_f64(),
            self.insts_per_sec() / 1e6,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_counts_and_rate() {
        let s = RunSummary {
            submitted: 10,
            unique: 7,
            executed: 4,
            memo_hits: 3,
            disk_hits: 3,
            records_simulated: 2_000_000,
            wall: Duration::from_secs(2),
            ..RunSummary::default()
        };
        let line = s.render();
        assert!(line.contains("10 jobs (7 unique)"));
        assert!(line.contains("4 executed"));
        assert!((s.insts_per_sec() - 1e6).abs() < 1.0);
        // A healthy run never mentions failures.
        assert!(!line.contains("FAILED"));
        assert!(!line.contains("retried"));
        assert!(!line.contains("quarantined"));
        let sick = RunSummary {
            failed: 2,
            retried: 1,
            quarantined: 3,
            ..s
        };
        let line = sick.render();
        assert!(line.contains("2 FAILED"));
        assert!(line.contains("1 retried"));
        assert!(line.contains("3 quarantined"));
    }

    #[test]
    fn disabled_progress_is_silent_noop() {
        let mut p = Progress::new(false, 3);
        p.handle(&Event::JobStarted { label: "x".into() });
        p.handle(&Event::JobFinished {
            label: "x".into(),
            wall_ms: 5,
            insts_per_sec: 1.0,
        });
        p.finish();
        assert_eq!(p.done, 1);
    }

    #[test]
    fn zero_wall_rate_is_zero() {
        assert_eq!(RunSummary::default().insts_per_sec(), 0.0);
    }
}
