//! Minimal std-only JSON, used by the on-disk result store and the
//! consolidated `results.json`.
//!
//! The build environment is hermetic (no serde_json), and the harness
//! only needs to round-trip flat counter structs, so a ~200-line codec
//! beats a dependency. Integers are kept exact: `u64` counters are
//! emitted as integer literals and parsed back without a round-trip
//! through `f64` (which would corrupt values above 2^53).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `u64` (kept exact).
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::Num(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::Num(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True for `null` (e.g. the `error` field of a healthy job record).
    pub const fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact serialization.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (2-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Num(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.b.get(self.i) {
            None => Err(self.err("unexpected end")),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']'"));
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // '{'
        let mut fields = Vec::new();
        self.ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(fields));
        }
        loop {
            self.ws();
            if self.b.get(self.i) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.ws();
            fields.push((key, self.value()?));
            self.ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}'"));
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.i += 1; // '"'
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates are not used by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control byte in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.i - 1;
                    let s = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    self.i = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii digits");
        if !text.contains(['.', 'e', 'E', '+']) && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            at: start,
            msg: "bad number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Int(u64::MAX)),
            (
                "b".into(),
                Value::Arr(vec![Value::Num(1.5), Value::Bool(true), Value::Null]),
            ),
            (
                "c\n\"x\"".into(),
                Value::Str("tab\t, quote \", slash \\".into()),
            ),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn u64_counters_stay_exact() {
        for n in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let text = Value::Int(n).to_json();
            assert_eq!(parse(&text).unwrap().as_u64(), Some(n));
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(parse("-3.5").unwrap().as_f64(), Some(-3.5));
        assert_eq!(parse("2.0e3").unwrap().as_f64(), Some(2000.0));
        assert_eq!(parse("-7").unwrap().as_f64(), Some(-7.0));
    }
}
