//! On-disk cache for pre-resolved event streams.
//!
//! A stream depends only on `(workload, seed, record count, L1
//! geometry)` — see [`Job::pre_key`](crate::Job::pre_key) — so across
//! processes the front-end pass runs once per workload and every later
//! sweep deserializes the packed events instead of re-resolving the
//! trace. Files live under `<store_dir>/preres/<2-hex>/<pre_key>.bin`,
//! sharded — like result entries — by the key's first two hex digits;
//! flat pre-sharding files migrate transparently (swept on store open,
//! or read-through on first load).
//!
//! Format v3 ("EBCPPRE3"), all integers little-endian. The event
//! payload is cut into **segments** (each standing for a whole number
//! of trace records) with a per-segment index, so the large tier can
//! replay a stream block at a time — O(segment) peak memory — while
//! the quick tier keeps writing one segment covering the whole stream:
//!
//! ```text
//! magic     8 B   "EBCPPRE3"
//! canon_len u32   length of the canonical key string
//! canon     ...   the exact string `pre_key` hashed (collision guard)
//! payload   per-segment runs of events
//!               { pc u64, dline u64, gap u32, flags u32 }  (24 B each)
//! index     n_segs x { n_events u64, records u64, checksum u64 }
//!               (checksum = FNV-1a over that segment's payload bytes)
//! footer   48 B   records u64 | seg_records u64 | n_segs u64
//!               | index_checksum u64      (FNV-1a over the index)
//!               | head_checksum u64       (FNV-1a over magic..canon)
//!               | footer_checksum u64     (FNV-1a over the 40
//!                                          preceding footer bytes)
//! ```
//!
//! The index and totals live in a footer so [`PreresWriter`] can
//! stream blocks out in one pass without knowing the totals up front
//! (`seg_records` is the writer's nominal segment length in records,
//! recorded for operator display — block replay reads per-segment
//! record counts from the index).
//!
//! Loads are **integrity-checked**. A wrong magic (an older format
//! revision, e.g. the single-blob "EBCPPRE2") or a canonical-string
//! mismatch (hash collision) is *staleness*: a plain miss, overwritten
//! in place by the next save. A checksum mismatch, truncation, or
//! length that disagrees with the index is *corruption*: the file is
//! quarantined (renamed to `*.corrupt`) and the front-end pass
//! transparently re-runs, overwriting the original path (self-heal).
//! Either way a bad entry only costs one front-end pass, never a wrong
//! stream. [`open_stream_checked`] verifies header, index, footer
//! **and every segment checksum** in one sequential O(segment) pass at
//! open, so [`PreresStream::block`] reads during replay skip
//! re-verification.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ebcp_sim::frontend::{PreBlock, PreEvent, PreResolved};
use ebcp_sim::RunSpec;

use crate::job::{fnv1a64, Fnv64, Job, CANON_VERSION};
use crate::store::{quarantine, unique_tmp, CacheRead};

/// v3 ("EBCPPRE3"): segmented payload with per-segment index/checksums.
const MAGIC: &[u8; 8] = b"EBCPPRE3";

/// Bytes per packed event (`pc u64, dline u64, gap u32, flags u32`).
pub const EVENT_BYTES: u64 = 24;

/// Bytes per index entry (`n_events u64, records u64, checksum u64`).
const INDEX_ENTRY_BYTES: u64 = 24;

/// Bytes of the trailing footer.
const FOOTER_BYTES: u64 = 48;

/// The canonical string [`Job::pre_key`] hashes — regenerated here so
/// the stored collision guard and the key can never drift apart.
fn pre_canonical(spec: &RunSpec) -> String {
    format!(
        "{CANON_VERSION}|pre|{:?}|{}|{}|{:?}|{:?}",
        spec.workload,
        spec.seed,
        spec.warmup_insts + spec.measure_insts,
        spec.sim.l1i,
        spec.sim.l1d,
    )
}

/// Cache file path for a job's stream under `store_dir` (sharded by
/// the first two hex digits of the pre-key).
pub fn path_for(store_dir: &Path, job: &Job) -> PathBuf {
    let name = format!("{:016x}.bin", job.pre_key());
    store_dir.join("preres").join(&name[..2]).join(name)
}

/// The legacy flat path streams lived at before sharding.
fn flat_path_for(store_dir: &Path, job: &Job) -> PathBuf {
    store_dir
        .join("preres")
        .join(format!("{:016x}.bin", job.pre_key()))
}

/// One-time sweep moving flat (pre-sharding) stream files — and their
/// `.corrupt` quarantines — into shard directories. Best effort and
/// idempotent; called when a [`crate::ResultStore`] opens.
pub(crate) fn migrate_flat_streams(store_dir: &Path) {
    let Ok(entries) = std::fs::read_dir(store_dir.join("preres")) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let stem = name.strip_suffix(".corrupt").unwrap_or(name);
        let ok = matches!(stem.strip_suffix(".bin"),
            Some(hex) if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()));
        if !ok {
            continue;
        }
        let shard = store_dir.join("preres").join(&name[..2]);
        if std::fs::create_dir_all(&shard).is_ok() {
            let _ = std::fs::rename(&path, shard.join(name));
        }
    }
}

// ---------------------------------------------------------------------------
// Writing

/// Streaming writer for a job's cached stream: push blocks as the
/// front-end pass produces them; nothing but the index is buffered.
/// Written to a pid- and sequence-unique temp file and renamed on
/// [`PreresWriter::finish`] so concurrent writers never interleave and
/// readers never observe a partial file.
pub struct PreresWriter {
    w: BufWriter<File>,
    tmp: PathBuf,
    path: PathBuf,
    head_checksum: u64,
    seg_records: u64,
    records: u64,
    index: Vec<(u64, u64, u64)>,
}

impl PreresWriter {
    /// Starts a stream for `job` under `store_dir`. `seg_records` is
    /// the nominal segment length in records (recorded in the footer;
    /// the tail block may run short).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create(store_dir: &Path, job: &Job, seg_records: u64) -> io::Result<PreresWriter> {
        let path = path_for(store_dir, job);
        let dir = path.parent().expect("path_for always has a parent");
        std::fs::create_dir_all(dir)?;
        let canon = pre_canonical(&job.spec);
        let mut head = Vec::with_capacity(12 + canon.len());
        head.extend_from_slice(MAGIC);
        head.extend_from_slice(&(canon.len() as u32).to_le_bytes());
        head.extend_from_slice(canon.as_bytes());
        let tmp = unique_tmp(&path, "bin");
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(&head)?;
        Ok(PreresWriter {
            w,
            tmp,
            path,
            head_checksum: fnv1a64(&head),
            seg_records,
            records: 0,
            index: Vec::new(),
        })
    }

    /// Appends one segment: `events` covering `records` trace records.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn push_block(&mut self, events: &[PreEvent], records: u64) -> io::Result<()> {
        let mut hash = Fnv64::new();
        let mut buf = [0u8; EVENT_BYTES as usize];
        for ev in events {
            buf[0..8].copy_from_slice(&ev.pc.to_le_bytes());
            buf[8..16].copy_from_slice(&ev.dline.to_le_bytes());
            buf[16..20].copy_from_slice(&ev.gap.to_le_bytes());
            buf[20..24].copy_from_slice(&ev.flags.to_le_bytes());
            hash.update(&buf);
            self.w.write_all(&buf)?;
        }
        self.index
            .push((events.len() as u64, records, hash.finish()));
        self.records += records;
        Ok(())
    }

    /// Writes index + footer and atomically renames into place.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures; the tmp file is removed on a
    /// failed publish.
    pub fn finish(mut self) -> io::Result<()> {
        let mut index_bytes = Vec::with_capacity(self.index.len() * INDEX_ENTRY_BYTES as usize);
        for &(n_events, records, checksum) in &self.index {
            index_bytes.extend_from_slice(&n_events.to_le_bytes());
            index_bytes.extend_from_slice(&records.to_le_bytes());
            index_bytes.extend_from_slice(&checksum.to_le_bytes());
        }
        let mut footer = Vec::with_capacity(FOOTER_BYTES as usize);
        footer.extend_from_slice(&self.records.to_le_bytes());
        footer.extend_from_slice(&self.seg_records.to_le_bytes());
        footer.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        footer.extend_from_slice(&fnv1a64(&index_bytes).to_le_bytes());
        footer.extend_from_slice(&self.head_checksum.to_le_bytes());
        footer.extend_from_slice(&fnv1a64(&footer).to_le_bytes());
        let publish = (|| -> io::Result<()> {
            self.w.write_all(&index_bytes)?;
            self.w.write_all(&footer)?;
            self.w.flush()?;
            std::fs::rename(&self.tmp, &self.path)
        })();
        if publish.is_err() {
            let _ = std::fs::remove_file(&self.tmp);
        }
        publish
    }
}

/// Saves `pre` as `job`'s cached stream — one segment covering the
/// whole stream (the quick-tier layout; the large tier streams blocks
/// through [`PreresWriter`] directly).
///
/// # Errors
///
/// Propagates file-system failures (callers may ignore them: a failed
/// save only loses incrementality).
pub fn save(store_dir: &Path, job: &Job, pre: &PreResolved) -> io::Result<()> {
    let mut w = PreresWriter::create(store_dir, job, pre.records.max(1))?;
    w.push_block(&pre.events, pre.records)?;
    w.finish()
}

// ---------------------------------------------------------------------------
// Reading

#[derive(Clone)]
struct SegEntry {
    n_events: u64,
    records: u64,
    /// Byte offset of this segment's payload from the payload base.
    byte_off: u64,
}

/// A validated, open stream whose blocks are read lazily — the
/// bounded-memory counterpart of a loaded [`PreResolved`].
pub struct PreresStream {
    file: File,
    path: PathBuf,
    payload_base: u64,
    records: u64,
    seg_records: u64,
    index: Vec<SegEntry>,
}

impl PreresStream {
    /// Total trace records the stream stands for.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The writer's nominal segment length in records.
    pub fn seg_records(&self) -> u64 {
        self.seg_records
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.index.len()
    }

    /// Per-segment record counts, in order. A scatter planner needs
    /// these to place the warm-up/measure boundary without reading a
    /// single block — the index already carries them.
    pub fn block_records(&self) -> Vec<u64> {
        self.index.iter().map(|s| s.records).collect()
    }

    /// Reopens the stream on an independent file handle, cloning the
    /// already-validated index instead of re-running the O(stream)
    /// verification pass. Segment-parallel workers each need their own
    /// seek position; paying the full checksum walk once per worker
    /// would rival the replay itself on a large stream.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (e.g. the file was removed
    /// since validation).
    pub fn reopen(&self) -> io::Result<PreresStream> {
        Ok(PreresStream {
            file: File::open(&self.path)?,
            path: self.path.clone(),
            payload_base: self.payload_base,
            records: self.records,
            seg_records: self.seg_records,
            index: self.index.clone(),
        })
    }

    /// Packed-event bytes of the largest segment — the peak resident
    /// block cost of replaying this stream, which the harness memory
    /// budget charges per streamed worker.
    pub fn max_block_bytes(&self) -> u64 {
        self.index
            .iter()
            .map(|s| s.n_events * EVENT_BYTES)
            .max()
            .unwrap_or(0)
    }

    /// Reads segment `k` (validated at open; no re-verification).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn block(&mut self, k: usize) -> io::Result<PreBlock> {
        let seg = &self.index[k];
        let mut bytes = vec![0u8; (seg.n_events * EVENT_BYTES) as usize];
        self.file
            .seek(SeekFrom::Start(self.payload_base + seg.byte_off))?;
        self.file.read_exact(&mut bytes)?;
        let mut events = Vec::with_capacity(seg.n_events as usize);
        for ev in bytes.chunks_exact(EVENT_BYTES as usize) {
            events.push(PreEvent {
                pc: u64::from_le_bytes(ev[0..8].try_into().unwrap()),
                dline: u64::from_le_bytes(ev[8..16].try_into().unwrap()),
                gap: u32::from_le_bytes(ev[16..20].try_into().unwrap()),
                flags: u32::from_le_bytes(ev[20..24].try_into().unwrap()),
            });
        }
        Ok(PreBlock {
            events,
            records: seg.records,
        })
    }

    /// Iterates blocks in order, one resident at a time.
    ///
    /// # Panics
    ///
    /// Panics on a file-system failure mid-iteration (the stream was
    /// fully validated at open; a read failing mid-replay is an
    /// environment fault).
    pub fn blocks(&mut self) -> impl Iterator<Item = PreBlock> + '_ {
        (0..self.index.len()).map(|k| self.block(k).expect("validated stream read mid-replay"))
    }
}

fn read_exact_at(file: &mut File, pos: u64, buf: &mut [u8]) -> io::Result<()> {
    file.seek(SeekFrom::Start(pos))?;
    file.read_exact(buf)
}

fn le_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8-byte window"))
}

/// Opens and fully validates `job`'s cached stream for block-at-a-time
/// replay. Verification (header, index, footer, every segment
/// checksum) runs in one sequential O(segment)-memory pass; corruption
/// quarantines the file, staleness and collisions are plain misses —
/// exactly the [`load_checked`] semantics.
pub fn open_stream_checked(store_dir: &Path, job: &Job) -> CacheRead<PreresStream> {
    let path = path_for(store_dir, job);
    if !path.exists() {
        // Rename-based migration from the flat pre-sharding path.
        let flat = flat_path_for(store_dir, job);
        if flat.is_file() {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let _ = std::fs::rename(&flat, &path);
        }
    }
    let Ok(mut file) = File::open(&path) else {
        return CacheRead::Miss;
    };
    let Ok(file_len) = file.metadata().map(|m| m.len()) else {
        return CacheRead::Miss;
    };

    let min_len = 12 + FOOTER_BYTES;
    if file_len < min_len {
        // Too short to carry a header: ours-but-cut is corruption, a
        // foreign prefix is staleness.
        let mut prefix = vec![0u8; file_len.min(8) as usize];
        if read_exact_at(&mut file, 0, &mut prefix).is_err() {
            return CacheRead::Miss;
        }
        return if !prefix.is_empty() && prefix.starts_with(&MAGIC[..prefix.len().min(8)]) {
            quarantine(path, "truncated header".into())
        } else {
            CacheRead::Miss
        };
    }

    let mut head_fixed = [0u8; 12];
    if read_exact_at(&mut file, 0, &mut head_fixed).is_err() {
        return CacheRead::Miss;
    }
    if &head_fixed[0..8] != MAGIC {
        // An older format revision (e.g. the single-blob "EBCPPRE2")
        // is staleness, not corruption: plain miss, overwritten on save.
        return CacheRead::Miss;
    }
    let canon_len = u64::from(u32::from_le_bytes(
        head_fixed[8..12].try_into().expect("4-byte window"),
    ));
    let payload_base = 12 + canon_len;
    if payload_base + FOOTER_BYTES > file_len {
        return quarantine(
            path,
            format!("canon length {canon_len} overruns the {file_len}-byte file"),
        );
    }

    let mut footer = [0u8; FOOTER_BYTES as usize];
    if read_exact_at(&mut file, file_len - FOOTER_BYTES, &mut footer).is_err() {
        return CacheRead::Miss;
    }
    if fnv1a64(&footer[0..40]) != le_u64(&footer, 40) {
        return quarantine(path, "footer checksum mismatch".into());
    }
    let records = le_u64(&footer, 0);
    let seg_records = le_u64(&footer, 8);
    let n_segs = le_u64(&footer, 16);
    let index_checksum = le_u64(&footer, 24);
    let head_checksum = le_u64(&footer, 32);

    let mut head = vec![0u8; payload_base as usize];
    if read_exact_at(&mut file, 0, &mut head).is_err() {
        return CacheRead::Miss;
    }
    if fnv1a64(&head) != head_checksum {
        return quarantine(path, "header checksum mismatch".into());
    }
    if head[12..] != *pre_canonical(&job.spec).as_bytes() {
        // Collision guard: a valid stream for a *different* spec.
        return CacheRead::Miss;
    }

    if n_segs > file_len / INDEX_ENTRY_BYTES {
        return quarantine(path, format!("implausible segment count {n_segs}"));
    }
    let index_len = n_segs * INDEX_ENTRY_BYTES;
    if payload_base + index_len + FOOTER_BYTES > file_len {
        return quarantine(path, "index overruns the file".into());
    }
    let index_base = file_len - FOOTER_BYTES - index_len;
    let mut index_bytes = vec![0u8; index_len as usize];
    if read_exact_at(&mut file, index_base, &mut index_bytes).is_err() {
        return CacheRead::Miss;
    }
    if fnv1a64(&index_bytes) != index_checksum {
        return quarantine(path, "index checksum mismatch".into());
    }
    let mut index = Vec::with_capacity(n_segs as usize);
    let mut byte_off = 0u64;
    let mut rec_sum = 0u64;
    for entry in index_bytes.chunks_exact(INDEX_ENTRY_BYTES as usize) {
        let n_events = le_u64(entry, 0);
        let records = le_u64(entry, 8);
        index.push(SegEntry {
            n_events,
            records,
            byte_off,
        });
        byte_off += n_events * EVENT_BYTES;
        rec_sum += records;
    }
    if payload_base + byte_off != index_base {
        return quarantine(
            path,
            format!(
                "payload length {} disagrees with header event count {}",
                index_base - payload_base,
                byte_off / EVENT_BYTES
            ),
        );
    }
    if rec_sum != records {
        return quarantine(
            path,
            format!("index sums to {rec_sum} records, footer claims {records}"),
        );
    }

    // Eager integrity pass: verify every segment checksum now with one
    // reusable O(segment) buffer, so block reads during replay can
    // skip re-hashing.
    let mut buf = Vec::new();
    for (k, (seg, entry)) in index
        .iter()
        .zip(index_bytes.chunks_exact(INDEX_ENTRY_BYTES as usize))
        .enumerate()
    {
        buf.resize((seg.n_events * EVENT_BYTES) as usize, 0);
        if read_exact_at(&mut file, payload_base + seg.byte_off, &mut buf).is_err() {
            return CacheRead::Miss;
        }
        if fnv1a64(&buf) != le_u64(entry, 16) {
            return quarantine(path, format!("segment {k} checksum mismatch"));
        }
    }

    CacheRead::Hit(PreresStream {
        file,
        path,
        payload_base,
        records,
        seg_records,
        index,
    })
}

/// Loads a cached stream for `job`, or `None` on any miss, mismatch or
/// quarantined corruption. Convenience wrapper over [`load_checked`].
pub fn load(store_dir: &Path, job: &Job) -> Option<PreResolved> {
    load_checked(store_dir, job).into_hit()
}

/// Integrity-checked load of the whole stream: distinguishes a valid
/// stream, a plain miss (absent file, older magic, hash collision) and
/// a *corrupt* file, which is quarantined (renamed to `*.corrupt`) so
/// the caller can log it and transparently re-resolve.
///
/// Concatenates every segment — materialized-memory semantics for the
/// quick tier; the large tier uses [`open_stream_checked`] +
/// [`PreresStream::blocks`] instead.
pub fn load_checked(store_dir: &Path, job: &Job) -> CacheRead<PreResolved> {
    match open_stream_checked(store_dir, job) {
        CacheRead::Hit(mut stream) => {
            let total: u64 = stream.index.iter().map(|s| s.n_events).sum();
            let mut events = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
            for k in 0..stream.n_segments() {
                match stream.block(k) {
                    Ok(b) => events.extend_from_slice(&b.events),
                    Err(_) => return CacheRead::Miss,
                }
            }
            CacheRead::Hit(PreResolved {
                events,
                records: stream.records,
                l1i: job.spec.sim.l1i,
                l1d: job.spec.sim.l1d,
            })
        }
        CacheRead::Miss => CacheRead::Miss,
        CacheRead::Quarantined { path, reason } => CacheRead::Quarantined { path, reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::{PrefetcherSpec, SimConfig};
    use ebcp_trace::WorkloadSpec;

    fn job() -> Job {
        Job::new(
            RunSpec {
                workload: WorkloadSpec::database().scaled(1, 16),
                seed: 9,
                warmup_insts: 10_000,
                measure_insts: 10_000,
                sim: SimConfig::scaled_down(16),
            },
            PrefetcherSpec::None,
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ebcp-preres-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn expect_quarantined<T>(read: CacheRead<T>, reason_part: &str) {
        match read {
            CacheRead::Quarantined { path, reason } => {
                assert!(reason.contains(reason_part), "{reason}");
                assert!(
                    path.to_string_lossy().ends_with(".corrupt"),
                    "{}",
                    path.display()
                );
                assert!(path.is_file(), "corrupt bytes must be preserved");
            }
            other => panic!(
                "expected quarantine, got miss/hit: {:?}",
                other.into_hit().is_some()
            ),
        }
    }

    #[test]
    fn round_trip_preserves_stream() {
        let dir = tmpdir("rt");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let loaded = load(&dir, &j).expect("cache hit");
        assert_eq!(loaded, pre);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_segment_stream_round_trips_blockwise() {
        let dir = tmpdir("multiseg");
        let j = job();
        let pre = j.spec.pre_resolve();
        let blocks = ebcp_sim::segment_events(&pre, 3_000);
        let mut w = PreresWriter::create(&dir, &j, 3_000).unwrap();
        for b in &blocks {
            w.push_block(&b.events, b.records).unwrap();
        }
        w.finish().unwrap();

        let mut stream = open_stream_checked(&dir, &j).into_hit().expect("hit");
        assert_eq!(stream.records(), pre.records);
        assert_eq!(stream.seg_records(), 3_000);
        assert_eq!(stream.n_segments(), blocks.len());
        assert!(stream.max_block_bytes() > 0);
        let back: Vec<PreBlock> = stream.blocks().collect();
        assert_eq!(back, blocks, "blocks survive the disk round trip");

        // The whole-stream load concatenates the same events.
        let loaded = load(&dir, &j).expect("hit");
        let concat: Vec<PreEvent> = blocks.iter().flat_map(|b| b.events.clone()).collect();
        assert_eq!(loaded.events, concat);
        assert_eq!(loaded.records, pre.records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_miss() {
        let dir = tmpdir("miss");
        assert!(load(&dir, &job()).is_none());
    }

    #[test]
    fn wrong_spec_is_a_miss_despite_forced_key() {
        // Write under one job's path, then corrupt the canonical check
        // by asking for a different spec at the same path: the guard
        // must reject it. (Reaching the same path needs the same
        // pre_key, which a different spec practically never has — so we
        // simulate the collision by renaming the file.)
        let dir = tmpdir("collide");
        let a = job();
        let pre = a.spec.pre_resolve();
        save(&dir, &a, &pre).unwrap();
        let mut b = a.clone();
        b.spec.seed = 10;
        let dest = path_for(&dir, &b);
        std::fs::create_dir_all(dest.parent().unwrap()).unwrap();
        std::fs::rename(path_for(&dir, &a), dest).unwrap();
        assert!(load_checked(&dir, &b).into_hit().is_none());
        assert!(
            path_for(&dir, &b).exists(),
            "collisions are not quarantined"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_magic_is_a_plain_miss_not_corruption() {
        let dir = tmpdir("oldmagic");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[..8].copy_from_slice(b"EBCPPRE2");
        std::fs::write(&p, &bytes).unwrap();
        assert!(load_checked(&dir, &j).into_hit().is_none());
        assert!(p.exists(), "stale formats are overwritten, not quarantined");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_quarantined() {
        let dir = tmpdir("trunc");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let p = path_for(&dir, &j);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 13]).unwrap();
        expect_quarantined(load_checked(&dir, &j), "checksum");
        assert!(!p.exists(), "the corrupt file must be moved away");
        // Self-heal: saving again restores a loadable entry.
        save(&dir, &j, &pre).unwrap();
        assert_eq!(load(&dir, &j), Some(pre));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_payload_is_quarantined() {
        let dir = tmpdir("flip");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        expect_quarantined(load_checked(&dir, &j), "checksum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_segment_bit_flip_is_quarantined_at_stream_open() {
        // The streamed open must catch damage inside an interior
        // segment up front (eager verification), not when the block is
        // eventually read.
        let dir = tmpdir("segflip");
        let j = job();
        let pre = j.spec.pre_resolve();
        let blocks = ebcp_sim::segment_events(&pre, 4_000);
        assert!(blocks.len() >= 3, "need interior segments");
        let mut w = PreresWriter::create(&dir, &j, 4_000).unwrap();
        for b in &blocks {
            w.push_block(&b.events, b.records).unwrap();
        }
        w.finish().unwrap();
        let p = path_for(&dir, &j);
        let mut bytes = std::fs::read(&p).unwrap();
        // Damage payload somewhere past the first block.
        let at = 12 + (blocks[0].events.len() + 2) * EVENT_BYTES as usize;
        bytes[at] ^= 0x08;
        std::fs::write(&p, &bytes).unwrap();
        expect_quarantined(open_stream_checked(&dir, &j), "checksum mismatch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_is_quarantined() {
        let dir = tmpdir("trailing");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(b"garbage appended after the footer");
        std::fs::write(&p, &bytes).unwrap();
        // The appended bytes shift the footer window, so the footer
        // checksum rejects before any length check even runs.
        expect_quarantined(load_checked(&dir, &j), "checksum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_stream_migrates_on_sweep_and_read_through() {
        let dir = tmpdir("shard-migrate");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let sharded = path_for(&dir, &j);
        let flat = flat_path_for(&dir, &j);

        // Read-through: a flat file written by pre-sharding code is
        // found, loaded, and moved into its shard.
        std::fs::rename(&sharded, &flat).unwrap();
        assert_eq!(load(&dir, &j), Some(pre.clone()));
        assert!(!flat.exists() && sharded.is_file());

        // Sweep: the store-open migration pass moves flat files too.
        std::fs::rename(&sharded, &flat).unwrap();
        migrate_flat_streams(&dir);
        assert!(!flat.exists() && sharded.is_file());
        assert_eq!(load(&dir, &j), Some(pre));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_payload_length_disagreement_is_quarantined() {
        // A crafted file with *valid* header/index/footer checksums
        // whose payload length disagrees with the index event counts:
        // only the layout-arithmetic check catches it. Insert a
        // phantom event at the end of the payload and leave everything
        // else untouched — the index checksums still verify (they
        // cover the original payload spans), but the index no longer
        // reaches the footer.
        let dir = tmpdir("exactlen");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let bytes = std::fs::read(&p).unwrap();
        let cut = bytes.len() - (FOOTER_BYTES + INDEX_ENTRY_BYTES) as usize;
        let mut crafted = bytes[..cut].to_vec();
        crafted.extend_from_slice(&[0u8; EVENT_BYTES as usize]); // phantom event
        crafted.extend_from_slice(&bytes[cut..]);
        std::fs::write(&p, &crafted).unwrap();
        expect_quarantined(load_checked(&dir, &j), "disagrees with header event count");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
