//! On-disk cache for pre-resolved event streams.
//!
//! A stream depends only on `(workload, seed, record count, L1
//! geometry)` — see [`Job::pre_key`](crate::Job::pre_key) — so across
//! processes the front-end pass runs once per workload and every later
//! sweep deserializes the packed events instead of re-resolving the
//! trace. Files live under `<store_dir>/preres/<2-hex>/<pre_key>.bin`,
//! sharded — like result entries — by the key's first two hex digits;
//! flat pre-sharding files migrate transparently (swept on store open,
//! or read-through on first load).
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic     8 B   "EBCPPRE2"
//! canon_len u32   length of the canonical key string
//! canon     ...   the exact string `pre_key` hashed (collision guard)
//! records   u64   trace records the stream stands for
//! n_events  u64   packed event count
//! events    n_events x { pc u64, dline u64, gap u32, flags u32 }
//! checksum  u64   FNV-1a over every preceding byte of the file
//! ```
//!
//! Loads are **integrity-checked**. A wrong magic (an older format
//! revision) or a canonical-string mismatch (hash collision) is
//! *staleness*: a plain miss, overwritten in place by the next save.
//! A checksum mismatch, truncation, or length that disagrees with the
//! header's event count is *corruption*: the file is quarantined
//! (renamed to `*.corrupt`) and the front-end pass transparently
//! re-runs, overwriting the original path (self-heal). Either way a bad
//! entry only costs one front-end pass, never a wrong stream.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ebcp_sim::frontend::{PreEvent, PreResolved};
use ebcp_sim::RunSpec;

use crate::job::{fnv1a64, Job, CANON_VERSION};
use crate::store::{quarantine, unique_tmp, CacheRead};

/// v2 ("EBCPPRE2"): appended the FNV-1a checksum footer.
const MAGIC: &[u8; 8] = b"EBCPPRE2";

/// Bytes per packed event (`pc u64, dline u64, gap u32, flags u32`).
const EVENT_BYTES: u64 = 24;

/// The canonical string [`Job::pre_key`] hashes — regenerated here so
/// the stored collision guard and the key can never drift apart.
fn pre_canonical(spec: &RunSpec) -> String {
    format!(
        "{CANON_VERSION}|pre|{:?}|{}|{}|{:?}|{:?}",
        spec.workload,
        spec.seed,
        spec.warmup_insts + spec.measure_insts,
        spec.sim.l1i,
        spec.sim.l1d,
    )
}

/// Cache file path for a job's stream under `store_dir` (sharded by
/// the first two hex digits of the pre-key).
pub fn path_for(store_dir: &Path, job: &Job) -> PathBuf {
    let name = format!("{:016x}.bin", job.pre_key());
    store_dir.join("preres").join(&name[..2]).join(name)
}

/// The legacy flat path streams lived at before sharding.
fn flat_path_for(store_dir: &Path, job: &Job) -> PathBuf {
    store_dir
        .join("preres")
        .join(format!("{:016x}.bin", job.pre_key()))
}

/// One-time sweep moving flat (pre-sharding) stream files — and their
/// `.corrupt` quarantines — into shard directories. Best effort and
/// idempotent; called when a [`crate::ResultStore`] opens.
pub(crate) fn migrate_flat_streams(store_dir: &Path) {
    let Ok(entries) = std::fs::read_dir(store_dir.join("preres")) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let stem = name.strip_suffix(".corrupt").unwrap_or(name);
        let ok = matches!(stem.strip_suffix(".bin"),
            Some(hex) if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()));
        if !ok {
            continue;
        }
        let shard = store_dir.join("preres").join(&name[..2]);
        if std::fs::create_dir_all(&shard).is_ok() {
            let _ = std::fs::rename(&path, shard.join(name));
        }
    }
}

/// Loads a cached stream for `job`, or `None` on any miss, mismatch or
/// quarantined corruption. Convenience wrapper over [`load_checked`].
pub fn load(store_dir: &Path, job: &Job) -> Option<PreResolved> {
    load_checked(store_dir, job).into_hit()
}

/// Integrity-checked load: distinguishes a valid stream, a plain miss
/// (absent file, older magic, hash collision) and a *corrupt* file,
/// which is quarantined (renamed to `*.corrupt`) so the caller can log
/// it and transparently re-resolve.
pub fn load_checked(store_dir: &Path, job: &Job) -> CacheRead<PreResolved> {
    let path = path_for(store_dir, job);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(_) => {
            // Read-through migration from the flat pre-sharding path.
            let flat = flat_path_for(store_dir, job);
            let Ok(b) = std::fs::read(&flat) else {
                return CacheRead::Miss;
            };
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let _ = std::fs::rename(&flat, &path);
            b
        }
    };

    // Smallest well-formed file: magic + canon_len + records + n_events
    // + checksum footer, with an empty canon and zero events.
    if bytes.len() < 8 + 4 + 8 + 8 + 8 {
        return quarantine(path, "truncated header".into());
    }
    if &bytes[..8] != MAGIC {
        // An older format revision (e.g. the pre-checksum "EBCPPRE1")
        // is staleness, not corruption: plain miss, overwritten on save.
        return CacheRead::Miss;
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(footer.try_into().expect("split_at leaves 8 bytes"));
    if fnv1a64(body) != stored {
        return quarantine(path, "checksum mismatch".into());
    }

    let mut r = &body[8..];
    let header_err = || quarantine(path_for(store_dir, job), "malformed header".into());
    let Some(canon_len) = read_u32(&mut r).map(|n| n as usize) else {
        return header_err();
    };
    if r.len() < canon_len {
        return header_err();
    }
    let (canon, rest) = r.split_at(canon_len);
    if canon != pre_canonical(&job.spec).as_bytes() {
        // Collision guard: a valid stream for a *different* spec.
        return CacheRead::Miss;
    }
    r = rest;
    let (Some(records), Some(n_events)) = (read_u64(&mut r), read_u64(&mut r)) else {
        return header_err();
    };
    // The payload must be *exactly* the header-implied length: trailing
    // garbage is as disqualifying as truncation (defense in depth — the
    // checksum already rejects appended bytes, this rejects internally
    // consistent files whose count and payload disagree).
    if n_events.checked_mul(EVENT_BYTES) != Some(r.len() as u64) {
        return quarantine(
            path,
            format!(
                "payload length {} disagrees with header event count {n_events}",
                r.len()
            ),
        );
    }
    let mut events = Vec::with_capacity(usize::try_from(n_events).unwrap_or(0));
    for _ in 0..n_events {
        let (Some(pc), Some(dline), Some(gap), Some(flags)) = (
            read_u64(&mut r),
            read_u64(&mut r),
            read_u32(&mut r),
            read_u32(&mut r),
        ) else {
            return header_err();
        };
        events.push(PreEvent {
            pc,
            dline,
            gap,
            flags,
        });
    }
    CacheRead::Hit(PreResolved {
        events,
        records,
        l1i: job.spec.sim.l1i,
        l1d: job.spec.sim.l1d,
    })
}

/// Saves `pre` as `job`'s cached stream, checksum footer included.
/// Written to a pid- and sequence-unique temp file and renamed so
/// concurrent writers never interleave into one temp file and readers
/// never observe a partial file.
///
/// # Errors
///
/// Propagates file-system failures (callers may ignore them: a failed
/// save only loses incrementality).
pub fn save(store_dir: &Path, job: &Job, pre: &PreResolved) -> io::Result<()> {
    let path = path_for(store_dir, job);
    let dir = path.parent().expect("path_for always has a parent");
    std::fs::create_dir_all(dir)?;

    let canon = pre_canonical(&job.spec);
    let mut buf = Vec::with_capacity(8 + 4 + canon.len() + 16 + pre.events.len() * 24 + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(canon.len() as u32).to_le_bytes());
    buf.extend_from_slice(canon.as_bytes());
    buf.extend_from_slice(&pre.records.to_le_bytes());
    buf.extend_from_slice(&(pre.events.len() as u64).to_le_bytes());
    for ev in &pre.events {
        buf.extend_from_slice(&ev.pc.to_le_bytes());
        buf.extend_from_slice(&ev.dline.to_le_bytes());
        buf.extend_from_slice(&ev.gap.to_le_bytes());
        buf.extend_from_slice(&ev.flags.to_le_bytes());
    }
    let checksum = fnv1a64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let tmp = unique_tmp(&path, "bin");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
    }
    std::fs::rename(&tmp, &path)
}

fn read_u32(r: &mut &[u8]) -> Option<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).ok()?;
    Some(u32::from_le_bytes(b))
}

fn read_u64(r: &mut &[u8]) -> Option<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).ok()?;
    Some(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::{PrefetcherSpec, SimConfig};
    use ebcp_trace::WorkloadSpec;

    fn job() -> Job {
        Job::new(
            RunSpec {
                workload: WorkloadSpec::database().scaled(1, 16),
                seed: 9,
                warmup_insts: 10_000,
                measure_insts: 10_000,
                sim: SimConfig::scaled_down(16),
            },
            PrefetcherSpec::None,
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ebcp-preres-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn expect_quarantined(read: CacheRead<PreResolved>, reason_part: &str) {
        match read {
            CacheRead::Quarantined { path, reason } => {
                assert!(reason.contains(reason_part), "{reason}");
                assert!(
                    path.to_string_lossy().ends_with(".corrupt"),
                    "{}",
                    path.display()
                );
                assert!(path.is_file(), "corrupt bytes must be preserved");
            }
            other => panic!(
                "expected quarantine, got miss/hit: {:?}",
                other.into_hit().is_some()
            ),
        }
    }

    #[test]
    fn round_trip_preserves_stream() {
        let dir = tmpdir("rt");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let loaded = load(&dir, &j).expect("cache hit");
        assert_eq!(loaded, pre);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_miss() {
        let dir = tmpdir("miss");
        assert!(load(&dir, &job()).is_none());
    }

    #[test]
    fn wrong_spec_is_a_miss_despite_forced_key() {
        // Write under one job's path, then corrupt the canonical check
        // by asking for a different spec at the same path: the guard
        // must reject it. (Reaching the same path needs the same
        // pre_key, which a different spec practically never has — so we
        // simulate the collision by renaming the file.)
        let dir = tmpdir("collide");
        let a = job();
        let pre = a.spec.pre_resolve();
        save(&dir, &a, &pre).unwrap();
        let mut b = a.clone();
        b.spec.seed = 10;
        let dest = path_for(&dir, &b);
        std::fs::create_dir_all(dest.parent().unwrap()).unwrap();
        std::fs::rename(path_for(&dir, &a), dest).unwrap();
        assert_eq!(load_checked(&dir, &b), CacheRead::Miss);
        assert!(
            path_for(&dir, &b).exists(),
            "collisions are not quarantined"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_magic_is_a_plain_miss_not_corruption() {
        let dir = tmpdir("oldmagic");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[..8].copy_from_slice(b"EBCPPRE1");
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(load_checked(&dir, &j), CacheRead::Miss);
        assert!(p.exists(), "stale formats are overwritten, not quarantined");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_quarantined() {
        let dir = tmpdir("trunc");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let p = path_for(&dir, &j);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 13]).unwrap();
        expect_quarantined(load_checked(&dir, &j), "checksum");
        assert!(!p.exists(), "the corrupt file must be moved away");
        // Self-heal: saving again restores a loadable entry.
        save(&dir, &j, &pre).unwrap();
        assert_eq!(load(&dir, &j), Some(pre));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_payload_is_quarantined() {
        let dir = tmpdir("flip");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        expect_quarantined(load_checked(&dir, &j), "checksum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_is_quarantined() {
        let dir = tmpdir("trailing");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(b"garbage appended after the footer");
        std::fs::write(&p, &bytes).unwrap();
        // The appended bytes shift the footer window, so the checksum
        // rejects before the length check even runs.
        expect_quarantined(load_checked(&dir, &j), "checksum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_stream_migrates_on_sweep_and_read_through() {
        let dir = tmpdir("shard-migrate");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let sharded = path_for(&dir, &j);
        let flat = flat_path_for(&dir, &j);

        // Read-through: a flat file written by pre-sharding code is
        // found, loaded, and moved into its shard.
        std::fs::rename(&sharded, &flat).unwrap();
        assert_eq!(load(&dir, &j), Some(pre.clone()));
        assert!(!flat.exists() && sharded.is_file());

        // Sweep: the store-open migration pass moves flat files too.
        std::fs::rename(&sharded, &flat).unwrap();
        migrate_flat_streams(&dir);
        assert!(!flat.exists() && sharded.is_file());
        assert_eq!(load(&dir, &j), Some(pre));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_payload_length_disagreement_is_quarantined() {
        // A crafted file with a *valid* checksum whose event count
        // disagrees with its payload length: only the exact-length
        // check catches it.
        let dir = tmpdir("exactlen");
        let j = job();
        save(&dir, &j, &j.spec.pre_resolve()).unwrap();
        let p = path_for(&dir, &j);
        let bytes = std::fs::read(&p).unwrap();
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body.extend_from_slice(&[0u8; 24]); // one extra phantom event
        let footer = fnv1a64(&body).to_le_bytes();
        body.extend_from_slice(&footer);
        std::fs::write(&p, &body).unwrap();
        expect_quarantined(load_checked(&dir, &j), "disagrees with header event count");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
