//! On-disk cache for pre-resolved event streams.
//!
//! A stream depends only on `(workload, seed, record count, L1
//! geometry)` — see [`Job::pre_key`](crate::Job::pre_key) — so across
//! processes the front-end pass runs once per workload and every later
//! sweep deserializes the packed events instead of re-resolving the
//! trace. Files live under `<store_dir>/preres/<pre_key>.bin`.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic     8 B   "EBCPPRE1"
//! canon_len u32   length of the canonical key string
//! canon     ...   the exact string `pre_key` hashed (collision guard)
//! records   u64   trace records the stream stands for
//! n_events  u64   packed event count
//! events    n_events x { pc u64, dline u64, gap u32, flags u32 }
//! ```
//!
//! Loads verify magic and canonical string; any mismatch (schema bump,
//! hash collision, truncation) is treated as a miss, never an error —
//! losing a cache entry only costs one front-end pass.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ebcp_sim::frontend::{PreEvent, PreResolved};
use ebcp_sim::RunSpec;

use crate::job::{Job, CANON_VERSION};

const MAGIC: &[u8; 8] = b"EBCPPRE1";

/// The canonical string [`Job::pre_key`] hashes — regenerated here so
/// the stored collision guard and the key can never drift apart.
fn pre_canonical(spec: &RunSpec) -> String {
    format!(
        "{CANON_VERSION}|pre|{:?}|{}|{}|{:?}|{:?}",
        spec.workload,
        spec.seed,
        spec.warmup_insts + spec.measure_insts,
        spec.sim.l1i,
        spec.sim.l1d,
    )
}

/// Cache file path for a job's stream under `store_dir`.
pub fn path_for(store_dir: &Path, job: &Job) -> PathBuf {
    store_dir
        .join("preres")
        .join(format!("{:016x}.bin", job.pre_key()))
}

/// Loads a cached stream for `job`, or `None` on any miss or mismatch.
pub fn load(store_dir: &Path, job: &Job) -> Option<PreResolved> {
    let bytes = std::fs::read(path_for(store_dir, job)).ok()?;
    let mut r = bytes.as_slice();

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).ok()?;
    if &magic != MAGIC {
        return None;
    }
    let canon_len = read_u32(&mut r)? as usize;
    if r.len() < canon_len {
        return None;
    }
    let (canon, rest) = r.split_at(canon_len);
    if canon != pre_canonical(&job.spec).as_bytes() {
        return None;
    }
    r = rest;
    let records = read_u64(&mut r)?;
    let n_events = read_u64(&mut r)?;
    // 24 bytes per event; reject truncated files.
    if (r.len() as u64) < n_events.checked_mul(24)? {
        return None;
    }
    let mut events = Vec::with_capacity(usize::try_from(n_events).ok()?);
    for _ in 0..n_events {
        let pc = read_u64(&mut r)?;
        let dline = read_u64(&mut r)?;
        let gap = read_u32(&mut r)?;
        let flags = read_u32(&mut r)?;
        events.push(PreEvent {
            pc,
            dline,
            gap,
            flags,
        });
    }
    Some(PreResolved {
        events,
        records,
        l1i: job.spec.sim.l1i,
        l1d: job.spec.sim.l1d,
    })
}

/// Saves `pre` as `job`'s cached stream. Written to a temp file and
/// renamed so concurrent readers never observe a partial file.
///
/// # Errors
///
/// Propagates file-system failures (callers may ignore them: a failed
/// save only loses incrementality).
pub fn save(store_dir: &Path, job: &Job, pre: &PreResolved) -> io::Result<()> {
    let path = path_for(store_dir, job);
    let dir = path.parent().expect("path_for always has a parent");
    std::fs::create_dir_all(dir)?;

    let canon = pre_canonical(&job.spec);
    let mut buf =
        Vec::with_capacity(8 + 4 + canon.len() + 16 + pre.events.len() * 24);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(canon.len() as u32).to_le_bytes());
    buf.extend_from_slice(canon.as_bytes());
    buf.extend_from_slice(&pre.records.to_le_bytes());
    buf.extend_from_slice(&(pre.events.len() as u64).to_le_bytes());
    for ev in &pre.events {
        buf.extend_from_slice(&ev.pc.to_le_bytes());
        buf.extend_from_slice(&ev.dline.to_le_bytes());
        buf.extend_from_slice(&ev.gap.to_le_bytes());
        buf.extend_from_slice(&ev.flags.to_le_bytes());
    }

    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
    }
    std::fs::rename(&tmp, &path)
}

fn read_u32(r: &mut &[u8]) -> Option<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).ok()?;
    Some(u32::from_le_bytes(b))
}

fn read_u64(r: &mut &[u8]) -> Option<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).ok()?;
    Some(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::{PrefetcherSpec, SimConfig};
    use ebcp_trace::WorkloadSpec;

    fn job() -> Job {
        Job::new(
            RunSpec {
                workload: WorkloadSpec::database().scaled(1, 16),
                seed: 9,
                warmup_insts: 10_000,
                measure_insts: 10_000,
                sim: SimConfig::scaled_down(16),
            },
            PrefetcherSpec::None,
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ebcp-preres-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trip_preserves_stream() {
        let dir = tmpdir("rt");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let loaded = load(&dir, &j).expect("cache hit");
        assert_eq!(loaded, pre);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_miss() {
        let dir = tmpdir("miss");
        assert!(load(&dir, &job()).is_none());
    }

    #[test]
    fn wrong_spec_is_a_miss_despite_forced_key() {
        // Write under one job's path, then corrupt the canonical check
        // by asking for a different spec at the same path: the guard
        // must reject it. (Reaching the same path needs the same
        // pre_key, which a different spec practically never has — so we
        // simulate the collision by renaming the file.)
        let dir = tmpdir("collide");
        let a = job();
        let pre = a.spec.pre_resolve();
        save(&dir, &a, &pre).unwrap();
        let mut b = a.clone();
        b.spec.seed = 10;
        std::fs::rename(path_for(&dir, &a), path_for(&dir, &b)).unwrap();
        assert!(load(&dir, &b).is_none(), "canonical guard must reject");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_a_miss() {
        let dir = tmpdir("trunc");
        let j = job();
        let pre = j.spec.pre_resolve();
        save(&dir, &j, &pre).unwrap();
        let p = path_for(&dir, &j);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 13]).unwrap();
        assert!(load(&dir, &j).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
