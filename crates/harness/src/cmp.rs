//! First-class CMP cells: content-addressed multi-core jobs.
//!
//! A [`CmpJob`] pairs a [`CmpSpec`] (one workload × seed per core over
//! one shared machine) with a [`PrefetcherSpec`], mirroring the
//! single-core [`Job`]. CMP cells get the same treatment single-core
//! cells do: dedup + memoization by content hash, checksummed on-disk
//! result entries (quarantine + self-heal on corruption), per-core
//! pre-resolved streams shared through the harness's warm `pres` map
//! *and* the `preres/` disk cache — each core's stream is exactly the
//! stream of its single-core [`CmpJob::core_job`], so CMP and
//! single-core cells are cache currency for each other — and
//! panic-isolated execution with the retry-once policy
//! ([`crate::Harness::run_cmp_outcomes`]).

use std::fs;
use std::io;
use std::path::PathBuf;

use ebcp_sim::{CmpResult, CmpSpec, PrefetcherSpec, SimResult};

use crate::job::{fnv1a64, Job, JobId};
use crate::json::{self, Value};
use crate::store::{
    quarantine, result_from_json, result_to_json, unique_tmp, CacheRead, ResultStore,
};

/// Schema tag mixed into every CMP canonical string; versioned
/// independently of the single-core [`crate::job::CANON_VERSION`]
/// because the two result shapes evolve independently.
///
/// v1: the discrete-event CMP engine (metric-identical to the stepping
/// engine it replaced, so no timing discontinuity to fence off).
pub const CMP_CANON_VERSION: &str = "ebcp-cmpjob-v1";

/// On-disk schema version for CMP store entries.
const CMP_SCHEMA: u64 = 1;

/// One unit of CMP work: run `pf` over the multi-core cell `spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpJob {
    /// Per-core workloads/seeds and the shared machine.
    pub spec: CmpSpec,
    /// Prefetcher to simulate (one instance shared by all cores).
    pub pf: PrefetcherSpec,
}

impl CmpJob {
    /// Creates a CMP job.
    pub fn new(spec: CmpSpec, pf: PrefetcherSpec) -> Self {
        CmpJob { spec, pf }
    }

    /// The canonical string the job's identity hashes over (see
    /// [`Job::canonical`] for why `Debug` is a sound canonical form).
    #[must_use]
    pub fn canonical(&self) -> String {
        format!("{CMP_CANON_VERSION}|{:?}|{:?}", self.spec, self.pf)
    }

    /// The job's content hash. Lives in the same [`JobId`] namespace as
    /// single-core jobs (distinct canonical prefixes keep the collision
    /// guard meaningful) but in its own memo and store shard files.
    #[must_use]
    pub fn id(&self) -> JobId {
        JobId(fnv1a64(self.canonical().as_bytes()))
    }

    /// The single-core job whose pre-resolved stream core `k` consumes.
    /// This is the bridge into the existing stream infrastructure: the
    /// in-memory `pres` map and the `preres/` disk cache are keyed by
    /// [`Job::pre_key`], so a CMP cell and a single-core sweep over the
    /// same (workload, seed, length, L1) share one stream build.
    #[must_use]
    pub fn core_job(&self, k: usize) -> Job {
        Job::new(self.spec.core_run_spec(k), self.pf.clone())
    }

    /// Number of cores in the cell.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.spec.cores()
    }

    /// Total trace records the job will consume, across all cores.
    #[must_use]
    pub fn records(&self) -> u64 {
        (self.spec.warmup_insts + self.spec.measure_insts) * self.cores() as u64
    }

    /// Short human label, e.g. `database@4c x ebcp`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}@{}c x {}", self.spec.name, self.cores(), self.pf.name())
    }
}

/// How one CMP job ended — the multi-core analogue of
/// [`crate::JobOutcome`], with the same retry semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum CmpOutcome {
    /// Simulated (or served from a cache) successfully.
    Ok(CmpResult),
    /// First attempt panicked; the retry succeeded.
    Retried(CmpResult),
    /// Both attempts panicked; memoized as failed, nothing cached.
    Failed {
        /// The second attempt's panic message.
        reason: String,
    },
}

impl CmpOutcome {
    /// The result, unless the job failed.
    pub const fn result(&self) -> Option<&CmpResult> {
        match self {
            CmpOutcome::Ok(r) | CmpOutcome::Retried(r) => Some(r),
            CmpOutcome::Failed { .. } => None,
        }
    }

    /// The failure reason, if the job failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            CmpOutcome::Failed { reason } => Some(reason),
            _ => None,
        }
    }

    /// True for [`CmpOutcome::Failed`].
    pub const fn is_failed(&self) -> bool {
        matches!(self, CmpOutcome::Failed { .. })
    }
}

/// Encodes a [`CmpResult`] as JSON: per-core results plus the
/// aggregate, each in the standard [`result_to_json`] shape.
pub fn cmp_result_to_json(r: &CmpResult) -> Value {
    Value::Obj(vec![
        (
            "cores".into(),
            Value::Arr(r.cores.iter().map(result_to_json).collect()),
        ),
        ("aggregate".into(), result_to_json(&r.aggregate)),
    ])
}

/// Decodes a [`CmpResult`]; `None` on any missing or mistyped field.
pub fn cmp_result_from_json(v: &Value) -> Option<CmpResult> {
    let cores = v
        .get("cores")?
        .as_arr()?
        .iter()
        .map(result_from_json)
        .collect::<Option<Vec<SimResult>>>()?;
    Some(CmpResult {
        cores,
        aggregate: result_from_json(v.get("aggregate")?)?,
    })
}

impl ResultStore {
    /// The on-disk path of a CMP job's entry: same 2-hex sharding as
    /// single-core entries, `.cmp.json` suffix so the two result shapes
    /// never collide on a file name.
    pub fn cmp_entry_path(&self, job: &CmpJob) -> PathBuf {
        let name = format!("{}.cmp.json", job.id());
        self.dir().join(&name[..2]).join(name)
    }

    /// Integrity-checked load of a CMP entry — same contract as
    /// [`ResultStore::load_checked`]: valid hit, plain miss (absent /
    /// stale schema / hash collision), or quarantined corruption.
    pub fn load_checked_cmp(&self, job: &CmpJob) -> CacheRead<CmpResult> {
        let path = self.cmp_entry_path(job);
        let Ok(text) = fs::read_to_string(&path) else {
            return CacheRead::Miss;
        };
        let Ok(v) = json::parse(&text) else {
            return quarantine(path, "unparsable JSON".into());
        };
        let Some(schema) = v.get("schema").and_then(Value::as_u64) else {
            return quarantine(path, "missing schema field".into());
        };
        if schema != CMP_SCHEMA {
            return CacheRead::Miss;
        }
        match v.get("job").and_then(Value::as_str) {
            None => return quarantine(path, "missing job field".into()),
            Some(canon) if canon != job.canonical() => return CacheRead::Miss,
            Some(_) => {}
        }
        let Some(result) = v.get("result") else {
            return quarantine(path, "missing result field".into());
        };
        match v.get("checksum").and_then(Value::as_str) {
            Some(stored) if stored == cmp_checksum(result) => {}
            Some(_) => return quarantine(path, "checksum mismatch".into()),
            None => return quarantine(path, "missing checksum field".into()),
        }
        match cmp_result_from_json(result) {
            Some(r) => CacheRead::Hit(r),
            None => quarantine(path, "undecodable result".into()),
        }
    }

    /// Persists a CMP result (atomic write-temp-rename, pid- and
    /// sequence-unique temp names — see [`ResultStore::save`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers may treat them as non-fatal.
    pub fn save_cmp(&self, job: &CmpJob, result: &CmpResult) -> io::Result<()> {
        let result_json = cmp_result_to_json(result);
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Int(CMP_SCHEMA)),
            ("id".into(), Value::Str(job.id().to_string())),
            ("job".into(), Value::Str(job.canonical())),
            ("checksum".into(), Value::Str(cmp_checksum(&result_json))),
            ("result".into(), result_json),
        ]);
        let path = self.cmp_entry_path(job);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = unique_tmp(&path, "json");
        fs::write(&tmp, doc.to_json_pretty())?;
        fs::rename(&tmp, &path)
    }
}

/// FNV-1a over the compact result encoding (whitespace-proof).
fn cmp_checksum(result: &Value) -> String {
    format!("{:016x}", fnv1a64(result.to_json().as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_sim::SimConfig;
    use ebcp_trace::WorkloadSpec;

    fn sample_spec(cores: usize) -> CmpSpec {
        CmpSpec::homogeneous(
            WorkloadSpec::database().scaled(1, 32),
            cores,
            5_000,
            5_000,
            SimConfig::scaled_down(16),
        )
    }

    fn sample_result(cores: usize) -> CmpResult {
        CmpResult {
            cores: (0..cores)
                .map(|k| SimResult {
                    prefetcher: "ebcp".into(),
                    workload: format!("database#core{k}"),
                    insts: 5_000,
                    cycles: 9_000 + k as u64,
                    ..SimResult::default()
                })
                .collect(),
            aggregate: SimResult {
                prefetcher: "ebcp".into(),
                workload: "database".into(),
                insts: 5_000 * cores as u64,
                pf_issued: u64::MAX, // exact u64 round-trip
                ..SimResult::default()
            },
        }
    }

    #[test]
    fn cmp_codec_round_trips() {
        let r = sample_result(4);
        let text = cmp_result_to_json(&r).to_json_pretty();
        let back = cmp_result_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn identity_covers_cores_and_prefetcher() {
        let a = CmpJob::new(sample_spec(2), PrefetcherSpec::None);
        assert_eq!(
            a.id(),
            CmpJob::new(sample_spec(2), PrefetcherSpec::None).id()
        );
        let b = CmpJob::new(sample_spec(4), PrefetcherSpec::None);
        assert_ne!(a.id(), b.id(), "core count is identity");
        let c = CmpJob::new(
            sample_spec(2),
            PrefetcherSpec::Ebcp(ebcp_core::EbcpConfig::tuned()),
        );
        assert_ne!(a.id(), c.id(), "prefetcher is identity");
        assert_eq!(a.label(), "database x none".replace(" x", "@2c x"));
    }

    #[test]
    fn core_job_shares_stream_identity_with_single_core_cells() {
        // The pre-key of core k's bridge job equals the pre-key of a
        // plain single-core job over the same (workload, seed, length,
        // L1): CMP cells reuse single-core streams and vice versa.
        let cmp = CmpJob::new(sample_spec(2), PrefetcherSpec::None);
        let single = Job::new(cmp.spec.core_run_spec(1), PrefetcherSpec::None);
        assert_eq!(cmp.core_job(1).pre_key(), single.pre_key());
        // Different cores read different seeds, hence different streams.
        assert_ne!(cmp.core_job(0).pre_key(), cmp.core_job(1).pre_key());
    }

    #[test]
    fn cmp_store_save_then_load() {
        let dir = std::env::temp_dir().join(format!("ebcp-cmpstore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let job = CmpJob::new(sample_spec(2), PrefetcherSpec::None);
        assert_eq!(store.load_checked_cmp(&job), CacheRead::Miss);
        let r = sample_result(2);
        store.save_cmp(&job, &r).unwrap();
        assert_eq!(store.load_checked_cmp(&job), CacheRead::Hit(r));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cmp_entry_is_quarantined_and_heals() {
        let dir = std::env::temp_dir().join(format!("ebcp-cmpstore-q-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let job = CmpJob::new(sample_spec(2), PrefetcherSpec::None);
        store.save_cmp(&job, &sample_result(2)).unwrap();
        let path = store.cmp_entry_path(&job);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes
            .windows(5)
            .position(|w| w == b"9000,")
            .expect("per-core cycle count must appear");
        bytes[at] = b'7';
        fs::write(&path, &bytes).unwrap();
        match store.load_checked_cmp(&job) {
            CacheRead::Quarantined { path: q, reason } => {
                assert!(reason.contains("checksum"), "{reason}");
                assert!(q.to_string_lossy().ends_with(".corrupt"));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Self-heal: a fresh save overwrites and reads back.
        store.save_cmp(&job, &sample_result(2)).unwrap();
        assert_eq!(
            store.load_checked_cmp(&job),
            CacheRead::Hit(sample_result(2))
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_cmp_schema_is_a_plain_miss() {
        let dir = std::env::temp_dir().join(format!("ebcp-cmpstore-s-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let job = CmpJob::new(sample_spec(2), PrefetcherSpec::None);
        store.save_cmp(&job, &sample_result(2)).unwrap();
        let path = store.cmp_entry_path(&job);
        let text = fs::read_to_string(&path)
            .unwrap()
            .replace("\"schema\": 1", "\"schema\": 0");
        fs::write(&path, text).unwrap();
        assert_eq!(store.load_checked_cmp(&job), CacheRead::Miss);
        assert!(path.exists(), "stale entries are not quarantined");
        let _ = fs::remove_dir_all(&dir);
    }
}
