//! The **epoch-based correlation prefetcher** (EBCP) — the paper's
//! contribution — together with the epoch-model machinery it is built on.
//!
//! # The idea
//!
//! With off-chip latencies of several hundred cycles, commercial-workload
//! execution decomposes into *epochs*: a stretch of on-chip computation,
//! then a stall on a group of overlapped off-chip misses (§2.1). Two
//! consequences drive the design:
//!
//! 1. **Eliminating an epoch removes its entire ~500-cycle penalty;
//!    eliminating an already-overlapped miss removes nothing.** So the
//!    correlation table maps the *trigger* (first miss) of epoch *i* to
//!    **all** the misses of epochs *i+2* and *i+3* — not to the next few
//!    individual misses like classic correlation prefetchers (§3.1).
//! 2. **A main-memory table read launched at epoch *i*'s trigger is back
//!    before epochs *i+2*/*i+3* begin** — its latency hides under epoch
//!    *i*'s own stall, and the prefetches issue during epoch *i+1*
//!    (§3.2). That is why the table can live in main memory, need zero
//!    on-chip storage, and still be timely — and why the entry skips the
//!    triggering epoch's remaining misses *and* epoch *i+1*'s misses.
//!
//! # Components
//!
//! * [`EpochTracker`] — counts epochs by 0→1 transitions of outstanding
//!   off-chip misses, and the epoch-model CPI identity (§2.1).
//! * [`Emab`] — the 4-entry Epoch Miss Address Buffer (§3.4.2): the only
//!   on-chip learning state.
//! * [`CorrelationTable`] — the direct-mapped, main-memory-resident table
//!   with per-entry LRU prefetch-address slots and the low-byte address
//!   compression that packs 8 addresses into one 64 B memory transfer.
//! * [`EbcpPrefetcher`] — the prefetcher itself, implementing the
//!   event-driven [`Prefetcher`](ebcp_prefetch::Prefetcher) trait. The
//!   [`EbcpVariant::Minus`] ablation reproduces the paper's *EBCP minus*
//!   (stores the next epoch's addresses too, wasting slots on untimely
//!   prefetches — Figure 9).
//!
//! # Examples
//!
//! ```
//! use ebcp_core::{EbcpConfig, EbcpPrefetcher};
//! use ebcp_prefetch::Prefetcher;
//!
//! let p = EbcpPrefetcher::new(EbcpConfig::tuned());
//! assert_eq!(p.name(), "ebcp");
//! ```

pub mod emab;
pub mod epoch;
pub mod prefetcher;
pub mod table;

pub use emab::{Emab, EpochRecord};
pub use epoch::{epoch_model_cpi, EpochStats, EpochTracker};
pub use prefetcher::{EbcpConfig, EbcpPrefetcher, EbcpStats, EbcpVariant};
pub use table::{compress_line, decompress_line, CorrEntry, CorrelationTable};
