//! The epoch-based correlation prefetcher (§3.4).
//!
//! Event flow, following the paper exactly:
//!
//! * **Learning** (§3.4.2): instruction and load miss addresses are
//!   recorded in the current EMAB entry. When the epoch count increments
//!   (a trigger miss arrives), the EMAB rotates; the retiring epoch's
//!   trigger keys a correlation-table entry and the misses of the two
//!   latest epochs become its prefetch addresses (older epoch
//!   prioritized). The update is a main-memory read-modify-write: one
//!   low-priority table read, then one table write. The contents are
//!   applied when the read completes — if the bus is saturated and the
//!   read is dropped, that learning opportunity is lost, exactly as the
//!   hardware would lose it.
//! * **Prediction** (§3.4.3): the first miss *or prefetch-buffer hit* of
//!   a new epoch issues a low-priority table read keyed by its address.
//!   When the read completes (≈ one memory latency later, hidden under
//!   the triggering epoch's stall), up to `degree` prefetches issue,
//!   each carrying the table-entry key as its origin token. Subsequent
//!   misses in the same epoch do not look up the table.
//! * **Feedback**: a prefetch-buffer hit promotes the hitting address in
//!   its originating entry (one table write).
//!
//! [`EbcpVariant::Minus`] reproduces the paper's *EBCP minus* ablation:
//! the table also stores the next epoch's addresses (+1/+2 pairing
//! instead of +2/+3), wasting slots on prefetches that cannot be timely.

use ebcp_prefetch::{Action, MissInfo, PrefetchHitInfo, Prefetcher};
use ebcp_types::{Cycle, FxHashMap, LineAddr};
use serde::{Deserialize, Serialize};

use crate::emab::{Emab, LearnInput};
use crate::table::{CorrTableStats, CorrelationTable};

/// Which pairing the EMAB uses when learning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EbcpVariant {
    /// The real EBCP: trigger of epoch *i* → misses of epochs *i+2*,
    /// *i+3* (skip the rest of *i* and all of *i+1*; neither can be
    /// prefetched timely once the table round-trip is paid).
    Standard,
    /// The Figure 9 ablation: trigger of epoch *i* → misses of epochs
    /// *i+1*, *i+2*.
    Minus,
}

/// EBCP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EbcpConfig {
    /// Correlation-table entries (direct-mapped, in main memory).
    pub table_entries: u64,
    /// Prefetch-address slots per table entry.
    pub slots_per_entry: usize,
    /// Maximum prefetches issued per table match (the *prefetch degree*).
    pub degree: usize,
    /// Learning pairing variant.
    pub variant: EbcpVariant,
    /// EMAB epoch entries (the paper uses 4).
    pub emab_epochs: usize,
    /// Maximum miss addresses recorded per EMAB epoch entry.
    pub emab_addrs_per_epoch: usize,
    /// Minimum cycles between prediction lookups chained off
    /// prefetch-buffer hits. When an entire epoch is averted there is no
    /// 0→1 outstanding transition to delimit it, so buffer hits stand in
    /// for triggers; the refractory interval keeps one lookup per
    /// would-be epoch rather than one per hit.
    pub trigger_refractory: Cycle,
    /// §3.4.3 LRU feedback: promote an address within its entry when its
    /// prefetch is used. Disable for the ablation.
    pub promote_on_hit: bool,
    /// §3.4.3 buffer-hit triggering: a prefetch-buffer hit that would
    /// have been an epoch trigger keys a lookup (and rotates the EMAB),
    /// keeping the chain alive through fully-averted epochs. Disable for
    /// the ablation.
    pub chain_on_buffer_hit: bool,
}

impl EbcpConfig {
    /// The *tuned* configuration of §5.2: 1M-entry table, degree 8,
    /// 8 slots (one 64 B transfer per access).
    pub const fn tuned() -> Self {
        EbcpConfig {
            table_entries: 1 << 20,
            slots_per_entry: 8,
            degree: 8,
            variant: EbcpVariant::Standard,
            emab_epochs: 4,
            emab_addrs_per_epoch: 32,
            trigger_refractory: 150,
            promote_on_hit: true,
            chain_on_buffer_hit: true,
        }
    }

    /// The *idealized* starting point of the design-space exploration
    /// (§5.2): 8M entries, 32 addresses per entry, up to 32 prefetches.
    pub const fn idealized() -> Self {
        EbcpConfig {
            table_entries: 8 << 20,
            slots_per_entry: 32,
            degree: 32,
            ..Self::tuned()
        }
    }

    /// The tuned configuration with the *EBCP minus* pairing (ablation).
    pub const fn tuned_minus() -> Self {
        EbcpConfig {
            variant: EbcpVariant::Minus,
            ..Self::tuned()
        }
    }

    /// The Figure 9 comparison configuration: degree 6, 6 slots,
    /// 1M entries (same table budget as the Solihin configurations).
    pub const fn comparison() -> Self {
        EbcpConfig {
            slots_per_entry: 6,
            degree: 6,
            ..Self::tuned()
        }
    }

    /// Same as [`EbcpConfig::comparison`] but the *EBCP minus* ablation.
    pub const fn comparison_minus() -> Self {
        EbcpConfig {
            variant: EbcpVariant::Minus,
            ..Self::comparison()
        }
    }

    /// Returns the configuration with a different prefetch degree,
    /// matching the entry's slot count to it (the paper co-varies them
    /// in Figures 4, 5 and 8).
    #[must_use]
    pub const fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self.slots_per_entry = degree;
        self
    }

    /// Returns the configuration with a different table size (Figure 6).
    #[must_use]
    pub const fn with_table_entries(mut self, entries: u64) -> Self {
        self.table_entries = entries;
        self
    }
}

impl Default for EbcpConfig {
    fn default() -> Self {
        Self::tuned()
    }
}

/// EBCP-internal statistics (content-level; traffic is accounted by the
/// engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EbcpStats {
    /// Prediction lookups issued (table reads requested).
    pub lookups: u64,
    /// Lookups chained off prefetch-buffer hits.
    pub lookups_from_buffer_hits: u64,
    /// Prefetch addresses produced.
    pub prefetches: u64,
    /// Learning rotations (EMAB retirements with a usable key).
    pub learns: u64,
    /// LRU promotions from prefetch-buffer hits.
    pub promotions: u64,
}

#[derive(Debug, Clone)]
enum Pending {
    Predict { key: LineAddr },
    Learn(LearnInput),
}

#[derive(Debug, Clone)]
struct PerCore {
    emab: Emab,
    /// Cycle of the last prediction lookup (refractory control).
    last_lookup: Option<Cycle>,
}

/// The epoch-based correlation prefetcher.
///
/// # Examples
///
/// ```
/// use ebcp_core::{EbcpConfig, EbcpPrefetcher};
/// use ebcp_prefetch::Prefetcher;
///
/// let mut p = EbcpPrefetcher::new(EbcpConfig::comparison());
/// assert_eq!(p.name(), "ebcp");
/// ```
#[derive(Debug, Clone)]
pub struct EbcpPrefetcher {
    config: EbcpConfig,
    /// Per-core EMABs and refractory state, grown on demand. The
    /// prefetcher control sits in front of the core-to-L2 crossbar
    /// (§3.2, Figure 2), so it sees which core each miss belongs to and
    /// keeps per-thread miss streams separate — the property a
    /// memory-side engine cannot have (§3.3.1). The correlation table
    /// itself is shared by all cores, as the paper suggests.
    per_core: Vec<PerCore>,
    table: CorrelationTable,
    pending: FxHashMap<u64, Pending>,
    next_token: u64,
    /// Whether the prefetcher holds its memory region (§3.4.1). While
    /// inactive it neither learns nor predicts.
    active: bool,
    stats: EbcpStats,
    name: String,
}

impl EbcpPrefetcher {
    /// Creates an EBCP prefetcher in the active state.
    pub fn new(config: EbcpConfig) -> Self {
        EbcpPrefetcher {
            per_core: Vec::new(),
            table: CorrelationTable::new(config.table_entries, config.slots_per_entry),
            pending: FxHashMap::default(),
            next_token: 0,
            active: true,
            stats: EbcpStats::default(),
            name: match config.variant {
                EbcpVariant::Standard => "ebcp".to_owned(),
                EbcpVariant::Minus => "ebcp-minus".to_owned(),
            },
            config,
        }
    }

    /// Overrides the display name.
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// This prefetcher's configuration.
    pub const fn config(&self) -> EbcpConfig {
        self.config
    }

    /// Content-level statistics.
    pub const fn stats(&self) -> EbcpStats {
        self.stats
    }

    /// Correlation-table content statistics.
    pub fn table_stats(&self) -> CorrTableStats {
        self.table.stats()
    }

    /// Host-side table occupancy (for memory-footprint reporting).
    pub fn table_occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// Models the OS reclaiming the table's physical memory (§3.4.1):
    /// contents are lost and the prefetcher goes inactive.
    pub fn deactivate(&mut self) {
        self.active = false;
        self.table.clear();
        self.pending.clear();
        for st in &mut self.per_core {
            st.emab.clear();
        }
    }

    /// Models a successful re-allocation request: the prefetcher
    /// re-enters the active state with an empty table.
    pub fn reactivate(&mut self) {
        self.active = true;
    }

    /// Whether the prefetcher currently holds its table memory.
    pub const fn is_active(&self) -> bool {
        self.active
    }

    fn core_state(&mut self, core: u8) -> &mut PerCore {
        let idx = core as usize;
        while self.per_core.len() <= idx {
            let emab = Emab::new(self.config.emab_epochs, self.config.emab_addrs_per_epoch);
            let emab = match self.config.variant {
                EbcpVariant::Standard => emab,
                EbcpVariant::Minus => emab.with_next_epoch_included(),
            };
            self.per_core.push(PerCore {
                emab,
                last_lookup: None,
            });
        }
        &mut self.per_core[idx]
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn issue_predict(&mut self, key: LineAddr, now: Cycle, core: u8, out: &mut Vec<Action>) {
        self.stats.lookups += 1;
        self.core_state(core).last_lookup = Some(now);
        let token = self.token();
        self.pending.insert(token, Pending::Predict { key });
        out.push(Action::TableRead { token, delay: 0 });
    }

    fn issue_learn(&mut self, learn: LearnInput, out: &mut Vec<Action>) {
        self.stats.learns += 1;
        let token = self.token();
        self.pending.insert(token, Pending::Learn(learn));
        // Read-for-update; the write follows on completion (§3.4.4's
        // second read + first write).
        out.push(Action::TableRead { token, delay: 0 });
    }

    /// A new epoch begins on `core`, keyed by `line` — either a real
    /// trigger miss or a prefetch-buffer hit standing in for one.
    /// Rotates that core's EMAB (learning) and issues the prediction
    /// lookup, unless a trigger already fired within the refractory
    /// interval (same epoch).
    fn trigger(
        &mut self,
        line: LineAddr,
        now: Cycle,
        core: u8,
        from_buffer: bool,
        out: &mut Vec<Action>,
    ) {
        let refractory = self.config.trigger_refractory;
        let st = self.core_state(core);
        let refractory_ok = st
            .last_lookup
            .map(|t| now.saturating_sub(t) >= refractory)
            .unwrap_or(true);
        if !refractory_ok {
            return;
        }
        if from_buffer {
            self.stats.lookups_from_buffer_hits += 1;
        }
        if let Some(learn) = self.core_state(core).emab.begin_epoch() {
            self.issue_learn(learn, out);
        }
        self.issue_predict(line, now, core, out);
    }
}

impl Prefetcher for EbcpPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        if !self.active {
            return;
        }
        if info.epoch_trigger {
            // The epoch count incremented. If a prefetch-buffer hit
            // already stood in as this epoch's trigger moments ago
            // (partial aversion: the first accesses hit the buffer, a
            // later one missed), the rotation and lookup have happened;
            // the refractory gate inside `trigger` keeps the epoch from
            // being double-counted.
            self.trigger(info.line, info.now, info.core, false, out);
        }
        // Record the miss in the current EMAB epoch (instruction and
        // load misses only — the engine reports exactly those).
        self.core_state(info.core).emab.record(info.line);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        if !self.active {
            return;
        }
        // LRU feedback: promote the useful address in its entry, and pay
        // one table write for it (§3.4.3, §3.4.4).
        if self.config.promote_on_hit
            && self
                .table
                .touch(LineAddr::from_index(info.origin), info.line)
        {
            self.stats.promotions += 1;
            out.push(Action::TableWrite);
        }
        // A buffer hit that would have been an epoch trigger stands in
        // for one (§3.4.3: "the first L2 instruction or load miss *or
        // prefetch buffer hit* in a new epoch"): it rotates the EMAB and
        // keys a prediction lookup, so fully-averted epochs keep both
        // the learning stream and the prefetch chain alive. The
        // refractory interval keeps this to one trigger per would-be
        // epoch.
        if self.config.chain_on_buffer_hit && info.would_be_trigger {
            self.trigger(info.line, info.now, info.core, true, out);
        }
        // The buffer hit is an averted L2 miss: the on-chip prefetcher
        // control sits beside the L2 and sees it, so it stays part of
        // the recorded miss-address stream. (A memory-side prefetcher
        // never sees these — §3.3.1.) This keeps learned keys and entry
        // contents stable once prefetching is working.
        self.core_state(info.core).emab.record(info.line);
    }

    fn on_table_done(&mut self, token: u64, _now: Cycle, out: &mut Vec<Action>) {
        let Some(pending) = self.pending.remove(&token) else {
            return;
        };
        if !self.active {
            return;
        }
        match pending {
            Pending::Predict { key } => {
                if let Some(entry) = self.table.lookup(key) {
                    let origin = key.index();
                    let lines: Vec<LineAddr> = entry
                        .addrs()
                        .iter()
                        .copied()
                        .take(self.config.degree)
                        .collect();
                    for line in lines {
                        self.stats.prefetches += 1;
                        out.push(Action::Prefetch { line, origin });
                    }
                }
            }
            Pending::Learn(learn) => {
                self.table.learn(learn.key, &learn.addrs);
                // The update write-back.
                out.push(Action::TableWrite);
            }
        }
    }

    fn on_table_dropped(&mut self, token: u64) {
        // A saturated bus dropped the read: the lookup or learning
        // opportunity is simply lost.
        self.pending.remove(&token);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn reset_aux_stats(&mut self) {
        self.stats = EbcpStats::default();
        self.table.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::{AccessKind, Pc};

    fn miss(line: u64, trigger: bool, now: Cycle) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(0x40),
            kind: AccessKind::Load,
            epoch_trigger: trigger,
            now,
            core: 0,
        }
    }

    /// Drives epochs through the prefetcher, completing table reads
    /// immediately, and returns all prefetched lines.
    fn drive_epochs(p: &mut EbcpPrefetcher, epochs: &[&[u64]], t0: Cycle) -> Vec<u64> {
        let mut prefetched = Vec::new();
        let mut now = t0;
        for epoch in epochs {
            for (i, &line) in epoch.iter().enumerate() {
                let mut out = Vec::new();
                p.on_miss(&miss(line, i == 0, now), &mut out);
                for a in out {
                    if let Action::TableRead { token, .. } = a {
                        let mut done = Vec::new();
                        p.on_table_done(token, now + 500, &mut done);
                        for d in done {
                            if let Action::Prefetch { line, .. } = d {
                                prefetched.push(line.index());
                            }
                        }
                    }
                }
            }
            now += 1000;
        }
        prefetched
    }

    /// The paper's running example: epochs {A,B} {C,D,E} {F,G} {H,I}
    /// recurring. On the second occurrence, the trigger A must prefetch
    /// F, G, H, I — all the misses of epochs +2 and +3 (§3.2).
    #[test]
    fn paper_example_end_to_end() {
        let mut p = EbcpPrefetcher::new(EbcpConfig::tuned());
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        // First pass + enough following epochs to rotate the EMAB fully.
        let mut pf = drive_epochs(&mut p, epochs, 0);
        pf.extend(drive_epochs(
            &mut p,
            &[&[100], &[101], &[102], &[103]],
            10_000,
        ));
        // Second pass: trigger 1 (A) predicts.
        let pf2 = drive_epochs(&mut p, &[&[1]], 100_000);
        assert_eq!(pf2, vec![6, 7, 8, 9], "A -> F,G,H,I (epochs +2/+3)");
    }

    #[test]
    fn minus_variant_prefetches_next_epochs() {
        let mut p = EbcpPrefetcher::new(EbcpConfig {
            variant: EbcpVariant::Minus,
            ..EbcpConfig::tuned()
        });
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        drive_epochs(&mut p, epochs, 0);
        drive_epochs(&mut p, &[&[100], &[101], &[102], &[103]], 10_000);
        let pf2 = drive_epochs(&mut p, &[&[1]], 100_000);
        assert_eq!(
            pf2,
            vec![3, 4, 5, 6, 7],
            "minus: A -> C,D,E,F,G (epochs +1/+2)"
        );
    }

    #[test]
    fn degree_caps_prefetches() {
        let cfg = EbcpConfig {
            degree: 2,
            ..EbcpConfig::tuned()
        };
        let mut p = EbcpPrefetcher::new(cfg);
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        drive_epochs(&mut p, epochs, 0);
        drive_epochs(&mut p, &[&[100], &[101], &[102], &[103]], 10_000);
        let pf2 = drive_epochs(&mut p, &[&[1]], 100_000);
        assert_eq!(pf2.len(), 2);
    }

    #[test]
    fn non_trigger_misses_do_not_look_up() {
        let mut p = EbcpPrefetcher::new(EbcpConfig::tuned());
        let mut out = Vec::new();
        p.on_miss(&miss(1, true, 0), &mut out);
        let first = out.len();
        out.clear();
        p.on_miss(&miss(2, false, 1), &mut out);
        assert!(out.is_empty(), "overlapped misses must stay silent");
        assert!(first >= 1);
        assert_eq!(p.stats().lookups, 1);
    }

    #[test]
    fn buffer_hit_promotes_and_writes() {
        let mut p = EbcpPrefetcher::new(EbcpConfig::tuned());
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        drive_epochs(&mut p, epochs, 0);
        drive_epochs(&mut p, &[&[100], &[101], &[102], &[103]], 10_000);
        // Entry keyed by line 1 exists; its origin token is its index.
        let origin = LineAddr::from_index(1).index();
        let mut out = Vec::new();
        p.on_prefetch_hit(
            &PrefetchHitInfo {
                line: LineAddr::from_index(7),
                pc: Pc::new(0),
                kind: AccessKind::Load,
                origin,
                would_be_trigger: false,
                now: 200_000,
                core: 0,
            },
            &mut out,
        );
        assert!(out.contains(&Action::TableWrite), "LRU update write");
        assert_eq!(p.stats().promotions, 1);
    }

    #[test]
    fn averted_epoch_chains_lookup_with_refractory() {
        let mut p = EbcpPrefetcher::new(EbcpConfig::tuned());
        let hit = |line: u64, now: Cycle| PrefetchHitInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(0),
            kind: AccessKind::Load,
            origin: 0,
            would_be_trigger: true,
            now,
            core: 0,
        };
        let mut out = Vec::new();
        p.on_prefetch_hit(&hit(6, 1000), &mut out);
        let lookups_after_first = p.stats().lookups;
        // A second hit 10 cycles later (same would-be epoch): suppressed.
        p.on_prefetch_hit(&hit(7, 1010), &mut out);
        assert_eq!(p.stats().lookups, lookups_after_first);
        // A hit one refractory later (next would-be epoch): allowed.
        p.on_prefetch_hit(&hit(8, 1000 + 200), &mut out);
        assert_eq!(p.stats().lookups, lookups_after_first + 1);
        assert_eq!(p.stats().lookups_from_buffer_hits, 2);
    }

    #[test]
    fn dropped_table_read_loses_learning() {
        let mut p = EbcpPrefetcher::new(EbcpConfig::tuned());
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        // Drive WITHOUT completing table reads; drop them all instead.
        let mut now = 0;
        for epoch in epochs
            .iter()
            .chain([&[100u64][..], &[101], &[102], &[103]].iter())
        {
            for (i, &line) in epoch.iter().enumerate() {
                let mut out = Vec::new();
                p.on_miss(&miss(line, i == 0, now), &mut out);
                for a in out {
                    if let Action::TableRead { token, .. } = a {
                        p.on_table_dropped(token);
                    }
                }
            }
            now += 1000;
        }
        // Nothing was learned.
        assert_eq!(p.table_occupancy(), 0);
        let pf = drive_epochs(&mut p, &[&[1]], 100_000);
        assert!(pf.is_empty());
    }

    #[test]
    fn deactivation_stops_everything() {
        let mut p = EbcpPrefetcher::new(EbcpConfig::tuned());
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        drive_epochs(&mut p, epochs, 0);
        p.deactivate();
        assert!(!p.is_active());
        let pf = drive_epochs(&mut p, &[&[1], &[2], &[3]], 50_000);
        assert!(pf.is_empty());
        p.reactivate();
        assert!(p.is_active());
        // Active again, but the table was reclaimed: still no hits until
        // it re-learns.
        let pf = drive_epochs(&mut p, &[&[1]], 90_000);
        assert!(pf.is_empty());
    }

    #[test]
    fn config_presets_are_consistent() {
        let t = EbcpConfig::tuned();
        assert_eq!(t.degree, 8);
        assert_eq!(t.table_entries, 1 << 20);
        let i = EbcpConfig::idealized();
        assert_eq!(i.degree, 32);
        assert_eq!(i.table_entries, 8 << 20);
        let c = EbcpConfig::comparison();
        assert_eq!(c.degree, 6);
        let m = EbcpConfig::comparison_minus();
        assert_eq!(m.variant, EbcpVariant::Minus);
        let d = t.with_degree(16);
        assert_eq!(d.degree, 16);
        assert_eq!(d.slots_per_entry, 16);
        assert_eq!(t.with_table_entries(64).table_entries, 64);
    }
}
