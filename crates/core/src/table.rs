//! The main-memory correlation table (§3.4.1–§3.4.2, Figure 3).
//!
//! Each entry holds a tag, LRU information and N prefetch addresses, and
//! is sized to fit the 64 B unit of memory transfer: with the low-byte
//! address compression implemented here (an address's upper bytes come
//! from the entry's tag), eight prefetch addresses fit easily. The table
//! is direct-mapped to keep every access a single memory transfer.
//!
//! Only the *contents* live in this structure; the *timing* of every
//! read and update is modelled by the simulation engine through
//! low-priority memory requests.

use ebcp_prefetch::MainMemoryTable;
use ebcp_types::LineAddr;
use serde::{Deserialize, Serialize};

/// Bits of a line address stored verbatim in a compressed slot (5 bytes).
pub const COMPRESSED_BITS: u32 = 40;

/// Compresses `addr` against `key`: keeps the low [`COMPRESSED_BITS`]
/// bits, which round-trip iff the upper bits match the key's. Returns
/// `None` when the address is too far from the key to compress (the
/// hardware would fall back to a wider slot or drop the address; the
/// simulator stores it regardless and only *accounts* the failure).
///
/// # Examples
///
/// ```
/// use ebcp_core::{compress_line, decompress_line};
/// use ebcp_types::LineAddr;
///
/// let key = LineAddr::from_index(0x123_0000_0042);
/// let addr = LineAddr::from_index(0x123_0000_9999);
/// let c = compress_line(key, addr).unwrap();
/// assert_eq!(decompress_line(key, c), addr);
/// ```
pub fn compress_line(key: LineAddr, addr: LineAddr) -> Option<u64> {
    if key.index() >> COMPRESSED_BITS == addr.index() >> COMPRESSED_BITS {
        Some(addr.index() & ((1 << COMPRESSED_BITS) - 1))
    } else {
        None
    }
}

/// Reverses [`compress_line`] using the key's upper bits.
pub fn decompress_line(key: LineAddr, compressed: u64) -> LineAddr {
    LineAddr::from_index((key.index() >> COMPRESSED_BITS << COMPRESSED_BITS) | compressed)
}

/// One correlation-table entry: up to `slots` prefetch addresses in
/// LRU order (most recent first).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrEntry {
    addrs: Vec<LineAddr>,
}

impl CorrEntry {
    /// Prefetch addresses, most-recently-used first.
    pub fn addrs(&self) -> &[LineAddr] {
        &self.addrs
    }

    /// Number of stored addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the entry is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Inserts `line` at the MRU position (promoting it if present),
    /// evicting the LRU address beyond `slots`.
    pub fn insert_mru(&mut self, line: LineAddr, slots: usize) {
        if let Some(pos) = self.addrs.iter().position(|&l| l == line) {
            self.addrs.remove(pos);
        }
        self.addrs.insert(0, line);
        self.addrs.truncate(slots);
    }

    /// Promotes `line` to MRU if present (prefetch-buffer hit LRU
    /// update, §3.4.3). Returns whether it was present.
    pub fn promote(&mut self, line: LineAddr) -> bool {
        if let Some(pos) = self.addrs.iter().position(|&l| l == line) {
            let l = self.addrs.remove(pos);
            self.addrs.insert(0, l);
            true
        } else {
            false
        }
    }

    /// Bytes this entry occupies with compression: 6-byte tag + 2-byte
    /// LRU bookkeeping + 5 bytes per compressed address.
    pub fn storage_bytes(&self) -> usize {
        6 + 2 + self.addrs.len() * (COMPRESSED_BITS as usize / 8)
    }
}

/// Statistics of correlation-table content operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrTableStats {
    /// Learning updates applied.
    pub updates: u64,
    /// Lookups that found a matching entry.
    pub lookup_hits: u64,
    /// Lookups that found no matching entry.
    pub lookup_misses: u64,
    /// Addresses that could not be compressed against their entry's key
    /// (accounted only; contents are stored regardless).
    pub uncompressible: u64,
}

/// The direct-mapped, main-memory-resident correlation table.
///
/// # Examples
///
/// ```
/// use ebcp_core::CorrelationTable;
/// use ebcp_types::LineAddr;
///
/// let mut t = CorrelationTable::new(1 << 20, 8);
/// let key = LineAddr::from_index(100);
/// t.learn(key, &[LineAddr::from_index(200), LineAddr::from_index(300)]);
/// let e = t.lookup(key).unwrap();
/// assert_eq!(e.addrs().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CorrelationTable {
    table: MainMemoryTable<CorrEntry>,
    slots: usize,
    stats: CorrTableStats,
}

impl CorrelationTable {
    /// Creates a table with `entries` direct-mapped entries, each holding
    /// up to `slots` prefetch addresses.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `slots` is zero.
    pub fn new(entries: u64, slots: usize) -> Self {
        assert!(slots > 0, "entry needs at least one slot");
        CorrelationTable {
            table: MainMemoryTable::new(entries),
            slots,
            stats: CorrTableStats::default(),
        }
    }

    /// Direct-mapped entry count.
    pub const fn entries(&self) -> u64 {
        self.table.entries()
    }

    /// Prefetch-address slots per entry.
    pub const fn slots(&self) -> usize {
        self.slots
    }

    /// The slot index `key` maps to (stored as the prefetch-buffer
    /// `origin` token so buffer hits can update entry LRU state).
    pub fn index_of(&self, key: LineAddr) -> u64 {
        self.table.index_of(key)
    }

    /// Learning update (§3.4.2): installs `addrs` (given older-epoch
    /// first) into the entry keyed by `key`. Addresses are inserted in
    /// *reverse* order so that the first-given (older-epoch, more
    /// valuable) addresses end up most-recently-used and survive
    /// overflow — "priority is given to the miss addresses from the
    /// older of the two epochs".
    ///
    /// A tag mismatch overwrites the aliased entry, exactly like the
    /// hardware's direct-mapped reallocation.
    pub fn learn(&mut self, key: LineAddr, addrs: &[LineAddr]) {
        self.stats.updates += 1;
        for a in addrs {
            if compress_line(key, *a).is_none() {
                self.stats.uncompressible += 1;
            }
        }
        let slots = self.slots;
        // Tag mismatch ⇒ reallocate (MainMemoryTable::put displaces).
        if self.table.get_mut(key).is_none() {
            self.table.put(key, CorrEntry::default());
        }
        let entry = self.table.get_mut(key).expect("just inserted");
        for a in addrs.iter().rev() {
            entry.insert_mru(*a, slots);
        }
    }

    /// Prediction lookup (§3.4.3): the entry for `key`, if its tag
    /// matches.
    pub fn lookup(&mut self, key: LineAddr) -> Option<&CorrEntry> {
        let hit = self.table.peek(key).is_some();
        if hit {
            self.stats.lookup_hits += 1;
        } else {
            self.stats.lookup_misses += 1;
        }
        self.table.peek(key)
    }

    /// Prefetch-buffer-hit LRU update: promotes `line` within the entry
    /// keyed by `key`. Returns whether the promotion happened.
    pub fn touch(&mut self, key: LineAddr, line: LineAddr) -> bool {
        self.table
            .get_mut(key)
            .map(|e| e.promote(line))
            .unwrap_or(false)
    }

    /// Content-operation statistics.
    pub const fn stats(&self) -> CorrTableStats {
        self.stats
    }

    /// Host-map occupancy (entries ever written and still live).
    pub fn occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// Resets operation statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = CorrTableStats::default();
    }

    /// Drops all contents (the OS reclaimed the region, §3.4.1).
    pub fn clear(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn compression_round_trip() {
        let key = line(0xAB_1234_5678);
        let addr = line(0xAB_0000_0001);
        let c = compress_line(key, addr).unwrap();
        assert_eq!(decompress_line(key, c), addr);
    }

    #[test]
    fn compression_fails_across_high_bits() {
        let key = line(0x1 << COMPRESSED_BITS);
        let addr = line(0x2 << COMPRESSED_BITS);
        assert!(compress_line(key, addr).is_none());
    }

    #[test]
    fn eight_slots_fit_in_a_line() {
        let mut e = CorrEntry::default();
        for i in 0..8 {
            e.insert_mru(line(i), 8);
        }
        assert!(e.storage_bytes() <= 64, "{} bytes", e.storage_bytes());
    }

    #[test]
    fn learn_then_lookup() {
        let mut t = CorrelationTable::new(64, 4);
        t.learn(line(1), &[line(10), line(20)]);
        let e = t.lookup(line(1)).unwrap();
        // Older-epoch-first input order is preserved MRU-first.
        assert_eq!(e.addrs(), &[line(10), line(20)]);
        assert!(t.lookup(line(99)).is_none());
        assert_eq!(t.stats().lookup_hits, 1);
        assert_eq!(t.stats().lookup_misses, 1);
    }

    #[test]
    fn overflow_prioritizes_older_epoch() {
        let mut t = CorrelationTable::new(64, 3);
        // Older epoch {10, 20}, newer epoch {30, 40}: only 3 slots.
        t.learn(line(1), &[line(10), line(20), line(30), line(40)]);
        let e = t.lookup(line(1)).unwrap();
        assert_eq!(
            e.addrs(),
            &[line(10), line(20), line(30)],
            "older epoch survives"
        );
    }

    #[test]
    fn relearn_refreshes_with_lru() {
        let mut t = CorrelationTable::new(64, 3);
        t.learn(line(1), &[line(10), line(20), line(30)]);
        // Next pass learns a fork's other path {10, 50}.
        t.learn(line(1), &[line(10), line(50)]);
        let e = t.lookup(line(1)).unwrap();
        // 10 promoted, 50 inserted, 20 survives (LRU evicts 30).
        assert_eq!(e.addrs(), &[line(10), line(50), line(20)]);
    }

    #[test]
    fn touch_promotes_useful_address() {
        let mut t = CorrelationTable::new(64, 3);
        t.learn(line(1), &[line(10), line(20), line(30)]);
        assert!(t.touch(line(1), line(30)));
        let e = t.lookup(line(1)).unwrap();
        assert_eq!(e.addrs()[0], line(30));
        assert!(!t.touch(line(1), line(99)));
        assert!(!t.touch(line(77), line(10)));
    }

    #[test]
    fn aliasing_reallocates_entry() {
        let mut t = CorrelationTable::new(1, 4); // everything aliases
        t.learn(line(1), &[line(10)]);
        t.learn(line(2), &[line(20)]);
        assert!(t.lookup(line(1)).is_none(), "displaced by alias");
        assert_eq!(t.lookup(line(2)).unwrap().addrs(), &[line(20)]);
    }

    #[test]
    fn uncompressible_accounted_but_stored() {
        let mut t = CorrelationTable::new(64, 4);
        let far = line(1 << (COMPRESSED_BITS + 1));
        t.learn(line(1), &[far]);
        assert_eq!(t.stats().uncompressible, 1);
        assert_eq!(t.lookup(line(1)).unwrap().addrs(), &[far]);
    }

    #[test]
    fn clear_models_os_reclaim() {
        let mut t = CorrelationTable::new(64, 4);
        t.learn(line(1), &[line(10)]);
        t.clear();
        assert!(t.lookup(line(1)).is_none());
        assert_eq!(t.occupancy(), 0);
    }
}
