//! The Epoch Miss Addresses Buffer (EMAB, §3.4.2).
//!
//! A circular buffer with four entries; each entry holds the (instruction
//! and load) miss addresses of one epoch, the first address being the
//! epoch's trigger. When a new epoch begins, the oldest entry is
//! inspected: its first miss address keys the correlation-table update,
//! and the miss addresses of the two latest entries become the entry's
//! prefetch addresses. The EMAB is the prefetcher's *only* on-chip
//! learning state.

use ebcp_types::LineAddr;

/// The miss addresses of one epoch; the first is the epoch trigger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochRecord {
    addrs: Vec<LineAddr>,
}

impl EpochRecord {
    /// The epoch trigger (first miss), if any miss was recorded.
    pub fn trigger(&self) -> Option<LineAddr> {
        self.addrs.first().copied()
    }

    /// All recorded miss addresses, in order.
    pub fn addrs(&self) -> &[LineAddr] {
        &self.addrs
    }

    /// Number of recorded misses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether no miss was recorded.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// The learning inputs produced when the EMAB rotates: the retiring
/// epoch's trigger and the prefetch addresses to store under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnInput {
    /// Correlation-table key: the oldest epoch's trigger address.
    pub key: LineAddr,
    /// Addresses to install, older epoch first (the paper gives the
    /// older of the two epochs priority when the entry overflows).
    pub addrs: Vec<LineAddr>,
}

/// The 4-entry circular Epoch Miss Addresses Buffer.
///
/// # Examples
///
/// ```
/// use ebcp_core::Emab;
/// use ebcp_types::LineAddr;
///
/// let mut emab = Emab::new(4, 32);
/// for e in 0..4u64 {
///     emab.begin_epoch();
///     emab.record(LineAddr::from_index(e * 10));
/// }
/// // The 5th epoch retires the 1st: key = its trigger (line 0).
/// let learn = emab.begin_epoch().expect("buffer full");
/// assert_eq!(learn.key, LineAddr::from_index(0));
/// ```
#[derive(Debug, Clone)]
pub struct Emab {
    epochs: std::collections::VecDeque<EpochRecord>,
    capacity: usize,
    max_addrs_per_epoch: usize,
    /// When true, learning pairs the retiring epoch with epochs +1/+2
    /// (the *EBCP minus* ablation) instead of +2/+3.
    include_next_epoch: bool,
}

impl Emab {
    /// Creates an EMAB with `capacity` epoch entries (the paper uses 4)
    /// each holding at most `max_addrs_per_epoch` miss addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 3` (learning needs a retiring epoch plus two
    /// later ones) or `max_addrs_per_epoch == 0`.
    pub fn new(capacity: usize, max_addrs_per_epoch: usize) -> Self {
        assert!(capacity >= 3, "EMAB needs at least 3 epochs");
        assert!(max_addrs_per_epoch > 0);
        Emab {
            epochs: std::collections::VecDeque::with_capacity(capacity + 1),
            capacity,
            max_addrs_per_epoch,
            include_next_epoch: false,
        }
    }

    /// Switches to the *EBCP minus* pairing: the retiring epoch's trigger
    /// is associated with the misses of the next two epochs (+1/+2)
    /// instead of skipping one (+2/+3).
    #[must_use]
    pub fn with_next_epoch_included(mut self) -> Self {
        self.include_next_epoch = true;
        self
    }

    /// Starts a new epoch. If the buffer was full, the oldest epoch
    /// retires and its learning input is returned: its trigger as the
    /// key, and the miss addresses of the two configured later epochs
    /// (older first).
    pub fn begin_epoch(&mut self) -> Option<LearnInput> {
        let mut learn = None;
        if self.epochs.len() == self.capacity {
            let oldest = self.epochs.pop_front().expect("nonempty");
            if let Some(key) = oldest.trigger() {
                // After popping, epochs[0] is trigger+1, [1] is +2, ...
                let (a, b) = if self.include_next_epoch {
                    (0, 1)
                } else {
                    (1, 2)
                };
                let mut addrs = Vec::new();
                if let Some(e) = self.epochs.get(a) {
                    addrs.extend_from_slice(e.addrs());
                }
                if let Some(e) = self.epochs.get(b) {
                    addrs.extend_from_slice(e.addrs());
                }
                if !addrs.is_empty() {
                    learn = Some(LearnInput { key, addrs });
                }
            }
        }
        self.epochs.push_back(EpochRecord::default());
        learn
    }

    /// Records a miss address into the current epoch. A no-op before the
    /// first [`Emab::begin_epoch`] or past the per-epoch cap.
    pub fn record(&mut self, line: LineAddr) {
        if let Some(cur) = self.epochs.back_mut() {
            if cur.addrs.len() < self.max_addrs_per_epoch {
                cur.addrs.push(line);
            }
        }
    }

    /// Number of epochs currently buffered.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether no epoch has begun yet.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Drops all buffered epochs (prefetcher deactivation).
    pub fn clear(&mut self) {
        self.epochs.clear();
    }

    /// The buffered epochs, oldest first (test/diagnostic access).
    pub fn epochs(&self) -> impl DoubleEndedIterator<Item = &EpochRecord> {
        self.epochs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    /// Reproduces the paper's running example (§3.4.2): epochs
    /// {A,B} {C,D,E} {F,G} {H,I}; when the next epoch begins, the entry
    /// keyed by A must receive F, G, H, I (epochs +2 and +3).
    #[test]
    fn paper_example_learning() {
        let mut emab = Emab::new(4, 32);
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        for e in epochs {
            assert!(emab.begin_epoch().is_none());
            for &a in *e {
                emab.record(line(a));
            }
        }
        let learn = emab.begin_epoch().expect("4 epochs buffered");
        assert_eq!(learn.key, line(1)); // trigger A
        assert_eq!(learn.addrs, vec![line(6), line(7), line(8), line(9)]); // F G H I
    }

    /// The EBCP-minus ablation stores the next epoch's misses instead.
    #[test]
    fn minus_variant_includes_next_epoch() {
        let mut emab = Emab::new(4, 32).with_next_epoch_included();
        let epochs: &[&[u64]] = &[&[1, 2], &[3, 4, 5], &[6, 7], &[8, 9]];
        for e in epochs {
            emab.begin_epoch();
            for &a in *e {
                emab.record(line(a));
            }
        }
        let learn = emab.begin_epoch().expect("full");
        assert_eq!(learn.key, line(1));
        // C D E (epoch +1) then F G (epoch +2).
        assert_eq!(
            learn.addrs,
            vec![line(3), line(4), line(5), line(6), line(7)]
        );
    }

    #[test]
    fn rotation_is_circular() {
        let mut emab = Emab::new(4, 32);
        for e in 0..6u64 {
            emab.begin_epoch();
            emab.record(line(e * 10));
            emab.record(line(e * 10 + 1));
        }
        // 6 epochs begun: epochs 0 and 1 have retired; buffer holds 2..5.
        assert_eq!(emab.len(), 4);
        let triggers: Vec<_> = emab.epochs().map(|e| e.trigger().unwrap()).collect();
        assert_eq!(triggers, vec![line(20), line(30), line(40), line(50)]);
    }

    #[test]
    fn learning_key_is_second_epoch_after_first_rotation() {
        let mut emab = Emab::new(4, 32);
        for e in 0..5u64 {
            emab.begin_epoch();
            emab.record(line(e));
        }
        // 6th epoch retires epoch 1.
        let learn = emab.begin_epoch().expect("full");
        assert_eq!(learn.key, line(1));
        assert_eq!(learn.addrs, vec![line(3), line(4)]);
    }

    #[test]
    fn empty_epochs_produce_no_learning() {
        let mut emab = Emab::new(4, 32);
        for _ in 0..4 {
            emab.begin_epoch(); // no misses recorded
        }
        assert!(emab.begin_epoch().is_none());
    }

    #[test]
    fn per_epoch_cap_enforced() {
        let mut emab = Emab::new(4, 2);
        emab.begin_epoch();
        for i in 0..10u64 {
            emab.record(line(i));
        }
        assert_eq!(emab.epochs().next_back().unwrap().len(), 2);
    }

    #[test]
    fn record_before_first_epoch_is_noop() {
        let mut emab = Emab::new(4, 4);
        emab.record(line(1));
        assert!(emab.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_capacity_rejected() {
        let _ = Emab::new(2, 4);
    }
}
