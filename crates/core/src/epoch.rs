//! Epoch tracking and the epoch MLP model (§2.1).
//!
//! An epoch runs from the end of the previous epoch through the first
//! off-chip access and until that access completes; all overlappable
//! off-chip accesses within it effectively issue and complete together.
//! Epochs are detected exactly as the paper prescribes: *the epoch count
//! is incremented when the number of outstanding off-chip misses
//! transitions from 0 to 1*.

use ebcp_types::stats::Histogram;
use ebcp_types::Cycle;
use serde::{Deserialize, Serialize};

/// Aggregate epoch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epochs observed (0→1 transitions).
    pub epochs: u64,
    /// Off-chip demand misses observed.
    pub misses: u64,
}

impl EpochStats {
    /// Epochs per 1000 instructions.
    pub fn epi(&self, insts: u64) -> f64 {
        if insts == 0 {
            0.0
        } else {
            self.epochs as f64 * 1000.0 / insts as f64
        }
    }

    /// Mean off-chip misses per epoch (the workload's memory-level
    /// parallelism under the epoch model).
    pub fn mlp(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.misses as f64 / self.epochs as f64
        }
    }
}

/// Tracks epochs from the stream of off-chip demand miss issues and
/// completions.
///
/// # Examples
///
/// ```
/// use ebcp_core::EpochTracker;
///
/// let mut t = EpochTracker::new();
/// assert!(t.on_offchip_issue(100)); // 0 -> 1: epoch trigger
/// assert!(!t.on_offchip_issue(101)); // overlapped miss, same epoch
/// t.on_all_complete(700);
/// assert!(t.on_offchip_issue(900)); // next epoch
/// assert_eq!(t.stats().epochs, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpochTracker {
    outstanding: u32,
    stats: EpochStats,
    misses_this_epoch: u32,
    misses_per_epoch: Histogram,
    last_trigger_cycle: Cycle,
}

impl EpochTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        EpochTracker {
            outstanding: 0,
            stats: EpochStats::default(),
            misses_this_epoch: 0,
            misses_per_epoch: Histogram::new(8),
            last_trigger_cycle: 0,
        }
    }

    /// Reports an off-chip demand miss issuing at `now`.
    ///
    /// Returns `true` when this miss is an *epoch trigger* (outstanding
    /// count transitioned 0→1).
    pub fn on_offchip_issue(&mut self, now: Cycle) -> bool {
        self.stats.misses += 1;
        self.outstanding += 1;
        if self.outstanding == 1 {
            if self.stats.epochs > 0 {
                self.misses_per_epoch
                    .record(u64::from(self.misses_this_epoch));
            }
            self.stats.epochs += 1;
            self.misses_this_epoch = 1;
            self.last_trigger_cycle = now;
            true
        } else {
            self.misses_this_epoch += 1;
            false
        }
    }

    /// Reports that every outstanding off-chip demand miss completed at
    /// `now` (the engine stalls to the overlapped group's completion).
    pub fn on_all_complete(&mut self, now: Cycle) {
        let _ = now;
        self.outstanding = 0;
    }

    /// Outstanding off-chip demand misses right now.
    pub const fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Whether an off-chip access issued now would start a new epoch.
    pub const fn would_trigger(&self) -> bool {
        self.outstanding == 0
    }

    /// Statistics so far.
    pub const fn stats(&self) -> EpochStats {
        self.stats
    }

    /// Distribution of misses per completed epoch.
    pub const fn misses_per_epoch(&self) -> &Histogram {
        &self.misses_per_epoch
    }

    /// Resets statistics (end of warm-up) without disturbing the
    /// outstanding-miss state.
    pub fn reset_stats(&mut self) {
        self.stats = EpochStats::default();
        self.misses_per_epoch = Histogram::new(8);
        self.misses_this_epoch = 0;
    }
}

/// The epoch-model CPI identity (§2.1):
///
/// `CPI_overall = CPI_perf * (1 - overlap) + EPI * miss_penalty`
///
/// where `epi` is epochs *per instruction* (not per 1000) and
/// `miss_penalty` the off-chip miss penalty in cycles. The paper uses
/// this identity to argue that reducing EPI reduces overall CPI
/// linearly; the simulator measures CPI directly and this helper exists
/// for model-vs-measurement validation.
///
/// # Examples
///
/// ```
/// use ebcp_core::epoch_model_cpi;
/// let cpi = epoch_model_cpi(1.0, 0.1, 0.004, 500.0);
/// assert!((cpi - (0.9 + 2.0)).abs() < 1e-12);
/// ```
pub fn epoch_model_cpi(cpi_perf: f64, overlap: f64, epi: f64, miss_penalty: f64) -> f64 {
    cpi_perf * (1.0 - overlap) + epi * miss_penalty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_on_zero_to_one() {
        let mut t = EpochTracker::new();
        assert!(t.would_trigger());
        assert!(t.on_offchip_issue(0));
        assert!(!t.would_trigger());
        assert!(!t.on_offchip_issue(1));
        assert!(!t.on_offchip_issue(2));
        assert_eq!(t.outstanding(), 3);
        t.on_all_complete(500);
        assert!(t.on_offchip_issue(600));
        assert_eq!(t.stats().epochs, 2);
        assert_eq!(t.stats().misses, 4);
    }

    #[test]
    fn mlp_and_epi() {
        let mut t = EpochTracker::new();
        for e in 0..10 {
            t.on_offchip_issue(e * 1000);
            t.on_offchip_issue(e * 1000 + 1);
            t.on_all_complete(e * 1000 + 500);
        }
        let s = t.stats();
        assert_eq!(s.epochs, 10);
        assert_eq!(s.misses, 20);
        assert_eq!(s.mlp(), 2.0);
        assert_eq!(s.epi(10_000), 1.0);
    }

    #[test]
    fn misses_per_epoch_histogram() {
        let mut t = EpochTracker::new();
        // Epoch of 3 misses, then epoch of 1.
        t.on_offchip_issue(0);
        t.on_offchip_issue(1);
        t.on_offchip_issue(2);
        t.on_all_complete(500);
        t.on_offchip_issue(600);
        t.on_all_complete(1100);
        t.on_offchip_issue(1200);
        // Completed-epoch sizes recorded on the *next* trigger: 3 and 1.
        let h = t.misses_per_epoch();
        assert_eq!(h.samples(), 2);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn reset_stats_keeps_outstanding() {
        let mut t = EpochTracker::new();
        t.on_offchip_issue(0);
        t.reset_stats();
        assert_eq!(t.stats().epochs, 0);
        assert_eq!(t.outstanding(), 1);
        // The in-flight epoch's further misses are not triggers.
        assert!(!t.on_offchip_issue(1));
    }

    #[test]
    fn cpi_identity() {
        // No off-chip component: CPI = CPI_perf.
        assert_eq!(epoch_model_cpi(1.5, 0.0, 0.0, 500.0), 1.5);
        // Pure off-chip: epi * penalty.
        assert_eq!(epoch_model_cpi(0.0, 0.0, 0.002, 500.0), 1.0);
        // Full overlap hides all on-chip time.
        assert_eq!(epoch_model_cpi(2.0, 1.0, 0.001, 500.0), 0.5);
    }

    #[test]
    fn epi_zero_instructions() {
        assert_eq!(EpochStats::default().epi(0), 0.0);
        assert_eq!(EpochStats::default().mlp(), 0.0);
    }
}
