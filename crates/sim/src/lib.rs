//! The epoch-model trace-driven timing simulator.
//!
//! This crate stands in for the proprietary cycle-accurate SPARC
//! simulator of §4.3. It consumes instruction traces and models the parts
//! of the machine the paper's evaluation depends on, at cycle
//! granularity:
//!
//! * a 4-wide in-order *consumption* front end over the trace, with an
//!   out-of-order **miss window**: after an off-chip load miss the core
//!   keeps running — issuing further (overlappable) misses — until a
//!   *window termination condition* from §2.1 fires: reorder buffer full,
//!   a serializing instruction, a mispredicted branch dependent on an
//!   off-chip miss, or an off-chip instruction miss (always blocking).
//!   Then it stalls to the completion of the whole overlapped miss
//!   group — which is precisely one *epoch*;
//! * the full L1I/L1D/L2 hierarchy with MSHRs, a prefetch buffer
//!   searched in parallel with the L2, and the split-transaction
//!   bus + DRAM model with demand/prefetch/table priorities;
//! * event-driven prefetcher interaction: main-memory table reads
//!   complete after a real modelled round-trip, prefetches arrive in the
//!   buffer after theirs, and everything competes for bandwidth.
//!
//! See `DESIGN.md` §5 for why this epoch-model substitution preserves the
//! behaviours the paper measures.
//!
//! # Examples
//!
//! ```
//! use ebcp_sim::{Engine, PrefetcherSpec, RunSpec, SimConfig};
//! use ebcp_trace::WorkloadSpec;
//!
//! let spec = RunSpec {
//!     workload: WorkloadSpec::specjbb2005().scaled(1, 32),
//!     seed: 1,
//!     warmup_insts: 20_000,
//!     measure_insts: 20_000,
//!     sim: SimConfig::scaled_down(16),
//! };
//! let result = spec.run(&PrefetcherSpec::None);
//! assert!(result.cpi() > 0.0);
//! ```

pub mod cmp;
#[cfg(any(test, feature = "stepping-oracle"))]
pub mod cmp_stepping;
pub mod config;
pub mod des;
pub mod engine;
pub mod frontend;
pub mod lockstep;
pub mod metrics;
pub mod runner;
pub mod segment;

pub use cmp::{CmpEngine, CmpResult};
#[cfg(any(test, feature = "stepping-oracle"))]
pub use cmp_stepping::SteppingCmpEngine;
pub use config::{CoreConfig, SimConfig};
pub use des::{Tick, WakeHeap};
pub use ebcp_mem::SimdTier;
pub use engine::Engine;
pub use frontend::{
    segment_events, FrontEnd, PreBlock, PreEvent, PreResolved, PreResolver, ReplayCursor,
};
pub use lockstep::Lockstep;
pub use metrics::SimResult;
pub use runner::{CmpSpec, PrefetcherSpec, RunSpec};
pub use segment::{
    run_pipelined, run_preresolved_blocks, run_preresolved_blocks_many, run_scatter,
    run_scatter_spans_with, run_scatter_with,
};
