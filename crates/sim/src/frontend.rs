//! The L1 front end and the pre-resolved event stream.
//!
//! The engine's L1I/L1D contents are **prefetcher-independent by
//! construction**: every L1-missing access installs its line into L1 at
//! the access record itself, unconditionally, whether the data comes
//! from the L2, the prefetch buffer or off-chip (see
//! [`FrontEnd::resolve`]), and nothing else ever writes L1 state. The
//! L1 hit/miss outcome of every record is therefore a pure function of
//! the record sequence — which is what makes a *two-phase* simulation
//! possible:
//!
//! 1. a **front-end pass** ([`PreResolver`]) consumes the trace once
//!    through the L1 model and emits one packed [`PreEvent`] per record
//!    the back end cares about (L1-miss fetch/load/store, store-L1-hit,
//!    serialize, mispredicted branch), each prefixed by a *gap* count of
//!    the skipped inert records (ALU ops, L1-hit loads, correctly
//!    predicted branches, L1-hit or same-line fetches);
//! 2. a **replay pass** (`Engine::replay_events`) runs only the
//!    prefetcher-dependent back end — L2, prefetch buffer, MSHRs, epoch
//!    tracker, memory system — over the event stream, advancing through
//!    gaps arithmetically instead of per record.
//!
//! Replay produces results byte-identical to full per-record stepping
//! because both paths execute the *same* back-end state machine
//! (`Engine::step_resolved`) on the same [`Resolved`] sequence; the only
//! thing replay elides is the per-record L1 scan whose outcome was
//! already computed. A fig4–fig9 sweep therefore pays the front-end
//! cost once per workload instead of once per (workload × prefetcher)
//! cell.
//!
//! Gap records advance the clock uniformly (issue bandwidth only), so a
//! gap's cycle delta is derivable from its instruction count and the
//! issue-slot phase — the stream stores only the instruction gap.

use ebcp_mem::SetAssocCache;
use ebcp_trace::{Op, TraceRecord};
use ebcp_types::{LineAddr, Pc};

use crate::config::SimConfig;

/// What the back end must do for one record, with the L1 outcome
/// already resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// The record's program counter (needed for prefetcher miss
    /// notifications; the fetch line is `pc.line()`).
    pub pc: Pc,
    /// The instruction fetch missed L1I (a new line was fetched and it
    /// was not resident).
    pub ifetch_miss: bool,
    /// The data-side / control work, if any.
    pub op: ResolvedOp,
}

/// The back-end-visible part of a record's operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedOp {
    /// Nothing for the back end: ALU, L1-hit load, correctly predicted
    /// branch.
    None,
    /// A load that missed L1D.
    LoadMiss {
        /// The missing data line.
        line: LineAddr,
        /// A mispredicted branch depends on this load (§2.1 window
        /// terminator — *if* the load goes off-chip, which only the
        /// back end knows).
        feeds_mispredict: bool,
    },
    /// A store that missed L1D.
    StoreMiss {
        /// The missing data line.
        line: LineAddr,
    },
    /// A store that hit L1D: the back end only propagates the dirty bit
    /// to the L2 (writeback accounting).
    StoreHit {
        /// The written data line.
        line: LineAddr,
    },
    /// A serializing instruction (window terminator).
    Serialize,
    /// A mispredicted branch (fixed penalty at this exact position).
    Mispredict,
}

/// The prefetcher-independent L1 front end: both L1 caches plus the
/// fetch-line filter. Owned by the engine for per-record stepping and
/// by [`PreResolver`] for the batch pre-resolution pass — the two uses
/// run the identical transition function.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    /// Last instruction line fetched; `LineAddr::from_index(u64::MAX)`
    /// (no real line — indices fit in 58 bits) means "none yet".
    last_fetch_line: LineAddr,
}

impl FrontEnd {
    /// A cold front end for `cfg`'s L1 geometries.
    pub fn new(cfg: &SimConfig) -> Self {
        FrontEnd {
            l1i: SetAssocCache::new(cfg.l1i),
            l1d: SetAssocCache::new(cfg.l1d),
            last_fetch_line: LineAddr::from_index(u64::MAX),
        }
    }

    /// Resolves one record against the L1 model, updating it.
    ///
    /// Every L1 miss fills its line *here*, eagerly — never later, and
    /// never keyed to when the data would actually arrive. This is the
    /// deliberate modeling choice that keeps L1 state independent of
    /// the prefetcher (a deferred fill would make the hit/miss stream
    /// depend on prefetcher-specific drain timing).
    #[inline]
    pub fn resolve(&mut self, rec: &TraceRecord) -> Resolved {
        let iline = rec.pc.line();
        let ifetch_miss = if self.last_fetch_line == iline {
            false
        } else {
            self.last_fetch_line = iline;
            !self.l1i.access_fill(iline)
        };
        let op = match rec.op {
            Op::Alu => ResolvedOp::None,
            Op::Load {
                addr,
                feeds_mispredict,
            } => {
                let line = addr.line();
                if self.l1d.access_fill(line) {
                    ResolvedOp::None
                } else {
                    ResolvedOp::LoadMiss {
                        line,
                        feeds_mispredict,
                    }
                }
            }
            Op::Store { addr } => {
                let line = addr.line();
                if self.l1d.access_fill(line) {
                    ResolvedOp::StoreHit { line }
                } else {
                    ResolvedOp::StoreMiss { line }
                }
            }
            Op::Branch { mispredicted } => {
                if mispredicted {
                    ResolvedOp::Mispredict
                } else {
                    ResolvedOp::None
                }
            }
            Op::Serialize => ResolvedOp::Serialize,
        };
        Resolved {
            pc: rec.pc,
            ifetch_miss,
            op,
        }
    }

    /// Resolves one record straight to the packed stream encoding —
    /// `encode(&self.resolve(rec))` without the intermediate enum
    /// round-trip, with `(0, 0)` standing for an inert record. Runs
    /// once per trace record on the pre-resolution hot path (the
    /// equivalence is pinned by a unit test below and, end to end, by
    /// the replay-vs-stepping differential tests).
    #[inline]
    pub(crate) fn resolve_packed(&mut self, rec: &TraceRecord) -> (u32, u64) {
        let iline = rec.pc.line();
        let f_ifetch = if self.last_fetch_line == iline {
            0
        } else {
            self.last_fetch_line = iline;
            u32::from(!self.l1i.access_fill(iline))
        };
        match rec.op {
            Op::Alu => (f_ifetch, 0),
            Op::Load {
                addr,
                feeds_mispredict,
            } => {
                let line = addr.line();
                if self.l1d.access_fill(line) {
                    (f_ifetch, 0)
                } else {
                    let k = if feeds_mispredict {
                        K_LOAD_FEEDS
                    } else {
                        K_LOAD
                    };
                    (f_ifetch | (k << K_SHIFT), line.index())
                }
            }
            Op::Store { addr } => {
                let line = addr.line();
                let k = if self.l1d.access_fill(line) {
                    K_STORE_HIT
                } else {
                    K_STORE_MISS
                };
                (f_ifetch | (k << K_SHIFT), line.index())
            }
            Op::Branch { mispredicted } => {
                if mispredicted {
                    (f_ifetch | (K_MISPREDICT << K_SHIFT), 0)
                } else {
                    (f_ifetch, 0)
                }
            }
            Op::Serialize => (f_ifetch | (K_SERIALIZE << K_SHIFT), 0),
        }
    }
}

// Packed event flags: bit 0 = instruction fetch missed L1I; bits 1..=3
// = data/control kind. `flags == 0` is a pure gap filler (no event
// record at all — used for trailing gaps and u32 gap overflow).
pub(crate) const F_IFETCH_MISS: u32 = 1;
pub(crate) const K_SHIFT: u32 = 1;
pub(crate) const K_NONE: u32 = 0;
pub(crate) const K_LOAD: u32 = 1;
pub(crate) const K_LOAD_FEEDS: u32 = 2;
pub(crate) const K_STORE_MISS: u32 = 3;
pub(crate) const K_STORE_HIT: u32 = 4;
pub(crate) const K_SERIALIZE: u32 = 5;
pub(crate) const K_MISPREDICT: u32 = 6;

/// One packed entry of the pre-resolved stream: `gap` inert records,
/// then (unless this is a pure filler) one event record whose resolved
/// content is encoded in `flags`/`pc`/`dline`. 24 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreEvent {
    /// The event record's program counter (raw).
    pub pc: u64,
    /// The event's data line index (loads/stores; 0 otherwise).
    pub dline: u64,
    /// Inert records preceding the event.
    pub gap: u32,
    /// Packed kind bits; `0` = filler (gap only, no event record).
    pub flags: u32,
}

impl PreEvent {
    /// Decodes the event record, or `None` for a pure gap filler.
    #[inline]
    pub fn decode(&self) -> Option<Resolved> {
        if self.flags == 0 {
            return None;
        }
        let line = LineAddr::from_index(self.dline);
        let op = match self.flags >> K_SHIFT {
            K_NONE => ResolvedOp::None,
            K_LOAD => ResolvedOp::LoadMiss {
                line,
                feeds_mispredict: false,
            },
            K_LOAD_FEEDS => ResolvedOp::LoadMiss {
                line,
                feeds_mispredict: true,
            },
            K_STORE_MISS => ResolvedOp::StoreMiss { line },
            K_STORE_HIT => ResolvedOp::StoreHit { line },
            K_SERIALIZE => ResolvedOp::Serialize,
            K_MISPREDICT => ResolvedOp::Mispredict,
            other => unreachable!("corrupt PreEvent kind {other}"),
        };
        Some(Resolved {
            pc: Pc::new(self.pc),
            ifetch_miss: self.flags & F_IFETCH_MISS != 0,
            op,
        })
    }

    /// Trace records this entry stands for (`gap` + the event itself).
    #[inline]
    pub fn records(&self) -> u64 {
        u64::from(self.gap) + u64::from(self.flags != 0)
    }
}

/// Reference encoding of a [`Resolved`] record — kept as the spec that
/// [`FrontEnd::resolve_packed`] is tested against.
#[cfg(test)]
fn encode(r: &Resolved) -> Option<(u32, u64)> {
    let (kind, dline) = match r.op {
        ResolvedOp::None => (K_NONE, 0),
        ResolvedOp::LoadMiss {
            line,
            feeds_mispredict: false,
        } => (K_LOAD, line.index()),
        ResolvedOp::LoadMiss {
            line,
            feeds_mispredict: true,
        } => (K_LOAD_FEEDS, line.index()),
        ResolvedOp::StoreMiss { line } => (K_STORE_MISS, line.index()),
        ResolvedOp::StoreHit { line } => (K_STORE_HIT, line.index()),
        ResolvedOp::Serialize => (K_SERIALIZE, 0),
        ResolvedOp::Mispredict => (K_MISPREDICT, 0),
    };
    let flags = (kind << K_SHIFT) | u32::from(r.ifetch_miss);
    if flags == 0 {
        None // inert record: absorbed into the next event's gap
    } else {
        Some((flags, dline))
    }
}

/// A complete pre-resolved stream for one trace under one L1 geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreResolved {
    /// The packed event stream.
    pub events: Vec<PreEvent>,
    /// Total trace records the stream stands for.
    pub records: u64,
    /// L1I geometry the stream was resolved under.
    pub l1i: ebcp_mem::CacheGeometry,
    /// L1D geometry the stream was resolved under.
    pub l1d: ebcp_mem::CacheGeometry,
}

impl PreResolved {
    /// Pre-resolves a fully materialized record slice (convenience for
    /// tests and small traces; large traces should feed a
    /// [`PreResolver`] chunk by chunk).
    pub fn from_records(cfg: &SimConfig, records: &[TraceRecord]) -> Self {
        let mut pr = PreResolver::new(cfg);
        // Event density runs 20-30% across the workload presets; one
        // up-front reservation replaces ~20 doubling reallocations of a
        // multi-MB buffer (large enough to go through mmap each time,
        // which measurably stalls long-lived processes).
        pr.reserve(records.len() / 3 + 16);
        pr.push_chunk(records);
        pr.finish()
    }

    /// Estimated heap footprint of the packed stream.
    pub fn est_bytes(&self) -> u64 {
        (self.events.len() * std::mem::size_of::<PreEvent>()) as u64
    }
}

/// One bounded span of a pre-resolved stream: the events covering
/// `records` consecutive trace records, cut at a record boundary.
///
/// Cutting is replay-**exact**: a boundary that lands inside a gap
/// flushes the prefix as a pure filler event, and clock advance over
/// inert records is linear in record count with issue-slot phase carried
/// across calls (the same invariance behind the `u32::MAX` gap-overflow
/// filler), so replaying blocks back to back on one engine is the same
/// computation as replaying the unsplit stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreBlock {
    /// The packed events of this span.
    pub events: Vec<PreEvent>,
    /// Trace records the span stands for.
    pub records: u64,
}

impl PreBlock {
    /// Estimated heap footprint of this block's packed events.
    pub fn est_bytes(&self) -> u64 {
        (self.events.len() * std::mem::size_of::<PreEvent>()) as u64
    }
}

/// Incremental builder for a [`PreResolved`] stream: feed trace records
/// in order (chunked delivery works — the builder keeps no record
/// history, only the L1 model and a gap counter).
#[derive(Debug)]
pub struct PreResolver {
    fe: FrontEnd,
    gap: u32,
    events: Vec<PreEvent>,
    records: u64,
    /// `records` as of the last [`PreResolver::split_block`] call.
    records_mark: u64,
    l1i: ebcp_mem::CacheGeometry,
    l1d: ebcp_mem::CacheGeometry,
}

impl PreResolver {
    /// A builder over a cold L1 model for `cfg`'s geometries.
    pub fn new(cfg: &SimConfig) -> Self {
        PreResolver {
            fe: FrontEnd::new(cfg),
            gap: 0,
            events: Vec::new(),
            records: 0,
            records_mark: 0,
            l1i: cfg.l1i,
            l1d: cfg.l1d,
        }
    }

    /// Reserves room for at least `additional` further events.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Resolves and appends one record.
    #[inline]
    pub fn push(&mut self, rec: &TraceRecord) {
        self.push_chunk(std::slice::from_ref(rec));
    }

    /// Resolves and appends a run of records. Same stream as pushing
    /// them one by one, but the gap counter stays in a local across the
    /// chunk — worth a measurable slice of the once-per-workload
    /// pre-resolution pass.
    pub fn push_chunk(&mut self, recs: &[TraceRecord]) {
        self.records += recs.len() as u64;
        let mut gap = self.gap;
        for rec in recs {
            let (flags, dline) = self.fe.resolve_packed(rec);
            if flags == 0 {
                gap += 1;
                if gap == u32::MAX {
                    // Overflow guard: flush the gap as a pure filler.
                    self.events.push(PreEvent {
                        pc: 0,
                        dline: 0,
                        gap,
                        flags: 0,
                    });
                    gap = 0;
                }
            } else {
                self.events.push(PreEvent {
                    pc: rec.pc.get(),
                    dline,
                    gap,
                    flags,
                });
                gap = 0;
            }
        }
        self.gap = gap;
    }

    /// Cuts the stream here and hands back everything resolved since
    /// the previous cut as a [`PreBlock`], flushing any pending gap as
    /// a pure filler so the block stands for a whole number of records.
    ///
    /// The L1 model carries over untouched — the next block continues
    /// the same front-end state — so the concatenated blocks replay
    /// identically to the unsplit stream. This is how the large tier
    /// streams a trace through pre-resolution in O(segment) memory.
    pub fn split_block(&mut self) -> PreBlock {
        if self.gap > 0 {
            self.events.push(PreEvent {
                pc: 0,
                dline: 0,
                gap: self.gap,
                flags: 0,
            });
            self.gap = 0;
        }
        let records = self.records - self.records_mark;
        self.records_mark = self.records;
        PreBlock {
            events: std::mem::take(&mut self.events),
            records,
        }
    }

    /// Trace records resolved since the last [`PreResolver::split_block`].
    pub fn pending_records(&self) -> u64 {
        self.records - self.records_mark
    }

    /// Finishes the stream, flushing any trailing gap as a filler.
    pub fn finish(mut self) -> PreResolved {
        if self.gap > 0 {
            self.events.push(PreEvent {
                pc: 0,
                dline: 0,
                gap: self.gap,
                flags: 0,
            });
        }
        PreResolved {
            events: self.events,
            records: self.records,
            l1i: self.l1i,
            l1d: self.l1d,
        }
    }
}

/// Cuts a monolithic pre-resolved stream into [`PreBlock`]s of
/// `seg_records` records each (the last block may be shorter). A
/// boundary that lands inside an event's gap splits the gap into a
/// pure filler (closing the block) plus the remainder carried by the
/// event — replay-exact, see [`PreBlock`].
///
/// # Panics
///
/// Panics if `seg_records` is zero.
pub fn segment_events(pre: &PreResolved, seg_records: u64) -> Vec<PreBlock> {
    assert!(seg_records > 0, "segment length must be at least 1 record");
    let mut blocks =
        Vec::with_capacity(usize::try_from(pre.records / seg_records + 1).unwrap_or(1));
    let mut cur: Vec<PreEvent> = Vec::new();
    let mut fill = 0u64;
    fn close(blocks: &mut Vec<PreBlock>, cur: &mut Vec<PreEvent>, records: u64) {
        blocks.push(PreBlock {
            events: std::mem::take(cur),
            records,
        });
    }
    for ev in &pre.events {
        let mut gap = u64::from(ev.gap);
        while fill + gap >= seg_records {
            // Boundary inside (or at the end of) the inert run: flush
            // the prefix as a filler and close the block.
            let take = seg_records - fill;
            if take > 0 {
                cur.push(PreEvent {
                    pc: 0,
                    dline: 0,
                    gap: u32::try_from(take).expect("gap prefix fits u32"),
                    flags: 0,
                });
            }
            gap -= take;
            close(&mut blocks, &mut cur, seg_records);
            fill = 0;
        }
        if ev.flags != 0 {
            cur.push(PreEvent {
                pc: ev.pc,
                dline: ev.dline,
                gap: gap as u32,
                flags: ev.flags,
            });
            fill += gap + 1;
            if fill == seg_records {
                close(&mut blocks, &mut cur, seg_records);
                fill = 0;
            }
        } else if gap > 0 {
            // Remainder of a pure filler (gap-counter overflow or
            // stream tail): stays a filler in the open block.
            cur.push(PreEvent {
                pc: 0,
                dline: 0,
                gap: gap as u32,
                flags: 0,
            });
            fill += gap;
        }
    }
    if fill > 0 || blocks.is_empty() {
        close(&mut blocks, &mut cur, fill);
    }
    blocks
}

/// Resume position inside a pre-resolved stream, so replay can stop at
/// an instruction budget (the warm-up boundary) — which may land in the
/// middle of a gap — and continue from the exact same record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCursor {
    /// Index of the current [`PreEvent`].
    pub idx: usize,
    /// Gap records of that event already replayed.
    pub gap_done: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_trace::{TraceGenerator, WorkloadSpec};
    use ebcp_types::Addr;

    fn cfg() -> SimConfig {
        SimConfig::scaled_down(16)
    }

    #[test]
    fn stream_accounts_for_every_record() {
        let spec = WorkloadSpec::database().scaled(1, 32);
        let trace: Vec<TraceRecord> = TraceGenerator::new(&spec, 3).take(50_000).collect();
        let pre = PreResolved::from_records(&cfg(), &trace);
        assert_eq!(pre.records, 50_000);
        let by_events: u64 = pre.events.iter().map(PreEvent::records).sum();
        assert_eq!(by_events, 50_000, "gaps + events must cover the trace");
        // A real workload has plenty of both events and gaps.
        assert!(pre.events.len() > 100);
        assert!((pre.events.len() as u64) < pre.records);
    }

    #[test]
    fn chunked_and_batch_resolution_agree() {
        let spec = WorkloadSpec::tpcw().scaled(1, 32);
        let trace: Vec<TraceRecord> = TraceGenerator::new(&spec, 5).take(20_000).collect();
        let batch = PreResolved::from_records(&cfg(), &trace);
        let mut pr = PreResolver::new(&cfg());
        for chunk in trace.chunks(777) {
            for rec in chunk {
                pr.push(rec);
            }
        }
        assert_eq!(pr.finish(), batch);
    }

    #[test]
    fn encode_decode_round_trip() {
        let line = LineAddr::from_index(42);
        let cases = [
            Resolved {
                pc: Pc::new(0x4000),
                ifetch_miss: true,
                op: ResolvedOp::None,
            },
            Resolved {
                pc: Pc::new(0x4004),
                ifetch_miss: false,
                op: ResolvedOp::LoadMiss {
                    line,
                    feeds_mispredict: true,
                },
            },
            Resolved {
                pc: Pc::new(0x4008),
                ifetch_miss: true,
                op: ResolvedOp::StoreMiss { line },
            },
            Resolved {
                pc: Pc::new(0x400c),
                ifetch_miss: false,
                op: ResolvedOp::StoreHit { line },
            },
            Resolved {
                pc: Pc::new(0x4010),
                ifetch_miss: false,
                op: ResolvedOp::Serialize,
            },
            Resolved {
                pc: Pc::new(0x4014),
                ifetch_miss: true,
                op: ResolvedOp::Mispredict,
            },
        ];
        for r in cases {
            let (flags, dline) = encode(&r).expect("all cases are events");
            let ev = PreEvent {
                pc: r.pc.get(),
                dline,
                gap: 0,
                flags,
            };
            assert_eq!(ev.decode(), Some(r));
        }
        // The one non-event: inert record.
        assert_eq!(
            encode(&Resolved {
                pc: Pc::new(0),
                ifetch_miss: false,
                op: ResolvedOp::None
            }),
            None
        );
    }

    #[test]
    fn packed_event_is_24_bytes() {
        assert_eq!(std::mem::size_of::<PreEvent>(), 24);
    }

    #[test]
    fn resolve_is_prefetcher_independent_shape() {
        // Same trace, two independent front ends: identical streams.
        // (The real independence claim — against back-end state — is
        // enforced by the engine's differential replay tests.)
        let spec = WorkloadSpec::specjbb2005().scaled(1, 32);
        let trace: Vec<TraceRecord> = TraceGenerator::new(&spec, 9).take(30_000).collect();
        let a = PreResolved::from_records(&cfg(), &trace);
        let b = PreResolved::from_records(&cfg(), &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_packed_matches_resolve_plus_encode() {
        // The fused hot-path encoder must agree record for record with
        // the reference `encode(resolve(..))` over a real trace mix.
        let spec = WorkloadSpec::database().scaled(1, 32);
        let trace: Vec<TraceRecord> = TraceGenerator::new(&spec, 3).take(50_000).collect();
        let mut ref_fe = FrontEnd::new(&cfg());
        let mut fast_fe = FrontEnd::new(&cfg());
        for rec in &trace {
            let expected = encode(&ref_fe.resolve(rec)).unwrap_or((0, 0));
            assert_eq!(fast_fe.resolve_packed(rec), expected, "record {rec:?}");
        }
    }

    #[test]
    fn store_hit_after_store_miss_same_line() {
        let mut fe = FrontEnd::new(&cfg());
        let pc = Pc::new(0x7000);
        let st = TraceRecord::store(pc, Addr::new(0x80_0000));
        // Fetch resolves first (cold ifetch miss on record one).
        let first = fe.resolve(&st);
        assert!(matches!(first.op, ResolvedOp::StoreMiss { .. }));
        // Eager fill: the very next store to the same line hits L1D.
        let second = fe.resolve(&st);
        assert!(matches!(second.op, ResolvedOp::StoreHit { .. }));
        assert!(!second.ifetch_miss, "same fetch line");
    }

    use proptest::prelude::*;

    /// Random records over small pc/line pools, sized so both L1 hits
    /// and misses (and therefore every `ResolvedOp` kind) occur under
    /// `cfg()`'s tiny scaled-down geometries.
    fn arb_record() -> impl Strategy<Value = TraceRecord> {
        (0u32..100, 0u64..64, 0u64..96, 0u32..2).prop_map(|(kind, pcsel, line, flag)| {
            let pc = Pc::new(0x1_0000 + pcsel * 0x40 + 8);
            let addr = Addr::new(0x80_0000 + line * 64);
            let op = match kind % 6 {
                // Weight toward inert ALU work so real gaps form.
                0 | 1 => Op::Alu,
                2 => Op::Load {
                    addr,
                    feeds_mispredict: flag == 1,
                },
                3 => Op::Store { addr },
                4 => Op::Branch {
                    mispredicted: flag == 1,
                },
                _ => Op::Serialize,
            };
            TraceRecord::new(pc, op)
        })
    }

    proptest! {
        /// The packed stream is exactly `encode(resolve(..))` folded with
        /// the gap counter, every event decodes back to its `Resolved`,
        /// and the per-event record accounting sums to the trace length.
        #[test]
        fn packed_stream_round_trips_random_records(
            recs in proptest::collection::vec(arb_record(), 1..400),
        ) {
            let mut ref_fe = FrontEnd::new(&cfg());
            let mut fast_fe = FrontEnd::new(&cfg());
            let mut expected = Vec::new();
            let mut gap = 0u32;
            for rec in &recs {
                let r = ref_fe.resolve(rec);
                let packed = fast_fe.resolve_packed(rec);
                prop_assert_eq!(packed, encode(&r).unwrap_or((0, 0)), "record {:?}", rec);
                let (flags, dline) = packed;
                if flags == 0 {
                    gap += 1; // inert: absorbed into the next event's gap
                } else {
                    let ev = PreEvent { pc: rec.pc.get(), dline, gap, flags };
                    prop_assert_eq!(ev.decode(), Some(r), "decode round trip");
                    prop_assert_eq!(ev.records(), u64::from(gap) + 1);
                    expected.push(ev);
                    gap = 0;
                }
            }
            if gap > 0 {
                expected.push(PreEvent { pc: 0, dline: 0, gap, flags: 0 });
            }
            let stream = PreResolved::from_records(&cfg(), &recs);
            prop_assert_eq!(&stream.events, &expected);
            prop_assert_eq!(stream.records, recs.len() as u64);
            prop_assert_eq!(
                stream.events.iter().map(PreEvent::records).sum::<u64>(),
                recs.len() as u64,
                "event accounting must cover every trace record"
            );
            if let Some(last) = stream.events.last() {
                if last.flags == 0 {
                    prop_assert_eq!(last.decode(), None, "fillers carry no event");
                }
            }
        }

        /// Chunk boundaries are invisible: any split of the record stream
        /// across `push_chunk` calls yields the identical packed stream.
        #[test]
        fn chunking_is_invisible_in_the_packed_stream(
            recs in proptest::collection::vec(arb_record(), 1..300),
            cuts in proptest::collection::vec(0usize..300, 1..6),
        ) {
            let whole = PreResolved::from_records(&cfg(), &recs);
            let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (recs.len() + 1)).collect();
            cuts.sort_unstable();
            let mut pr = PreResolver::new(&cfg());
            let mut prev = 0;
            for c in cuts {
                pr.push_chunk(&recs[prev..c]);
                prev = c;
            }
            pr.push_chunk(&recs[prev..]);
            prop_assert_eq!(whole, pr.finish());
        }

        /// Gap-counter saturation: when the inert-run counter reaches
        /// `u32::MAX` mid-chunk, a pure filler is flushed and the counter
        /// restarts — with any short remainder flushed by `finish()`.
        #[test]
        fn gap_counter_saturation_flushes_an_overflow_filler(
            k in 1u32..4,
            extra in 0u32..5,
        ) {
            let mut pr = PreResolver::new(&cfg());
            let pc = Pc::new(0x5000);
            // Record one is a cold ifetch miss: one real event, gap 0.
            pr.push(&TraceRecord::alu(pc));
            prop_assert_eq!(pr.events.len(), 1);
            // Simulate a ~4 Gi inert run without pushing 4 Gi records:
            // the builder keeps no record history, only the counter.
            pr.gap = u32::MAX - k;
            for _ in 0..k + extra {
                pr.push(&TraceRecord::alu(pc)); // same fetch line: inert
            }
            let stream = pr.finish();
            let filler = stream.events[1];
            prop_assert_eq!(filler, PreEvent { pc: 0, dline: 0, gap: u32::MAX, flags: 0 });
            prop_assert_eq!(filler.decode(), None);
            prop_assert_eq!(filler.records(), u64::from(u32::MAX));
            if extra > 0 {
                prop_assert_eq!(stream.events.len(), 3, "trailing gap flushed by finish()");
                prop_assert_eq!(
                    stream.events[2],
                    PreEvent { pc: 0, dline: 0, gap: extra, flags: 0 }
                );
            } else {
                prop_assert_eq!(stream.events.len(), 2, "no trailing gap to flush");
            }
        }
    }
}
