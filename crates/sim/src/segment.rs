//! Segment-at-a-time and segment-parallel execution.
//!
//! The large trace tier cannot afford `run_preresolved`'s contract of
//! one materialized event stream per job. This module replays a job
//! from bounded [`PreBlock`]s instead, in three modes:
//!
//! * [`run_preresolved_blocks`] — **serial, exact**: one engine
//!   consumes blocks back to back. State handoff between segments is
//!   complete by construction (it is the same engine), so the result
//!   is byte-identical to replaying the unsplit stream; peak memory is
//!   O(block).
//! * [`run_pipelined`] — **two-stage pipeline, exact**: a producer
//!   thread generates the trace and pre-resolves it block by block
//!   into a small bounded channel while the consumer replays the back
//!   end. Same computation as the serial mode (the channel preserves
//!   order and the engine is continuous), with front-end and back-end
//!   work overlapped in wall-clock. The overlap win is bounded by the
//!   front end's share of the cost (~5-10%), so this mode buys
//!   exactness at O(segment) memory, not parallel speedup.
//! * [`run_scatter`] / [`run_scatter_with`] — **segment-parallel,
//!   documented tolerance**: blocks that intersect the measured region
//!   are handled by independent workers, each warming on the `overlap`
//!   preceding blocks from a cold engine, and the per-block statistic
//!   deltas are spliced with [`SimResult::accumulate`]. Handoff here is
//!   *incomplete* — a worker reconstructs cache/MSHR/prefetcher state
//!   by replaying the overlap window rather than receiving the exact
//!   state — so results approximate the monolithic run within a
//!   tolerance that shrinks as `overlap` grows (the equivalence battery
//!   pins the tolerance; DESIGN.md §3f has the rationale). Output is
//!   deterministic for a given (blocks, overlap) regardless of thread
//!   count and scheduling. This is the ≥2-worker configuration that
//!   beats a single worker on wall-clock: workers skip the serial
//!   replay of every block before their overlap window, so a long
//!   warm-up prefix — the bulk of a large-tier trace — costs each
//!   worker only its overlap replays.
//!
//! Budget arithmetic: `Engine::replay_events` consumes exactly
//! `min(budget, records remaining in the block)` instructions, so the
//! warm-up/measure boundary is tracked arithmetically without querying
//! the engine — including when the boundary lands mid-gap (the cursor
//! resumes from the exact record).

use std::borrow::Borrow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::TraceGenerator;

use crate::engine::Engine;
use crate::frontend::{PreBlock, PreResolver, ReplayCursor};
use crate::lockstep::Lockstep;
use crate::metrics::SimResult;
use crate::runner::{PrefetcherSpec, RunSpec};

/// Replays `blocks` back to back on one engine — byte-identical to
/// [`RunSpec::run_preresolved`] over the concatenated stream, with peak
/// memory bounded by the largest block (plus the engine).
///
/// `blocks` must cover at least `warmup + measure` records of the
/// spec's trace, resolved under `spec.sim`'s L1 geometries (the
/// harness enforces the geometry via the stream cache's canonical
/// string; [`crate::frontend::segment_events`] and
/// [`crate::frontend::PreResolver::split_block`] both preserve it).
pub fn run_preresolved_blocks<I, B>(spec: &RunSpec, blocks: I, pf: &PrefetcherSpec) -> SimResult
where
    I: IntoIterator<Item = B>,
    B: Borrow<PreBlock>,
{
    let mut engine = Engine::new(spec.sim, pf.build());
    let mut warm_left = spec.warmup_insts;
    let mut meas_left = spec.measure_insts;
    if warm_left == 0 {
        engine.reset_stats();
    }
    for block in blocks {
        let block = block.borrow();
        let mut cur = ReplayCursor::default();
        let mut block_left = block.records;
        if warm_left > 0 {
            let take = warm_left.min(block_left);
            engine.replay_events(&block.events, &mut cur, take);
            warm_left -= take;
            block_left -= take;
            if warm_left == 0 {
                engine.reset_stats();
            } else {
                continue;
            }
        }
        let take = meas_left.min(block_left);
        engine.replay_events(&block.events, &mut cur, take);
        meas_left -= take;
        if meas_left == 0 {
            break;
        }
    }
    engine.result(&spec.workload.name)
}

/// [`run_preresolved_blocks`] for a whole prefetcher roster in one
/// lockstep pass per block — each lane byte-identical to its own serial
/// block replay (and therefore to its monolithic replay), with the same
/// per-lane fault isolation as [`RunSpec::run_preresolved_many`].
pub fn run_preresolved_blocks_many<I, B>(
    spec: &RunSpec,
    blocks: I,
    pfs: &[PrefetcherSpec],
) -> Vec<Result<SimResult, String>>
where
    I: IntoIterator<Item = B>,
    B: Borrow<PreBlock>,
{
    let engines = pfs
        .iter()
        .map(|pf| Engine::new(spec.sim, pf.build()))
        .collect();
    let mut group = Lockstep::new(engines);
    let mut warm_left = spec.warmup_insts;
    let mut meas_left = spec.measure_insts;
    if warm_left == 0 {
        group.reset_stats();
    }
    for block in blocks {
        let block = block.borrow();
        let mut cur = ReplayCursor::default();
        let mut block_left = block.records;
        if warm_left > 0 {
            let take = warm_left.min(block_left);
            group.replay(&block.events, &mut cur, take);
            warm_left -= take;
            block_left -= take;
            if warm_left == 0 {
                group.reset_stats();
            } else {
                continue;
            }
        }
        let take = meas_left.min(block_left);
        group.replay(&block.events, &mut cur, take);
        meas_left -= take;
        if meas_left == 0 {
            break;
        }
    }
    group.results(&spec.workload.name)
}

/// Depth of the producer→consumer block channel: enough to hide
/// producer jitter, small enough that resident blocks stay O(segment).
const PIPELINE_DEPTH: usize = 2;

/// Two-stage pipelined run: a producer thread generates and
/// pre-resolves the trace in `seg_records` blocks; the calling thread
/// replays them as they arrive. Exact — same computation as
/// [`RunSpec::run_preresolved`] — with front-end and back-end work
/// overlapped and at most [`PIPELINE_DEPTH`] + 1 blocks resident.
pub fn run_pipelined(
    spec: &RunSpec,
    program: Arc<WorkloadProgram>,
    seg_records: u64,
    pf: &PrefetcherSpec,
) -> SimResult {
    assert!(seg_records > 0, "segment length must be at least 1 record");
    let total = spec.warmup_insts + spec.measure_insts;
    let (tx, rx) = mpsc::sync_channel::<PreBlock>(PIPELINE_DEPTH);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut gen = TraceGenerator::with_program(program, spec.workload.clone(), spec.seed);
            let mut pr = PreResolver::new(&spec.sim);
            let mut chunk = Vec::with_capacity(Engine::CHUNK_RECORDS);
            let mut left = total;
            while left > 0 {
                let room = seg_records - pr.pending_records();
                let want = (Engine::CHUNK_RECORDS as u64)
                    .min(left)
                    .min(room)
                    .try_into()
                    .unwrap_or(usize::MAX);
                let got = gen.next_chunk(&mut chunk, want);
                if got == 0 {
                    break;
                }
                pr.push_chunk(&chunk);
                left -= got as u64;
                if pr.pending_records() == seg_records && tx.send(pr.split_block()).is_err() {
                    return; // consumer hit its budget and hung up
                }
            }
            if pr.pending_records() > 0 {
                let _ = tx.send(pr.split_block());
            }
        });
        run_preresolved_blocks(spec, rx.iter(), pf)
    })
}

/// Segment-parallel scatter run over pre-cut blocks.
///
/// Every block whose records intersect the measured region is handled
/// by a worker that reconstructs warm state by replaying the `overlap`
/// preceding blocks (and the unmeasured prefix of its own block) on a
/// cold engine, then measures its block; the per-block deltas are
/// spliced in block order. Approximate — see the module docs — but
/// deterministic: the splice is ordered by block index, so the result
/// is independent of `threads` and scheduling.
///
/// # Panics
///
/// Panics if `threads` is zero or the blocks cover fewer than
/// `warmup + measure` records.
pub fn run_scatter(
    spec: &RunSpec,
    blocks: &[PreBlock],
    pf: &PrefetcherSpec,
    overlap: usize,
    threads: usize,
) -> SimResult {
    let records: Vec<u64> = blocks.iter().map(|b| b.records).collect();
    run_scatter_with(
        spec,
        &records,
        || |k: usize| &blocks[k],
        pf,
        overlap,
        threads,
    )
}

/// [`run_scatter`] over blocks fetched on demand instead of a
/// materialized slice, so the resident set stays O(segment × workers)
/// even when the block sequence itself would not fit in memory (a
/// 100× trace read back from a pre-resolved disk stream).
///
/// `block_records[k]` gives the record count of block `k` (streams
/// carry this in their index, so no block needs to be read to compute
/// the task set). `reader()` is called once per worker; the returned
/// closure must yield block `k` of the same logical stream for any
/// `k` a worker asks for — each worker holds at most one fetched block
/// at a time. [`run_scatter`] delegates here with a slice-borrowing
/// reader, so the two are splice-identical by construction.
///
/// # Panics
///
/// Panics if `threads` is zero or the blocks cover fewer than
/// `warmup + measure` records.
pub fn run_scatter_with<G, F, B>(
    spec: &RunSpec,
    block_records: &[u64],
    reader: G,
    pf: &PrefetcherSpec,
    overlap: usize,
    threads: usize,
) -> SimResult
where
    G: Fn() -> F + Sync,
    F: FnMut(usize) -> B,
    B: Borrow<PreBlock>,
{
    run_scatter_spans_with(
        spec,
        block_records,
        reader,
        pf,
        overlap,
        usize::MAX,
        threads,
    )
}

/// [`run_scatter_with`] with the splice granularity decoupled from the
/// block count: the blocks intersecting the measured region are
/// partitioned into at most `spans` contiguous spans, and each span is
/// one worker task — overlap warm-up replays once per *span*, then the
/// span's blocks replay continuously on the same engine (complete
/// handoff inside a span, exactly like the serial mode).
///
/// This is the knob that makes scatter profitable when the measured
/// region is wide: with one span per block, a region of `m` blocks
/// costs `m × (overlap + 1)` block replays — more than the serial
/// replay of the whole trace once `overlap + 1` exceeds the
/// trace-to-region ratio. A handful of spans costs
/// `m + spans × overlap` instead, while still skipping the serial
/// warm-up prefix that dominates a large-tier trace.
///
/// Fewer spans also means fewer cold-start seams, so the approximation
/// error only tightens as `spans` shrinks (at `spans == 1` with enough
/// overlap to reach the trace start, the run is the exact serial
/// replay). The result is deterministic for a given
/// `(blocks, overlap, spans)` — `threads` only changes wall-clock.
///
/// # Panics
///
/// Panics if `threads` or `spans` is zero or the blocks cover fewer
/// than `warmup + measure` records.
pub fn run_scatter_spans_with<G, F, B>(
    spec: &RunSpec,
    block_records: &[u64],
    reader: G,
    pf: &PrefetcherSpec,
    overlap: usize,
    spans: usize,
    threads: usize,
) -> SimResult
where
    G: Fn() -> F + Sync,
    F: FnMut(usize) -> B,
    B: Borrow<PreBlock>,
{
    assert!(threads > 0, "at least one worker");
    assert!(spans > 0, "at least one span");
    let covered: u64 = block_records.iter().sum();
    assert!(
        covered >= spec.warmup_insts + spec.measure_insts,
        "blocks cover {covered} records, spec needs {}",
        spec.warmup_insts + spec.measure_insts
    );
    // Absolute record offset of each block's first record.
    let starts: Vec<u64> = block_records
        .iter()
        .scan(0u64, |acc, r| {
            let s = *acc;
            *acc += r;
            Some(s)
        })
        .collect();
    let ws = spec.warmup_insts;
    let we = spec.warmup_insts + spec.measure_insts;
    // Blocks intersecting the measured region form one contiguous run.
    let measured: Vec<usize> = (0..block_records.len())
        .filter(|&k| starts[k] < we && starts[k] + block_records[k] > ws)
        .collect();
    let first = *measured.first().expect("at least one measured block");
    let n = measured.len();
    let spans_n = spans.min(n);
    // Near-equal contiguous partition of the measured run.
    let bounds: Vec<(usize, usize)> = (0..spans_n)
        .map(|i| (first + i * n / spans_n, first + (i + 1) * n / spans_n - 1))
        .collect();

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<SimResult>>> = Mutex::new(vec![None; bounds.len()]);
    let workers = threads.min(bounds.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut fetch = reader();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= bounds.len() {
                        return;
                    }
                    let (a, b) = bounds[t];
                    let mut engine = Engine::new(spec.sim, pf.build());
                    for j in a.saturating_sub(overlap)..a {
                        let block = fetch(j);
                        let block = block.borrow();
                        let mut cur = ReplayCursor::default();
                        engine.replay_events(&block.events, &mut cur, block.records);
                    }
                    let mut measuring = starts[a] >= ws;
                    if measuring {
                        engine.reset_stats();
                    }
                    for k in a..=b {
                        let block = fetch(k);
                        let block = block.borrow();
                        let mut cur = ReplayCursor::default();
                        let mut off = starts[k];
                        let mut left = block_records[k];
                        if !measuring {
                            // Only the first span can start pre-warm-up,
                            // and the prefix always ends inside it (the
                            // block intersects the measured region).
                            let prefix = ws - off;
                            engine.replay_events(&block.events, &mut cur, prefix);
                            off += prefix;
                            left -= prefix;
                            engine.reset_stats();
                            measuring = true;
                        }
                        let take = (we - off).min(left);
                        engine.replay_events(&block.events, &mut cur, take);
                        if off + take == we {
                            break;
                        }
                    }
                    slots.lock().expect("scatter slots")[t] =
                        Some(engine.result(&spec.workload.name));
                }
            });
        }
    });

    let parts = slots.into_inner().expect("scatter slots");
    let mut it = parts.into_iter().map(|r| r.expect("worker filled slot"));
    let mut total = it.next().expect("at least one span");
    for part in it {
        total.accumulate(&part);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::frontend::segment_events;
    use ebcp_core::EbcpConfig;
    use ebcp_prefetch::BaselineConfig;
    use ebcp_trace::WorkloadSpec;

    fn quick_spec() -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::database().scaled(1, 32),
            seed: 11,
            warmup_insts: 60_000,
            measure_insts: 60_000,
            sim: SimConfig::scaled_down(16),
        }
    }

    fn roster() -> Vec<PrefetcherSpec> {
        vec![
            PrefetcherSpec::None,
            PrefetcherSpec::baseline(
                "ghb-large",
                BaselineConfig::Ghb(ebcp_prefetch::GhbConfig::large()),
            ),
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()),
        ]
    }

    #[test]
    fn block_replay_is_exact_for_odd_segment_lengths() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        for pf in roster() {
            let mono = spec.run_preresolved(&pre, &pf);
            // Segment lengths chosen to land boundaries mid-gap, on
            // events, and at the warm-up boundary's own block.
            for seg in [977, 4096, 60_000, 59_999, 1_000_000] {
                let blocks = segment_events(&pre, seg);
                let spliced = run_preresolved_blocks(&spec, &blocks, &pf);
                assert_eq!(mono, spliced, "{} with seg {seg}", pf.name());
            }
        }
    }

    #[test]
    fn segment_events_preserves_record_accounting() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        for seg in [1, 977, 120_000, 120_001] {
            let blocks = segment_events(&pre, seg);
            assert_eq!(blocks.iter().map(|b| b.records).sum::<u64>(), pre.records);
            for (k, b) in blocks.iter().enumerate() {
                let by_events: u64 = b.events.iter().map(crate::PreEvent::records).sum();
                assert_eq!(by_events, b.records, "block {k} of seg {seg}");
                if k + 1 < blocks.len() {
                    assert_eq!(b.records, seg, "only the tail may run short");
                }
            }
        }
    }

    #[test]
    fn lockstep_block_replay_matches_serial() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let pfs = roster();
        let blocks = segment_events(&pre, 7_001);
        let lock = run_preresolved_blocks_many(&spec, &blocks, &pfs);
        for (pf, l) in pfs.iter().zip(&lock) {
            assert_eq!(
                spec.run_preresolved(&pre, pf),
                *l.as_ref().unwrap(),
                "lane {}",
                pf.name()
            );
        }
    }

    #[test]
    fn pipelined_matches_monolithic() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let program = Arc::new(WorkloadProgram::build(&spec.workload));
        for pf in roster() {
            let mono = spec.run_preresolved(&pre, &pf);
            let piped = run_pipelined(&spec, Arc::clone(&program), 9_973, &pf);
            assert_eq!(mono, piped, "{}", pf.name());
        }
    }

    #[test]
    fn scatter_is_deterministic_and_close() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let pf = PrefetcherSpec::Ebcp(EbcpConfig::tuned());
        let mono = spec.run_preresolved(&pre, &pf);
        let blocks = segment_events(&pre, 15_000);
        // Overlap must cover the 60k-record warm-up (4 blocks) for the
        // reconstruction to be faithful at this tiny scale; measured
        // error is then ~1.5% (overlap 1 leaves ~22% cold-start error —
        // the convergence table lives in DESIGN.md §3f).
        let a = run_scatter(&spec, &blocks, &pf, 4, 4);
        let b = run_scatter(&spec, &blocks, &pf, 4, 1);
        assert_eq!(a, b, "scatter must not depend on worker count");
        assert_eq!(a.insts, spec.measure_insts, "splice covers the region");
        let rel = (a.cpi() - mono.cpi()).abs() / mono.cpi();
        assert!(
            rel < 0.05,
            "scatter CPI {:.4} vs monolithic {:.4} ({:.1}% off)",
            a.cpi(),
            mono.cpi(),
            rel * 100.0
        );
    }

    #[test]
    fn scatter_with_on_demand_reader_matches_slice_scatter() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let pf = PrefetcherSpec::Ebcp(EbcpConfig::tuned());
        let blocks = segment_events(&pre, 15_000);
        let records: Vec<u64> = blocks.iter().map(|b| b.records).collect();
        let by_slice = run_scatter(&spec, &blocks, &pf, 4, 4);
        // An owning reader that clones each block on demand stands in
        // for a disk-backed stream reopened per worker.
        let by_fetch =
            run_scatter_with(&spec, &records, || |k: usize| blocks[k].clone(), &pf, 4, 2);
        assert_eq!(by_slice, by_fetch);
    }

    #[test]
    fn span_scatter_specializes_to_per_block_scatter_and_tightens_with_fewer_spans() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let pf = PrefetcherSpec::Ebcp(EbcpConfig::tuned());
        let mono = spec.run_preresolved(&pre, &pf);
        let blocks = segment_events(&pre, 15_000);
        let records: Vec<u64> = blocks.iter().map(|b| b.records).collect();
        let per_block = run_scatter(&spec, &blocks, &pf, 4, 4);
        // One span per measured block is exactly the per-block mode.
        let max_spans = run_scatter_spans_with(
            &spec,
            &records,
            || |k: usize| &blocks[k],
            &pf,
            4,
            usize::MAX,
            4,
        );
        assert_eq!(per_block, max_spans);
        // Fewer spans: deterministic across thread counts, and at
        // least as close to the monolithic run (fewer cold seams).
        let spans2_a =
            run_scatter_spans_with(&spec, &records, || |k: usize| &blocks[k], &pf, 4, 2, 4);
        let spans2_b =
            run_scatter_spans_with(&spec, &records, || |k: usize| &blocks[k], &pf, 4, 2, 1);
        assert_eq!(
            spans2_a, spans2_b,
            "span scatter must not depend on worker count"
        );
        assert_eq!(
            spans2_a.insts, spec.measure_insts,
            "splice covers the region"
        );
        let err = |r: &SimResult| (r.cpi() - mono.cpi()).abs() / mono.cpi();
        assert!(
            err(&spans2_a) <= err(&per_block) + 1e-9,
            "fewer seams, no worse: {:.4} vs {:.4}",
            err(&spans2_a),
            err(&per_block)
        );
        // One span warmed all the way back to the trace start replays
        // the exact monolithic history.
        let full = run_scatter_spans_with(
            &spec,
            &records,
            || |k: usize| &blocks[k],
            &pf,
            blocks.len(),
            1,
            4,
        );
        assert_eq!(full, mono, "one fully-overlapped span is exact");
    }

    #[test]
    fn scatter_overlap_tightens_the_approximation() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let pf = PrefetcherSpec::None;
        let mono = spec.run_preresolved(&pre, &pf);
        let blocks = segment_events(&pre, 10_000);
        let err = |overlap| {
            let r = run_scatter(&spec, &blocks, &pf, overlap, 4);
            (r.cpi() - mono.cpi()).abs() / mono.cpi()
        };
        // With the whole prefix as overlap the handoff is complete:
        // every worker replays exactly the monolithic history.
        let full = run_scatter(&spec, &blocks, &pf, blocks.len(), 4);
        assert_eq!(full, mono, "full overlap is exact");
        assert!(err(2) <= err(0) + 1e-9, "more overlap, no worse");
    }
}
