//! Simulation results and derived metrics.

use ebcp_mem::MemStats;
use ebcp_types::{Cycle, MemClass};
use serde::{Deserialize, Serialize};

/// Raw and derived results of one simulation run (measurement phase
/// only; warm-up is excluded).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Workload name.
    pub workload: String,
    /// Instructions measured.
    pub insts: u64,
    /// Cycles elapsed over the measurement.
    pub cycles: Cycle,
    /// Epochs observed.
    pub epochs: u64,
    /// Off-chip demand instruction misses.
    pub l2_inst_misses: u64,
    /// Off-chip demand load misses.
    pub l2_load_misses: u64,
    /// Off-chip store write-allocates.
    pub l2_store_misses: u64,
    /// Demand misses that merged into an already-outstanding MSHR
    /// (secondary misses; consume no new register, create no epoch).
    pub secondary_misses: u64,
    /// Instruction misses averted by prefetch-buffer hits.
    pub averted_inst: u64,
    /// Load misses averted by prefetch-buffer hits.
    pub averted_load: u64,
    /// Store accesses served from the prefetch buffer.
    pub averted_store: u64,
    /// Demand misses whose latency was partially hidden by an in-flight
    /// prefetch to the same line.
    pub partial_hits: u64,
    /// Prefetch requests the prefetcher asked for, before the engine's
    /// filter / MSHR / bus gates (`pf_issued + pf_filtered +
    /// pf_dropped_mshr + pf_dropped_bus`).
    pub pf_requested: u64,
    /// Prefetches issued to memory.
    pub pf_issued: u64,
    /// Prefetches dropped by bus saturation.
    pub pf_dropped_bus: u64,
    /// Prefetches dropped for want of an MSHR.
    pub pf_dropped_mshr: u64,
    /// Prefetch requests filtered (already cached / buffered / in
    /// flight).
    pub pf_filtered: u64,
    /// Prefetched lines evicted from the buffer unused.
    pub pf_evicted_unused: u64,
    /// Predictor table reads issued.
    pub table_reads: u64,
    /// Predictor table reads dropped (saturation).
    pub table_read_drops: u64,
    /// Predictor table writes issued.
    pub table_writes: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
    /// Store write-allocates skipped because MSHRs were exhausted (the
    /// store buffer absorbs the write; no fill happens).
    pub store_skipped: u64,
    /// Cycles spent stalled on off-chip miss groups.
    pub stall_cycles: Cycle,
    /// Bus/memory traffic statistics.
    pub mem: MemStats,
}

impl SimResult {
    /// Adds `other`'s counters into `self`, keeping `self`'s names —
    /// the splice operation of segment-parallel execution. Every
    /// statistic is an additive event/cycle count (the ratios above are
    /// all derived on demand), so splicing per-segment deltas
    /// reconstructs the monolithic result exactly when the per-segment
    /// runs partition the measured records.
    pub fn accumulate(&mut self, other: &SimResult) {
        self.insts += other.insts;
        self.cycles += other.cycles;
        self.epochs += other.epochs;
        self.l2_inst_misses += other.l2_inst_misses;
        self.l2_load_misses += other.l2_load_misses;
        self.l2_store_misses += other.l2_store_misses;
        self.secondary_misses += other.secondary_misses;
        self.averted_inst += other.averted_inst;
        self.averted_load += other.averted_load;
        self.averted_store += other.averted_store;
        self.partial_hits += other.partial_hits;
        self.pf_requested += other.pf_requested;
        self.pf_issued += other.pf_issued;
        self.pf_dropped_bus += other.pf_dropped_bus;
        self.pf_dropped_mshr += other.pf_dropped_mshr;
        self.pf_filtered += other.pf_filtered;
        self.pf_evicted_unused += other.pf_evicted_unused;
        self.table_reads += other.table_reads;
        self.table_read_drops += other.table_read_drops;
        self.table_writes += other.table_writes;
        self.writebacks += other.writebacks;
        self.store_skipped += other.store_skipped;
        self.stall_cycles += other.stall_cycles;
        self.mem.accumulate(&other.mem);
    }

    /// Overall cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insts as f64
        }
    }

    /// Epochs per 1000 instructions (Table 1's second row).
    pub fn epi_per_kilo(&self) -> f64 {
        per_kilo(self.epochs, self.insts)
    }

    /// L2 instruction misses per 1000 instructions.
    pub fn inst_mr(&self) -> f64 {
        per_kilo(self.l2_inst_misses, self.insts)
    }

    /// L2 load misses per 1000 instructions.
    pub fn load_mr(&self) -> f64 {
        per_kilo(self.l2_load_misses, self.insts)
    }

    /// Secondary (MSHR-merged) misses per 1000 instructions.
    pub fn secondary_mr(&self) -> f64 {
        per_kilo(self.secondary_misses, self.insts)
    }

    /// Fraction of prefetch requests that survived the engine's gates
    /// and reached memory (`pf_issued / pf_requested`).
    pub fn pf_issue_rate(&self) -> f64 {
        ratio(self.pf_issued, self.pf_requested)
    }

    /// Mean off-chip misses per epoch.
    pub fn mlp(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            (self.l2_inst_misses + self.l2_load_misses) as f64 / self.epochs as f64
        }
    }

    /// Useful prefetches: demand accesses served by the prefetch buffer.
    pub fn pf_useful(&self) -> u64 {
        self.averted_inst + self.averted_load + self.averted_store
    }

    /// Coverage: fraction of would-be off-chip misses averted by the
    /// prefetcher (Figure 5).
    pub fn coverage(&self) -> f64 {
        let averted = self.averted_inst + self.averted_load;
        let total = averted + self.l2_inst_misses + self.l2_load_misses;
        ratio(averted, total)
    }

    /// Instruction-miss coverage.
    pub fn coverage_inst(&self) -> f64 {
        ratio(self.averted_inst, self.averted_inst + self.l2_inst_misses)
    }

    /// Load-miss coverage.
    pub fn coverage_load(&self) -> f64 {
        ratio(self.averted_load, self.averted_load + self.l2_load_misses)
    }

    /// Accuracy: fraction of issued prefetches that were used (Figure 5).
    pub fn accuracy(&self) -> f64 {
        ratio(self.pf_useful(), self.pf_issued)
    }

    /// Overall performance improvement over `baseline`
    /// (speedup − 1, the paper's primary metric).
    pub fn improvement_over(&self, baseline: &SimResult) -> f64 {
        if self.cpi() == 0.0 {
            0.0
        } else {
            baseline.cpi() / self.cpi() - 1.0
        }
    }

    /// EPI reduction relative to `baseline` (Figure 5).
    pub fn epi_reduction_over(&self, baseline: &SimResult) -> f64 {
        let (b, s) = (baseline.epi_per_kilo(), self.epi_per_kilo());
        if b == 0.0 {
            0.0
        } else {
            1.0 - s / b
        }
    }

    /// Read-bus utilization over the measured cycles.
    pub fn read_bus_utilization(&self) -> f64 {
        ratio(self.mem.read.busy_total(), self.cycles)
    }

    /// Write-bus utilization over the measured cycles.
    pub fn write_bus_utilization(&self) -> f64 {
        ratio(self.mem.write.busy_total(), self.cycles)
    }

    /// Read-bus cycles consumed by prefetch + table traffic.
    pub fn overhead_read_cycles(&self) -> u64 {
        self.mem.read.busy_for(MemClass::Prefetch) + self.mem.read.busy_for(MemClass::TableRead)
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<12} cpi={:<6.3} epi/1k={:<5.2} instMR={:<5.2} loadMR={:<5.2} secMR={:<5.2} cov={:<5.1}% acc={:<5.1}% pfReq={}",
            self.workload,
            self.prefetcher,
            self.cpi(),
            self.epi_per_kilo(),
            self.inst_mr(),
            self.load_mr(),
            self.secondary_mr(),
            self.coverage() * 100.0,
            self.accuracy() * 100.0,
            self.pf_requested,
        )
    }
}

fn per_kilo(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 * 1000.0 / d as f64
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            insts: 1_000_000,
            cycles: 2_000_000,
            epochs: 3_000,
            l2_inst_misses: 1_000,
            l2_load_misses: 4_000,
            averted_inst: 1_000,
            averted_load: 4_000,
            pf_issued: 20_000,
            ..SimResult::default()
        }
    }

    #[test]
    fn cpi_and_epi() {
        let r = sample();
        assert_eq!(r.cpi(), 2.0);
        assert_eq!(r.epi_per_kilo(), 3.0);
        assert_eq!(r.inst_mr(), 1.0);
        assert_eq!(r.load_mr(), 4.0);
    }

    #[test]
    fn coverage_and_accuracy() {
        let r = sample();
        assert_eq!(r.coverage(), 0.5);
        assert_eq!(r.coverage_inst(), 0.5);
        assert_eq!(r.coverage_load(), 0.5);
        assert_eq!(r.accuracy(), 0.25);
    }

    #[test]
    fn improvement_math() {
        let base = SimResult {
            insts: 1000,
            cycles: 3000,
            ..SimResult::default()
        };
        let faster = SimResult {
            insts: 1000,
            cycles: 2400,
            ..SimResult::default()
        };
        let imp = faster.improvement_over(&base);
        assert!((imp - 0.25).abs() < 1e-12, "3.0/2.4 - 1 = 0.25, got {imp}");
    }

    #[test]
    fn epi_reduction() {
        let base = SimResult {
            insts: 1000,
            epochs: 4,
            ..SimResult::default()
        };
        let better = SimResult {
            insts: 1000,
            epochs: 3,
            ..SimResult::default()
        };
        assert!((better.epi_reduction_over(&base) - 0.25).abs() < 1e-12);
    }

    /// Every derived metric must yield a finite 0.0 — never NaN or
    /// inf — on an empty run (all counters zero). NaN here would leak
    /// into the report tables and `results.json`.
    #[test]
    fn zero_denominators_are_safe() {
        let r = SimResult::default();
        for (name, v) in [
            ("cpi", r.cpi()),
            ("epi_per_kilo", r.epi_per_kilo()),
            ("inst_mr", r.inst_mr()),
            ("load_mr", r.load_mr()),
            ("secondary_mr", r.secondary_mr()),
            ("pf_issue_rate", r.pf_issue_rate()),
            ("mlp", r.mlp()),
            ("coverage", r.coverage()),
            ("coverage_inst", r.coverage_inst()),
            ("coverage_load", r.coverage_load()),
            ("accuracy", r.accuracy()),
            ("improvement_over", r.improvement_over(&r)),
            ("epi_reduction_over", r.epi_reduction_over(&r)),
            ("read_bus_utilization", r.read_bus_utilization()),
            ("write_bus_utilization", r.write_bus_utilization()),
        ] {
            assert!(v.is_finite(), "{name} must be finite on an empty run");
            assert_eq!(v, 0.0, "{name} must be 0.0 on an empty run");
        }
    }

    /// Nonzero numerators over zero denominators — a miss-free run
    /// (zero epochs, zero issued prefetches, zero instructions counted)
    /// that still accumulated other counters — must also stay at 0.0
    /// rather than dividing through to inf.
    #[test]
    fn nonzero_over_zero_is_still_zero() {
        let r = SimResult {
            insts: 0,
            cycles: 5_000,
            epochs: 0,
            l2_inst_misses: 7,
            l2_load_misses: 9,
            secondary_misses: 3,
            pf_requested: 0,
            pf_issued: 0,
            averted_inst: 0,
            averted_load: 0,
            ..SimResult::default()
        };
        assert_eq!(r.cpi(), 0.0, "cycles without instructions");
        assert_eq!(r.epi_per_kilo(), 0.0);
        assert_eq!(r.inst_mr(), 0.0, "misses without instructions");
        assert_eq!(r.load_mr(), 0.0);
        assert_eq!(r.secondary_mr(), 0.0);
        assert_eq!(r.mlp(), 0.0, "misses without epochs");
        assert_eq!(r.pf_issue_rate(), 0.0);
        assert_eq!(r.accuracy(), 0.0, "no prefetch was ever issued");
        // A healthy result compared against a degenerate baseline stays
        // finite (baseline cpi 0 / healthy cpi 2 − 1 = −1), and the
        // degenerate side guards its own zero cpi to 0.0.
        let healthy = sample();
        assert_eq!(healthy.improvement_over(&r), -1.0);
        assert_eq!(r.improvement_over(&healthy), 0.0, "degenerate self guards");
        assert_eq!(healthy.epi_reduction_over(&r), 0.0, "baseline epi is zero");
        // And the rendered summary carries no NaN/inf text.
        let s = r.summary();
        assert!(!s.contains("NaN") && !s.contains("inf"), "{s}");
    }

    #[test]
    fn summary_mentions_key_metrics() {
        let s = sample().summary();
        assert!(s.contains("cpi="));
        assert!(s.contains("cov="));
        assert!(s.contains("secMR="));
        assert!(s.contains("pfReq="));
    }

    #[test]
    fn secondary_and_request_metrics() {
        let r = SimResult {
            insts: 1_000_000,
            secondary_misses: 2_000,
            pf_requested: 40_000,
            pf_issued: 10_000,
            ..SimResult::default()
        };
        assert_eq!(r.secondary_mr(), 2.0);
        assert_eq!(r.pf_issue_rate(), 0.25);
    }
}
