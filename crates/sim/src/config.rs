//! Machine configuration (§4.4 of the paper).

use ebcp_mem::{CacheGeometry, MemConfig};
use ebcp_types::Cycle;
use serde::{Deserialize, Serialize};

/// Core timing parameters.
///
/// The trace-driven epoch model charges on-chip time analytically:
/// issue slots, exposed L2-hit latency for L1 misses, and branch
/// mispredictions. Off-chip time emerges from the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions issued per cycle (§4.4: 4-wide).
    pub issue_width: u32,
    /// Reorder-buffer entries — the miss window's reach (§4.4: 128).
    pub rob_entries: u32,
    /// Exposed (charged) cycles for an L1 miss that hits the L2 or the
    /// prefetch buffer. The raw L2 hit latency is 20 cycles; part of it
    /// overlaps with out-of-order execution, so less is charged.
    pub l2_hit_exposed: Cycle,
    /// Pipeline-refill penalty of a mispredicted branch.
    pub mispredict_penalty: Cycle,
    /// Instructions the window survives after a load that feeds a
    /// mispredicted branch misses off-chip (§2.1 termination condition).
    pub dep_branch_window: u32,
    /// Cycles charged for a serializing instruction with no misses
    /// outstanding.
    pub serialize_cost: Cycle,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            issue_width: 4,
            rob_entries: 128,
            l2_hit_exposed: 12,
            mispredict_penalty: 13,
            dep_branch_window: 6,
            serialize_cost: 5,
        }
    }
}

/// Full machine configuration.
///
/// # Examples
///
/// ```
/// use ebcp_sim::SimConfig;
/// let paper = SimConfig::paper_default();
/// assert_eq!(paper.l2.size_bytes(), 2 << 20);
/// let quick = SimConfig::scaled_down(4);
/// assert_eq!(quick.l2.size_bytes(), (2 << 20) / 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core timing.
    pub core: CoreConfig,
    /// L1 instruction cache (32 KB 4-way).
    pub l1i: CacheGeometry,
    /// L1 data cache (32 KB 4-way).
    pub l1d: CacheGeometry,
    /// Shared L2 (2 MB 4-way).
    pub l2: CacheGeometry,
    /// L2 MSHRs (32) — bounds demand + prefetch lines in flight.
    pub mshrs: usize,
    /// Prefetch-buffer entries (tuned: 64).
    pub pbuf_entries: usize,
    /// Prefetch-buffer associativity (4).
    pub pbuf_ways: usize,
    /// Main memory and buses.
    pub mem: MemConfig,
}

impl SimConfig {
    /// The paper's default processor configuration (§4.4).
    pub fn paper_default() -> Self {
        SimConfig {
            core: CoreConfig::default(),
            l1i: CacheGeometry::new(32 << 10, 4),
            l1d: CacheGeometry::new(32 << 10, 4),
            l2: CacheGeometry::new(2 << 20, 4),
            mshrs: 32,
            pbuf_entries: 64,
            pbuf_ways: 4,
            mem: MemConfig::default(),
        }
    }

    /// A proportionally scaled machine for faster experiments: caches are
    /// divided by `factor` (workloads must be scaled by the same factor
    /// via [`WorkloadSpec::scaled`] to keep footprint-to-cache ratios —
    /// and hence Table 1's per-instruction statistics — intact). Memory
    /// timing, buses, MSHRs and the prefetch buffer are untouched.
    ///
    /// [`WorkloadSpec::scaled`]: ebcp_trace::WorkloadSpec::scaled
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is a power of two that keeps every cache at
    /// least one set.
    pub fn scaled_down(factor: u64) -> Self {
        assert!(factor.is_power_of_two(), "factor must be a power of two");
        let base = Self::paper_default();
        SimConfig {
            l1i: CacheGeometry::new((32 << 10) / factor, 4),
            l1d: CacheGeometry::new((32 << 10) / factor, 4),
            l2: CacheGeometry::new((2 << 20) / factor, 4),
            ..base
        }
    }

    /// The Figure 8 bandwidth sweep: both buses scaled to `num/den` of
    /// the default (9.6/4.8 GB/s).
    #[must_use]
    pub fn with_bandwidth(mut self, num: u64, den: u64) -> Self {
        self.mem = self.mem.scaled_bandwidth(num, den);
        self
    }

    /// Replaces the prefetch-buffer entry count (Figure 7 sweep).
    #[must_use]
    pub fn with_pbuf_entries(mut self, entries: usize) -> Self {
        self.pbuf_entries = entries;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table() {
        let c = SimConfig::paper_default();
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.core.rob_entries, 128);
        assert_eq!(c.l1i.size_bytes(), 32 << 10);
        assert_eq!(c.l1d.ways(), 4);
        assert_eq!(c.l2.size_bytes(), 2 << 20);
        assert_eq!(c.mshrs, 32);
        assert_eq!(c.pbuf_entries, 64);
        assert_eq!(c.mem.latency, 500);
    }

    #[test]
    fn scaling_divides_caches_only() {
        let q = SimConfig::scaled_down(4);
        assert_eq!(q.l2.size_bytes(), 512 << 10);
        assert_eq!(q.l1d.size_bytes(), 8 << 10);
        assert_eq!(q.mem.latency, 500);
        assert_eq!(q.mshrs, 32);
    }

    #[test]
    fn bandwidth_sweep_configs() {
        let low = SimConfig::paper_default().with_bandwidth(1, 3);
        assert_eq!(low.mem.read_bus.line_transfer_cycles(), 60);
        let mid = SimConfig::paper_default().with_bandwidth(2, 3);
        assert_eq!(mid.mem.read_bus.line_transfer_cycles(), 30);
    }

    #[test]
    fn pbuf_override() {
        let c = SimConfig::paper_default().with_pbuf_entries(1024);
        assert_eq!(c.pbuf_entries, 1024);
    }
}
