//! The chip-multiprocessor engine — the paper's §6 future work — as a
//! discrete-event simulator.
//!
//! N cores, each with its own miss window / epoch tracker, share the
//! L2, the prefetch buffer, the MSHR file, the memory system and one
//! prefetcher. Every demand miss is reported with its core id: the
//! on-chip prefetcher control sits in front of the core-to-L2 crossbar
//! (§3.2, Figure 2), so EBCP keeps per-core EMABs over a *shared*
//! correlation table, while a memory-side scheme such as Solihin's
//! observes only the interleaved stream arriving at the controller —
//! the very situation §3.3.1 argues destroys its correlations.
//!
//! # Discrete-event scheduling
//!
//! The engine is event-driven over a [`WakeHeap`] of `(next_tick,
//! component_id)` wake-ups — one component per core, with the uncore
//! (bus/DRAM/table completions) as an implicit extra component whose
//! wake-up (`next_ev_at`) is compared against the heap head. Each core
//! consumes a pre-resolved [`PreEvent`] stream (the prefetcher-
//! independent L1 front end runs once, in [`crate::frontend`], and is
//! shared across the whole prefetcher roster); between two wake-ups the
//! core advances *algebraically* over all its core-local records
//! ([`advance_core_inert`]), never stepping them one by one.
//!
//! ## Why this is metric-identical to record stepping
//!
//! The stepping oracle (`crate::cmp_stepping`, test-only) always steps
//! the core with the smallest local clock, ties to the lowest index, so
//! records execute in ascending `(pre-record clock, core index)` order
//! — exactly the heap order here. The collapse is exact because:
//!
//! * a record is *core-local* iff it touches nothing shared: gap
//!   records (L1 hits, ALU, predicted branches), and — with no miss
//!   window open — mispredicted branches and serializing instructions.
//!   Local records commute with every shared interaction, so executing
//!   them early (at the collapse) is invisible;
//! * everything else *yields*: the record becomes the core's next
//!   wake-up and runs through the full per-record machinery
//!   ([`CmpEngine::exec_one`]), a verbatim transcription of the
//!   oracle's `step_core`. Under an open window, the `gap_advance`
//!   deadline algebra bounds the collapse (first outstanding-miss
//!   completion, ROB fill, dependence countdown) so the deadline record
//!   itself always yields; warm-up crossing records always yield so the
//!   shared-counter snapshot lands at the oracle's exact global
//!   position;
//! * uncore completions drain at the head of the loop whenever
//!   `next_ev_at <=` the next yield tick — the oracle drains them in
//!   each record's pre-op, and handlers take their own `ev.at` as
//!   `now`, so only the *order* relative to shared interactions matters
//!   (preserved by the comparison; the uncore wins ties, as the
//!   oracle's pre-op drain runs before the record body). After the heap
//!   empties, trailing local records still drain matured events in the
//!   oracle — up to the last consumed record's pre-clock — which the
//!   residual drain reproduces via the per-core `last_pre` watermark.
//!
//! One deliberate non-observable: the `StoreFill` drain stamps its
//! (rare) dirty-eviction writeback with core 0's clock, which differs
//! here because core 0 may have collapsed ahead — but writebacks ride
//! the *write* bus, whose outcome is discarded and whose state never
//! reaches a [`CmpResult`]. The differential battery
//! (`crates/bench/tests/cmp_des.rs`) pins full-roster metric identity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ebcp_core::EpochTracker;
use ebcp_mem::{MemOutcome, MemorySystem, MshrFile, PrefetchBuffer, SetAssocCache};
use ebcp_prefetch::{Action, MissInfo, PrefetchHitInfo, Prefetcher};
use ebcp_trace::TraceRecord;
use ebcp_types::{AccessKind, Cycle, FxHashMap, LineAddr, MemClass, Pc};

use crate::config::SimConfig;
use crate::des::WakeHeap;
use crate::frontend::{
    PreEvent, PreResolved, PreResolver, F_IFETCH_MISS, K_LOAD, K_LOAD_FEEDS, K_MISPREDICT, K_NONE,
    K_SERIALIZE, K_SHIFT, K_STORE_HIT, K_STORE_MISS,
};
use crate::metrics::SimResult;

/// Per-core measurement results plus the shared-traffic aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpResult {
    /// One result per core (shared traffic counters are zero here; see
    /// `aggregate`).
    pub cores: Vec<SimResult>,
    /// Workload-wide aggregate: instruction/cycle sums, prefetch and
    /// table traffic, memory statistics.
    pub aggregate: SimResult,
}

impl CmpResult {
    /// Mean per-core CPI.
    pub fn mean_cpi(&self) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.cores.iter().map(|r| r.cpi()).sum::<f64>() / self.cores.len() as f64
        }
    }

    /// Mean per-core improvement over a baseline CMP run.
    pub fn improvement_over(&self, base: &CmpResult) -> f64 {
        if self.mean_cpi() == 0.0 {
            0.0
        } else {
            base.mean_cpi() / self.mean_cpi() - 1.0
        }
    }

    /// Aggregate prefetch coverage.
    pub fn coverage(&self) -> f64 {
        self.aggregate.coverage()
    }
}

#[derive(Debug, Clone, Copy)]
struct Outst {
    line: LineAddr,
    done: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    TableDone { token: u64 },
    PrefetchArrive { line: LineAddr, origin: u64 },
    StoreFill { line: LineAddr },
}

#[derive(Debug, Clone, Copy, Eq)]
struct Ev {
    at: Cycle,
    seq: u64,
    kind: EvKind,
}

/// Heap ordering key: `(at, seq)` — `seq` is unique per engine.
/// Equality must match `Ord` (the derived `PartialEq` also compared
/// `kind`, letting `a == b` disagree with `a.cmp(&b) == Equal` and
/// violating the contract `BinaryHeap` relies on).
impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CoreCounters {
    inst_misses: u64,
    load_misses: u64,
    store_misses: u64,
    secondary_misses: u64,
    store_skipped: u64,
    averted_inst: u64,
    averted_load: u64,
    averted_store: u64,
    partial_hits: u64,
    stall_cycles: Cycle,
}

/// One core component: the back-end state of the oracle's `Core` (the
/// L1s and fetch-line filter moved into the pre-resolve pass) plus the
/// replay cursor into its stream and the `last_pre` watermark — the
/// pre-record clock of the most recently consumed record, which the
/// residual event drain needs.
struct Core {
    id: u8,
    epoch: EpochTracker,
    cycle: Cycle,
    issue_slots: u32,
    insts: u64,
    outstanding: Vec<Outst>,
    window_insts: u32,
    dep_countdown: Option<u32>,
    c: CoreCounters,
    cycle_base: Cycle,
    insts_base: u64,
    idx: usize,
    gap_done: u32,
    last_pre: Cycle,
}

/// Arithmetically applies `k` provably-local records to one core:
/// instruction count, issue clock, `last_pre` watermark and (inside a
/// window) the window-instruction count and dependence countdown. The
/// caller guarantees none of the `k` records is a yield (deadline /
/// warm-up crossing / shared interaction).
///
/// `issue_slots` is always `insts % issue_width`, so the clock at the
/// start of the j-th upcoming record (0-indexed) is
/// `cycle + (issue_slots + j) / width` — the collapse is pure
/// arithmetic, identical to stepping the records one by one.
#[inline]
fn advance_core_inert(core: &mut Core, k: u64, w: u64) {
    debug_assert!(k > 0);
    let slots = u64::from(core.issue_slots);
    core.last_pre = core.cycle + (slots + k - 1) / w;
    core.insts += k;
    let s = slots + k;
    core.cycle += s / w;
    core.issue_slots = (s % w) as u32;
    if !core.outstanding.is_empty() {
        core.window_insts += k as u32;
        if let Some(cd) = core.dep_countdown {
            core.dep_countdown = Some(cd - k as u32);
        }
    }
}

/// The N-core shared-L2 engine, discrete-event scheduled.
pub struct CmpEngine {
    cfg: SimConfig,
    cores: Vec<Core>,
    l2: SetAssocCache,
    pbuf: PrefetchBuffer,
    mshr: MshrFile,
    mem: MemorySystem,
    pf: Box<dyn Prefetcher>,
    pf_inflight: FxHashMap<LineAddr, Cycle>,
    events: BinaryHeap<Reverse<Ev>>,
    next_ev_at: Cycle,
    ev_seq: u64,
    actions: Vec<Action>,
    // Shared-traffic counters (whole-chip).
    pf_requested: u64,
    pf_filtered: u64,
    pf_dropped_mshr: u64,
    pf_dropped_bus: u64,
    pf_issued: u64,
    pf_evicted_unused: u64,
    table_reads: u64,
    table_read_drops: u64,
    table_writes: u64,
    writebacks: u64,
    shared_base: SharedBase,
    shared_snapshotted: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct SharedBase {
    pf_requested: u64,
    pf_filtered: u64,
    pf_dropped_mshr: u64,
    pf_dropped_bus: u64,
    pf_issued: u64,
    pf_evicted_unused: u64,
    table_reads: u64,
    table_read_drops: u64,
    table_writes: u64,
    writebacks: u64,
}

impl std::fmt::Debug for CmpEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpEngine")
            .field("cores", &self.cores.len())
            .field("prefetcher", &self.pf.name())
            .finish_non_exhaustive()
    }
}

impl CmpEngine {
    /// Creates an N-core engine over a cold machine.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or exceeds 255.
    pub fn new(cfg: SimConfig, n_cores: usize, pf: Box<dyn Prefetcher>) -> Self {
        assert!(n_cores > 0 && n_cores <= 255, "1..=255 cores");
        let cores = (0..n_cores)
            .map(|id| Core {
                id: id as u8,
                epoch: EpochTracker::new(),
                cycle: 0,
                issue_slots: 0,
                insts: 0,
                outstanding: Vec::new(),
                window_insts: 0,
                dep_countdown: None,
                c: CoreCounters::default(),
                cycle_base: 0,
                insts_base: 0,
                idx: 0,
                gap_done: 0,
                last_pre: 0,
            })
            .collect();
        CmpEngine {
            cores,
            l2: SetAssocCache::new(cfg.l2),
            pbuf: PrefetchBuffer::new(cfg.pbuf_entries, cfg.pbuf_ways.min(cfg.pbuf_entries)),
            mshr: MshrFile::new(cfg.mshrs),
            mem: MemorySystem::new(cfg.mem),
            pf,
            pf_inflight: FxHashMap::default(),
            events: BinaryHeap::new(),
            next_ev_at: Cycle::MAX,
            ev_seq: 0,
            actions: Vec::new(),
            pf_requested: 0,
            pf_filtered: 0,
            pf_dropped_mshr: 0,
            pf_dropped_bus: 0,
            pf_issued: 0,
            pf_evicted_unused: 0,
            table_reads: 0,
            table_read_drops: 0,
            table_writes: 0,
            writebacks: 0,
            shared_base: SharedBase::default(),
            shared_snapshotted: false,
            cfg,
        }
    }

    /// Runs one trace per core (all cores consume `warmup + measure`
    /// records; statistics cover the measurement part). Returns per-core
    /// and aggregate results.
    ///
    /// Each trace is pre-resolved through the per-core L1 front end
    /// first; callers sweeping a prefetcher roster over the same traces
    /// should pre-resolve once themselves and use
    /// [`CmpEngine::run_streams`].
    ///
    /// # Panics
    ///
    /// Panics unless exactly one trace per core is supplied.
    pub fn run(
        &mut self,
        traces: &[Vec<TraceRecord>],
        warmup: u64,
        measure: u64,
        workload: &str,
    ) -> CmpResult {
        assert_eq!(traces.len(), self.cores.len(), "one trace per core");
        let total = warmup + measure;
        let streams: Vec<PreResolved> = traces
            .iter()
            .map(|t| {
                let n = t.len().min(usize::try_from(total).unwrap_or(usize::MAX));
                PreResolved::from_records(&self.cfg, &t[..n])
            })
            .collect();
        let refs: Vec<&PreResolved> = streams.iter().collect();
        self.run_des(&refs, warmup, total, workload, None)
    }

    /// Runs one trace *generator* per core, pulling records in
    /// [`crate::Engine::CHUNK_RECORDS`]-sized chunks through the
    /// pre-resolver instead of requiring fully materialized traces, so
    /// large multi-core runs respect the harness memory budget (the
    /// packed stream is 3-4× smaller than the records it stands for).
    ///
    /// # Panics
    ///
    /// Panics unless exactly one generator per core is supplied.
    pub fn run_chunked(
        &mut self,
        gens: &mut [ebcp_trace::TraceGenerator],
        warmup: u64,
        measure: u64,
        workload: &str,
    ) -> CmpResult {
        assert_eq!(gens.len(), self.cores.len(), "one generator per core");
        let total = warmup + measure;
        let mut buf = Vec::with_capacity(crate::Engine::CHUNK_RECORDS);
        let streams: Vec<PreResolved> = gens
            .iter_mut()
            .map(|g| {
                let mut pr = PreResolver::new(&self.cfg);
                pr.reserve(usize::try_from(total / 3 + 16).unwrap_or(usize::MAX));
                let mut left = total;
                while left > 0 {
                    let want = crate::Engine::CHUNK_RECORDS
                        .min(usize::try_from(left).unwrap_or(usize::MAX));
                    let got = g.next_chunk(&mut buf, want);
                    if got == 0 {
                        break;
                    }
                    pr.push_chunk(&buf[..got]);
                    left -= got as u64;
                }
                pr.finish()
            })
            .collect();
        let refs: Vec<&PreResolved> = streams.iter().collect();
        self.run_des(&refs, warmup, total, workload, None)
    }

    /// Runs one pre-resolved stream per core — the two-phase path: the
    /// harness pre-resolves (and disk-caches) each per-core stream once
    /// and replays the whole prefetcher roster over it.
    ///
    /// Each core consumes `warmup + measure` records (or its whole
    /// stream, if shorter).
    ///
    /// # Panics
    ///
    /// Panics unless exactly one stream per core is supplied and every
    /// stream was resolved under this engine's L1 geometries.
    pub fn run_streams(
        &mut self,
        streams: &[&PreResolved],
        warmup: u64,
        measure: u64,
        workload: &str,
    ) -> CmpResult {
        self.run_des(streams, warmup, warmup + measure, workload, None)
    }

    /// [`CmpEngine::run_streams`] with an explicit component
    /// registration order: core `order[0]` is scheduled onto the wake
    /// heap first, and so on. The `(next_tick, component_id)` tie-break
    /// makes the result independent of `order` — which the determinism
    /// property tests pin by permuting it.
    ///
    /// # Panics
    ///
    /// Panics unless `order` is a permutation of `0..n_cores` (checked
    /// as: right length, every index in range — duplicates would
    /// double-schedule and are caught by the stream-cursor assertion).
    pub fn run_streams_registered(
        &mut self,
        streams: &[&PreResolved],
        warmup: u64,
        measure: u64,
        workload: &str,
        order: &[usize],
    ) -> CmpResult {
        self.run_des(streams, warmup, warmup + measure, workload, Some(order))
    }

    /// The discrete-event main loop. See the module docs for the
    /// equivalence argument to the stepping oracle.
    fn run_des(
        &mut self,
        streams: &[&PreResolved],
        warmup: u64,
        total: u64,
        workload: &str,
        prime_order: Option<&[usize]>,
    ) -> CmpResult {
        assert_eq!(streams.len(), self.cores.len(), "one stream per core");
        for s in streams {
            assert!(
                s.l1i == self.cfg.l1i && s.l1d == self.cfg.l1d,
                "stream resolved under different L1 geometry"
            );
        }
        let n = self.cores.len();
        let mut heap = WakeHeap::with_capacity(n);
        let default_order: Vec<usize> = (0..n).collect();
        let order = prime_order.unwrap_or(&default_order);
        assert_eq!(order.len(), n, "registration order must cover every core");
        for &i in order {
            assert!(i < n, "registration order index out of range");
            if let Some(tick) = self.advance_local(i, &streams[i].events, warmup, total) {
                heap.schedule(tick, i as u32);
            }
        }
        while let Some((tick, id)) = heap.peek() {
            if self.next_ev_at <= tick {
                // The uncore component wakes first on ties: the oracle
                // drains matured completions in the record's pre-op,
                // before its body.
                self.drain_events(tick);
            }
            heap.pop();
            let i = id as usize;
            self.exec_one(i, &streams[i].events);
            if self.cores[i].insts == warmup {
                self.reset_core_stats(i);
                if !self.shared_snapshotted && self.cores.iter().all(|c| c.insts >= warmup) {
                    self.shared_snapshotted = true;
                    self.snapshot_shared();
                }
            }
            if let Some(tick) = self.advance_local(i, &streams[i].events, warmup, total) {
                heap.schedule(tick, i as u32);
            }
        }
        // Residual drain: in the oracle, trailing core-local records
        // keep draining matured events in their pre-ops, up to the
        // globally last consumed record's pre-record clock.
        let residual = self.cores.iter().map(|c| c.last_pre).max().unwrap_or(0);
        if self.next_ev_at <= residual {
            self.drain_events(residual);
        }
        self.collect(workload)
    }

    /// Advances core `i` over everything core-local, returning the
    /// pre-record clock of its next *yield* — the next record that
    /// needs the full machinery — or `None` when the core has consumed
    /// its whole budget (stream end or `total` records).
    ///
    /// Yields are: any record touching shared state (L1-missing
    /// fetches, loads, stores — including store L1 hits, which dirty
    /// the shared L2), any flagged record while a miss window is open,
    /// the `gap_advance` deadline records of an open window (first
    /// outstanding completion, ROB fill, dependence countdown), and the
    /// warm-up crossing record (so statistics reset at the oracle's
    /// exact global position). Mispredicted branches and serializing
    /// instructions with nothing outstanding touch only the local
    /// clock and are consumed here.
    fn advance_local(
        &mut self,
        i: usize,
        events: &[PreEvent],
        warmup: u64,
        total: u64,
    ) -> Option<Cycle> {
        let w = u64::from(self.cfg.core.issue_width);
        let iw = self.cfg.core.issue_width;
        let rob = self.cfg.core.rob_entries;
        let mp_pen = self.cfg.core.mispredict_penalty;
        let ser_cost = self.cfg.core.serialize_cost;
        let core = &mut self.cores[i];
        loop {
            if core.insts >= total {
                return None;
            }
            let &ev = events.get(core.idx)?;
            let gap_left = u64::from(ev.gap) - u64::from(core.gap_done);
            if gap_left == 0 && ev.flags == 0 {
                // Exhausted pure filler: no event record behind it.
                core.idx += 1;
                core.gap_done = 0;
                continue;
            }
            // Records this core may consume before one must yield.
            let mut lim = total - core.insts;
            if core.insts < warmup {
                lim = lim.min(warmup - core.insts - 1);
            }
            let windowed = !core.outstanding.is_empty();
            if windowed {
                // The `gap_advance` deadline algebra: the j-th upcoming
                // record (0-indexed) starts at cycle + (slots + j) / w,
                // so the first record reaching `at` is index
                // ((at - cycle) * w) - slots, clamped at zero.
                let min_done = core
                    .outstanding
                    .iter()
                    .map(|o| o.done)
                    .min()
                    .expect("outstanding non-empty");
                let k_done = if min_done <= core.cycle {
                    0
                } else {
                    ((min_done - core.cycle) * w).saturating_sub(u64::from(core.issue_slots))
                };
                lim = lim.min(k_done);
                lim = lim.min(u64::from(rob - 1 - core.window_insts));
                if let Some(cd) = core.dep_countdown {
                    lim = lim.min(u64::from(cd));
                }
            }
            if lim == 0 {
                return Some(core.cycle);
            }
            if gap_left > 0 {
                let take = gap_left.min(lim);
                advance_core_inert(core, take, w);
                core.gap_done += take as u32;
                continue;
            }
            // At the event record itself (gap exhausted, flags != 0).
            if windowed || ev.flags & F_IFETCH_MISS != 0 {
                return Some(core.cycle);
            }
            match ev.flags >> K_SHIFT {
                K_MISPREDICT | K_SERIALIZE => {
                    // Nothing outstanding: a pure local clock bump
                    // (serialize never stalls with an empty window).
                    core.last_pre = core.cycle;
                    core.insts += 1;
                    core.issue_slots += 1;
                    if core.issue_slots >= iw {
                        core.cycle += 1;
                        core.issue_slots = 0;
                    }
                    core.cycle += if ev.flags >> K_SHIFT == K_MISPREDICT {
                        mp_pen
                    } else {
                        ser_cost
                    };
                    core.idx += 1;
                    core.gap_done = 0;
                }
                _ => return Some(core.cycle),
            }
        }
    }

    /// Executes core `i`'s current record through the full per-record
    /// machinery — a verbatim transcription of the oracle's
    /// `step_core`, minus the L1 probes the pre-resolve pass already
    /// answered.
    fn exec_one(&mut self, i: usize, events: &[PreEvent]) {
        let ev = events[self.cores[i].idx];
        self.cores[i].last_pre = self.cores[i].cycle;
        if !self.cores[i].outstanding.is_empty() {
            self.drain_outstanding(i);
        }
        if self.next_ev_at <= self.cores[i].cycle {
            let upto = self.cores[i].cycle;
            self.drain_events(upto);
        }

        self.cores[i].insts += 1;

        let is_gap = self.cores[i].gap_done < ev.gap;
        if !is_gap && ev.flags & F_IFETCH_MISS != 0 {
            self.fetch_miss(i, Pc::new(ev.pc));
        }

        let core = &mut self.cores[i];
        core.issue_slots += 1;
        if core.issue_slots >= self.cfg.core.issue_width {
            core.cycle += 1;
            core.issue_slots = 0;
        }
        if !core.outstanding.is_empty() {
            core.window_insts += 1;
        }

        if is_gap {
            self.cores[i].gap_done += 1;
        } else {
            let line = LineAddr::from_index(ev.dline);
            match ev.flags >> K_SHIFT {
                K_NONE => {}
                K_LOAD => self.load_fill(i, line, Pc::new(ev.pc), false),
                K_LOAD_FEEDS => self.load_fill(i, line, Pc::new(ev.pc), true),
                K_STORE_MISS => self.store_fill(i, line),
                K_STORE_HIT => {
                    self.l2.mark_dirty(line);
                }
                K_MISPREDICT => self.cores[i].cycle += self.cfg.core.mispredict_penalty,
                K_SERIALIZE => {
                    if self.cores[i].outstanding.is_empty() {
                        self.cores[i].cycle += self.cfg.core.serialize_cost;
                    } else {
                        self.stall_all(i);
                    }
                }
                other => unreachable!("corrupt PreEvent kind {other}"),
            }
            self.cores[i].idx += 1;
            self.cores[i].gap_done = 0;
        }

        if !self.cores[i].outstanding.is_empty() {
            if self.cores[i].window_insts >= self.cfg.core.rob_entries {
                self.stall_all(i);
            } else if let Some(cd) = self.cores[i].dep_countdown {
                if cd == 0 {
                    self.stall_all(i);
                } else {
                    self.cores[i].dep_countdown = Some(cd - 1);
                }
            }
        }
    }

    fn reset_core_stats(&mut self, i: usize) {
        let c = &mut self.cores[i];
        c.c = CoreCounters::default();
        c.cycle_base = c.cycle;
        c.insts_base = c.insts;
        c.epoch.reset_stats();
    }

    fn snapshot_shared(&mut self) {
        self.shared_base = SharedBase {
            pf_requested: self.pf_requested,
            pf_filtered: self.pf_filtered,
            pf_dropped_mshr: self.pf_dropped_mshr,
            pf_dropped_bus: self.pf_dropped_bus,
            pf_issued: self.pf_issued,
            pf_evicted_unused: self.pf_evicted_unused,
            table_reads: self.table_reads,
            table_read_drops: self.table_read_drops,
            table_writes: self.table_writes,
            writebacks: self.writebacks,
        };
        self.pf.reset_aux_stats();
    }

    fn collect(&self, workload: &str) -> CmpResult {
        let cores: Vec<SimResult> = self
            .cores
            .iter()
            .map(|c| SimResult {
                prefetcher: self.pf.name().to_owned(),
                workload: format!("{workload}#core{}", c.id),
                insts: c.insts - c.insts_base,
                cycles: c.cycle - c.cycle_base,
                epochs: c.epoch.stats().epochs,
                l2_inst_misses: c.c.inst_misses,
                l2_load_misses: c.c.load_misses,
                l2_store_misses: c.c.store_misses,
                secondary_misses: c.c.secondary_misses,
                store_skipped: c.c.store_skipped,
                averted_inst: c.c.averted_inst,
                averted_load: c.c.averted_load,
                averted_store: c.c.averted_store,
                partial_hits: c.c.partial_hits,
                stall_cycles: c.c.stall_cycles,
                ..SimResult::default()
            })
            .collect();
        let mut aggregate = SimResult {
            prefetcher: self.pf.name().to_owned(),
            workload: workload.to_owned(),
            pf_requested: self.pf_requested - self.shared_base.pf_requested,
            pf_issued: self.pf_issued - self.shared_base.pf_issued,
            pf_dropped_bus: self.pf_dropped_bus - self.shared_base.pf_dropped_bus,
            pf_dropped_mshr: self.pf_dropped_mshr - self.shared_base.pf_dropped_mshr,
            pf_filtered: self.pf_filtered - self.shared_base.pf_filtered,
            pf_evicted_unused: self.pf_evicted_unused - self.shared_base.pf_evicted_unused,
            table_reads: self.table_reads - self.shared_base.table_reads,
            table_read_drops: self.table_read_drops - self.shared_base.table_read_drops,
            table_writes: self.table_writes - self.shared_base.table_writes,
            writebacks: self.writebacks - self.shared_base.writebacks,
            ..SimResult::default()
        };
        for c in &cores {
            aggregate.insts += c.insts;
            aggregate.cycles = aggregate.cycles.max(c.cycles);
            aggregate.epochs += c.epochs;
            aggregate.l2_inst_misses += c.l2_inst_misses;
            aggregate.l2_load_misses += c.l2_load_misses;
            aggregate.l2_store_misses += c.l2_store_misses;
            aggregate.secondary_misses += c.secondary_misses;
            aggregate.store_skipped += c.store_skipped;
            aggregate.averted_inst += c.averted_inst;
            aggregate.averted_load += c.averted_load;
            aggregate.averted_store += c.averted_store;
            aggregate.partial_hits += c.partial_hits;
            aggregate.stall_cycles += c.stall_cycles;
        }
        CmpResult { cores, aggregate }
    }

    // ------------------------------------------------------------------
    // Back-end demand paths (the oracle's fetch/load/store minus the L1
    // probe each resolved in the front-end pass)
    // ------------------------------------------------------------------

    fn fetch_miss(&mut self, i: usize, pc: Pc) {
        let iline = pc.line();
        if self.l2.access(iline) {
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            return;
        }
        if let Some(origin) = self.pbuf.lookup_consume(iline) {
            self.cores[i].c.averted_inst += 1;
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            self.fill_l2(i, iline, false);
            self.notify_pbuf_hit(i, iline, pc, AccessKind::InstrFetch, origin);
            return;
        }
        self.offchip_demand(i, iline, pc, AccessKind::InstrFetch);
        self.stall_all(i);
    }

    fn load_fill(&mut self, i: usize, dline: LineAddr, pc: Pc, feeds_mispredict: bool) {
        if self.l2.access(dline) {
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            return;
        }
        if let Some(origin) = self.pbuf.lookup_consume(dline) {
            self.cores[i].c.averted_load += 1;
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            self.fill_l2(i, dline, false);
            self.notify_pbuf_hit(i, dline, pc, AccessKind::Load, origin);
            return;
        }
        self.offchip_demand(i, dline, pc, AccessKind::Load);
        if feeds_mispredict {
            self.cores[i].dep_countdown = Some(self.cfg.core.dep_branch_window);
        }
    }

    fn store_fill(&mut self, i: usize, dline: LineAddr) {
        if self.l2.access(dline) {
            self.l2.mark_dirty(dline);
            return;
        }
        if self.pbuf.lookup_consume(dline).is_some() {
            self.cores[i].c.averted_store += 1;
            self.fill_l2(i, dline, true);
            return;
        }
        if self.mshr.contains(dline) {
            self.cores[i].c.secondary_misses += 1;
            return;
        }
        if self.mshr.len() + self.pf_inflight.len() >= self.cfg.mshrs {
            // Store buffer absorbs it (same policy as the single-core
            // engine); counted, not silent.
            self.cores[i].c.store_skipped += 1;
            return;
        }
        self.cores[i].c.store_misses += 1;
        self.mshr.allocate(dline);
        let now = self.cores[i].cycle;
        if let MemOutcome::Done { done } = self.mem.request(now, MemClass::Demand) {
            self.push_event(done, EvKind::StoreFill { line: dline });
        }
    }

    fn offchip_demand(&mut self, i: usize, line: LineAddr, pc: Pc, kind: AccessKind) {
        let now = self.cores[i].cycle;
        if let Some(arrival) = self.pf_inflight.remove(&line) {
            self.cores[i].c.partial_hits += 1;
            let trigger = self.cores[i].epoch.on_offchip_issue(now);
            self.count_miss(i, kind);
            self.mshr.allocate(line);
            let done = arrival.max(now + 1);
            self.cores[i].outstanding.push(Outst { line, done });
            self.notify_miss(i, line, pc, kind, trigger);
            return;
        }
        if self.mshr.contains(line) {
            // Outstanding somewhere (possibly another core): attach to
            // this core's window with a conservative full-latency
            // completion. Still a merged (secondary) miss in MSHR terms.
            self.cores[i].c.secondary_misses += 1;
            let trigger = self.cores[i].epoch.on_offchip_issue(now);
            self.count_miss(i, kind);
            let done = now + self.cfg.mem.latency;
            self.cores[i].outstanding.push(Outst { line, done });
            self.notify_miss(i, line, pc, kind, trigger);
            return;
        }
        self.wait_for_mshr(i);
        let now = self.cores[i].cycle;
        let trigger = self.cores[i].epoch.on_offchip_issue(now);
        self.count_miss(i, kind);
        self.mshr.allocate(line);
        let done = match self.mem.request(now, MemClass::Demand) {
            MemOutcome::Done { done } => done,
            MemOutcome::Dropped => unreachable!("demand requests are never dropped"),
        };
        self.cores[i].outstanding.push(Outst { line, done });
        self.notify_miss(i, line, pc, kind, trigger);
    }

    fn count_miss(&mut self, i: usize, kind: AccessKind) {
        match kind {
            AccessKind::InstrFetch => self.cores[i].c.inst_misses += 1,
            AccessKind::Load => self.cores[i].c.load_misses += 1,
            AccessKind::Store => self.cores[i].c.store_misses += 1,
        }
    }

    fn wait_for_mshr(&mut self, i: usize) {
        while self.mshr.is_full() {
            if !self.cores[i].outstanding.is_empty() {
                self.stall_all(i);
            } else if self.next_ev_at != Cycle::MAX {
                self.cores[i].cycle = self.cores[i].cycle.max(self.next_ev_at);
                let upto = self.cores[i].cycle;
                self.drain_events(upto);
            } else {
                // Another core holds the registers; skew this core
                // forward past the soonest possible release.
                self.cores[i].cycle += self.cfg.mem.latency;
                return;
            }
        }
    }

    fn notify_miss(&mut self, i: usize, line: LineAddr, pc: Pc, kind: AccessKind, trigger: bool) {
        let info = MissInfo {
            line,
            pc,
            kind,
            epoch_trigger: trigger,
            now: self.cores[i].cycle,
            core: self.cores[i].id,
        };
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_miss(&info, &mut acts);
        let now = self.cores[i].cycle;
        self.apply_actions(now, &acts);
        self.actions = acts;
    }

    fn notify_pbuf_hit(&mut self, i: usize, line: LineAddr, pc: Pc, kind: AccessKind, origin: u64) {
        let info = PrefetchHitInfo {
            line,
            pc,
            kind,
            origin,
            would_be_trigger: self.cores[i].epoch.would_trigger(),
            now: self.cores[i].cycle,
            core: self.cores[i].id,
        };
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_prefetch_hit(&info, &mut acts);
        let now = self.cores[i].cycle;
        self.apply_actions(now, &acts);
        self.actions = acts;
    }

    fn apply_actions(&mut self, now: Cycle, acts: &[Action]) {
        for a in acts {
            match *a {
                Action::Prefetch { line, origin } => {
                    self.pf_requested += 1;
                    if self.l2.probe(line)
                        || self.pbuf.contains(line)
                        || self.mshr.contains(line)
                        || self.pf_inflight.contains_key(&line)
                    {
                        self.pf_filtered += 1;
                        continue;
                    }
                    if self.mshr.len() + self.pf_inflight.len() >= self.cfg.mshrs {
                        self.pf_dropped_mshr += 1;
                        continue;
                    }
                    match self.mem.request(now, MemClass::Prefetch) {
                        MemOutcome::Done { done } => {
                            self.pf_issued += 1;
                            self.pf_inflight.insert(line, done);
                            self.push_event(done, EvKind::PrefetchArrive { line, origin });
                        }
                        MemOutcome::Dropped => self.pf_dropped_bus += 1,
                    }
                }
                Action::TableRead { token, delay } => {
                    match self.mem.request(now + delay, MemClass::TableRead) {
                        MemOutcome::Done { done } => {
                            self.table_reads += 1;
                            self.push_event(done, EvKind::TableDone { token });
                        }
                        MemOutcome::Dropped => {
                            self.table_read_drops += 1;
                            self.pf.on_table_dropped(token);
                        }
                    }
                }
                Action::TableWrite => {
                    self.table_writes += 1;
                    let _ = self.mem.request(now, MemClass::TableWrite);
                }
            }
        }
    }

    fn fill_l2(&mut self, i: usize, line: LineAddr, dirty: bool) {
        if let Some(ev) = self.l2.fill(line, dirty) {
            if ev.dirty {
                self.writebacks += 1;
                let now = self.cores[i].cycle;
                let _ = self.mem.request(now, MemClass::Writeback);
            }
        }
    }

    fn stall_all(&mut self, i: usize) {
        let max_done = self.cores[i]
            .outstanding
            .iter()
            .map(|o| o.done)
            .max()
            .unwrap_or(self.cores[i].cycle);
        if max_done > self.cores[i].cycle {
            self.cores[i].c.stall_cycles += max_done - self.cores[i].cycle;
            self.cores[i].cycle = max_done;
        }
        let outs = std::mem::take(&mut self.cores[i].outstanding);
        for o in outs {
            self.complete_demand(i, o);
        }
        self.end_window(i);
    }

    fn complete_demand(&mut self, i: usize, o: Outst) {
        self.fill_l2(i, o.line, false);
        self.mshr.release(o.line);
    }

    fn end_window(&mut self, i: usize) {
        let now = self.cores[i].cycle;
        self.cores[i].epoch.on_all_complete(now);
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_epoch_end(now, &mut acts);
        self.apply_actions(now, &acts);
        self.actions = acts;
        self.cores[i].window_insts = 0;
        self.cores[i].dep_countdown = None;
        if self.next_ev_at <= now {
            self.drain_events(now);
        }
    }

    fn drain_outstanding(&mut self, i: usize) {
        let mut k = 0;
        let mut removed = false;
        while k < self.cores[i].outstanding.len() {
            if self.cores[i].outstanding[k].done <= self.cores[i].cycle {
                let o = self.cores[i].outstanding.swap_remove(k);
                self.complete_demand(i, o);
                removed = true;
            } else {
                k += 1;
            }
        }
        if removed && self.cores[i].outstanding.is_empty() {
            self.end_window(i);
        }
    }

    fn push_event(&mut self, at: Cycle, kind: EvKind) {
        let ev = Ev {
            at,
            seq: self.ev_seq,
            kind,
        };
        self.ev_seq += 1;
        self.events.push(Reverse(ev));
        self.next_ev_at = self.next_ev_at.min(at);
    }

    fn drain_events(&mut self, upto: Cycle) {
        while let Some(Reverse(ev)) = self.events.peek().copied() {
            if ev.at > upto {
                break;
            }
            self.events.pop();
            match ev.kind {
                EvKind::TableDone { token } => {
                    let mut acts = std::mem::take(&mut self.actions);
                    acts.clear();
                    self.pf.on_table_done(token, ev.at, &mut acts);
                    self.apply_actions(ev.at, &acts);
                    self.actions = acts;
                }
                EvKind::PrefetchArrive { line, origin } => {
                    self.pf_inflight.remove(&line);
                    if !self.l2.probe(line)
                        && !self.mshr.contains(line)
                        && self.pbuf.insert(line, origin).is_some()
                    {
                        self.pf_evicted_unused += 1;
                    }
                }
                EvKind::StoreFill { line } => {
                    // Attribute the (rare) writeback to core 0's clock.
                    self.fill_l2(0, line, true);
                    self.mshr.release(line);
                }
            }
        }
        self.next_ev_at = self
            .events
            .peek()
            .map(|Reverse(e)| e.at)
            .unwrap_or(Cycle::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmp_stepping::SteppingCmpEngine;
    use ebcp_core::{EbcpConfig, EbcpPrefetcher};
    use ebcp_prefetch::NullPrefetcher;
    use ebcp_trace::{TraceGenerator, WorkloadSpec};

    fn small_workload() -> WorkloadSpec {
        WorkloadSpec {
            templates: 24,
            segments_per_template: 60,
            data_pool_lines: 1 << 14,
            cold_code_pool_lines: 2048,
            warm_pool_lines: 128,
            ..WorkloadSpec::database()
        }
    }

    /// Per-core traces over the SAME program (shared working set) —
    /// cores differ only in execution order and noise.
    fn traces(n: usize, len: usize) -> Vec<Vec<TraceRecord>> {
        let w = small_workload();
        (0..n)
            .map(|s| TraceGenerator::new(&w, s as u64 + 1).take(len).collect())
            .collect()
    }

    /// Per-core traces over DISJOINT programs (distinct footprints) —
    /// the consolidated-server scenario where cores compete for the L2.
    ///
    /// Disjointness needs `addr_space`: a distinct `seed_tag` alone only
    /// varies the access pattern over the SAME line pools, which lets
    /// co-runners prefill the shared L2 for each other. Each core's
    /// data pool (1K lines) fits the scaled-down L2 (2048 lines)
    /// comfortably on its own but four cores together oversubscribe it,
    /// so the contention contrast is structural, not a property of one
    /// particular random trace.
    fn disjoint_traces(n: usize, len: usize) -> Vec<Vec<TraceRecord>> {
        (0..n)
            .map(|s| {
                let w = WorkloadSpec {
                    seed_tag: 0x100 + s as u64,
                    addr_space: 1 + s as u64,
                    data_pool_lines: 1 << 10,
                    ..small_workload()
                };
                TraceGenerator::new(&w, s as u64 + 1).take(len).collect()
            })
            .collect()
    }

    #[test]
    fn all_cores_progress_and_measure() {
        let mut cmp = CmpEngine::new(SimConfig::scaled_down(16), 2, Box::new(NullPrefetcher));
        let t = traces(2, 120_000);
        let r = cmp.run(&t, 40_000, 80_000, "small");
        assert_eq!(r.cores.len(), 2);
        for c in &r.cores {
            assert_eq!(c.insts, 80_000);
            assert!(c.epochs > 50, "core must have epochs: {}", c.epochs);
        }
        assert!(r.mean_cpi() > 0.5);
    }

    #[test]
    fn des_matches_stepping_exactly() {
        // The tentpole invariant at unit scale: the DES engine must be
        // METRIC-IDENTICAL (full CmpResult equality) to the stepping
        // oracle — baseline and with a real prefetcher in the loop
        // (table round-trips, prefetch arrivals, partial hits). The
        // full roster × workloads × core-count battery lives in
        // crates/bench/tests/cmp_des.rs.
        let sim = SimConfig::scaled_down(16);
        for n in [1usize, 2, 3] {
            let t = traces(n, 150_000);
            let mut des = CmpEngine::new(sim, n, Box::new(NullPrefetcher));
            let mut oracle = SteppingCmpEngine::new(sim, n, Box::new(NullPrefetcher));
            assert_eq!(
                des.run(&t, 50_000, 100_000, "w"),
                oracle.run(&t, 50_000, 100_000, "w"),
                "null prefetcher, {n} cores"
            );

            let pf = || {
                Box::new(EbcpPrefetcher::new(
                    EbcpConfig::tuned().with_table_entries(1 << 14),
                ))
            };
            let mut des = CmpEngine::new(sim, n, pf());
            let mut oracle = SteppingCmpEngine::new(sim, n, pf());
            assert_eq!(
                des.run(&t, 50_000, 100_000, "w"),
                oracle.run(&t, 50_000, 100_000, "w"),
                "ebcp, {n} cores"
            );
        }
    }

    #[test]
    fn des_matches_stepping_disjoint_footprints() {
        // Contended shared L2 (disjoint per-core pools) exercises the
        // cross-core MSHR merge and eviction paths.
        let sim = SimConfig::scaled_down(16);
        let t = disjoint_traces(4, 120_000);
        let mut des = CmpEngine::new(sim, 4, Box::new(NullPrefetcher));
        let mut oracle = SteppingCmpEngine::new(sim, 4, Box::new(NullPrefetcher));
        assert_eq!(
            des.run(&t, 40_000, 80_000, "w"),
            oracle.run(&t, 40_000, 80_000, "w")
        );
    }

    #[test]
    fn des_matches_stepping_zero_warmup_and_short_trace() {
        // Edge cases: no warm-up reset at all, and a trace shorter than
        // the requested budget (cores run dry mid-measurement).
        let sim = SimConfig::scaled_down(16);
        let t = traces(2, 30_000);
        let mut des = CmpEngine::new(sim, 2, Box::new(NullPrefetcher));
        let mut oracle = SteppingCmpEngine::new(sim, 2, Box::new(NullPrefetcher));
        assert_eq!(des.run(&t, 0, 25_000, "w"), oracle.run(&t, 0, 25_000, "w"));

        let mut des = CmpEngine::new(sim, 2, Box::new(NullPrefetcher));
        let mut oracle = SteppingCmpEngine::new(sim, 2, Box::new(NullPrefetcher));
        assert_eq!(
            des.run(&t, 10_000, 90_000, "w"),
            oracle.run(&t, 10_000, 90_000, "w"),
            "budget past stream end"
        );
    }

    #[test]
    fn registration_order_is_invisible() {
        // The (next_tick, component_id) tie-break makes the schedule a
        // pure function of the streams: priming the wake heap in any
        // core order yields the identical CmpResult.
        let sim = SimConfig::scaled_down(16);
        let t = traces(4, 90_000);
        let streams: Vec<PreResolved> = t
            .iter()
            .map(|tr| PreResolved::from_records(&sim, &tr[..80_000]))
            .collect();
        let refs: Vec<&PreResolved> = streams.iter().collect();
        let pf = || {
            Box::new(EbcpPrefetcher::new(
                EbcpConfig::tuned().with_table_entries(1 << 14),
            ))
        };
        let reference = CmpEngine::new(sim, 4, pf()).run_streams_registered(
            &refs,
            30_000,
            50_000,
            "w",
            &[0, 1, 2, 3],
        );
        for order in [[3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1]] {
            let r = CmpEngine::new(sim, 4, pf())
                .run_streams_registered(&refs, 30_000, 50_000, "w", &order);
            assert_eq!(r, reference, "registration order {order:?}");
        }
    }

    #[test]
    fn run_streams_matches_run() {
        // The two-phase entry point over externally pre-resolved
        // streams is the same computation as `run` over raw traces.
        let sim = SimConfig::scaled_down(16);
        let t = traces(2, 100_000);
        let mut a = CmpEngine::new(sim, 2, Box::new(NullPrefetcher));
        let ra = a.run(&t, 30_000, 60_000, "w");
        let streams: Vec<PreResolved> = t
            .iter()
            .map(|tr| PreResolved::from_records(&sim, &tr[..90_000]))
            .collect();
        let refs: Vec<&PreResolved> = streams.iter().collect();
        let mut b = CmpEngine::new(sim, 2, Box::new(NullPrefetcher));
        let rb = b.run_streams(&refs, 30_000, 60_000, "w");
        assert_eq!(ra, rb);
    }

    #[test]
    fn shared_l2_contention_raises_miss_rates() {
        // Four cores with DISJOINT footprints over one shared L2 evict
        // each other: per-core load miss rates must exceed the
        // single-core run's.
        let t1 = disjoint_traces(1, 150_000);
        let mut one = CmpEngine::new(SimConfig::scaled_down(16), 1, Box::new(NullPrefetcher));
        let r1 = one.run(&t1, 50_000, 100_000, "w");
        let t4 = disjoint_traces(4, 150_000);
        let mut four = CmpEngine::new(SimConfig::scaled_down(16), 4, Box::new(NullPrefetcher));
        let r4 = four.run(&t4, 50_000, 100_000, "w");
        let mr1 = r1.cores[0].load_mr();
        let mr4 = r4.cores[0].load_mr();
        assert!(
            mr4 > mr1,
            "shared-L2 contention: {mr4:.2} vs {mr1:.2} per 1k"
        );
    }

    #[test]
    fn shared_working_set_is_constructive() {
        // The flip side: cores running the SAME program prefill the
        // shared L2 for each other, so per-core miss rates DROP — the
        // multi-threaded-single-application scenario.
        let t1 = traces(1, 150_000);
        let mut one = CmpEngine::new(SimConfig::scaled_down(16), 1, Box::new(NullPrefetcher));
        let r1 = one.run(&t1, 50_000, 100_000, "w");
        let t4 = traces(4, 150_000);
        let mut four = CmpEngine::new(SimConfig::scaled_down(16), 4, Box::new(NullPrefetcher));
        let r4 = four.run(&t4, 50_000, 100_000, "w");
        assert!(
            r4.cores[0].load_mr() < r1.cores[0].load_mr(),
            "shared data: {:.2} vs {:.2} per 1k",
            r4.cores[0].load_mr(),
            r1.cores[0].load_mr()
        );
    }

    #[test]
    fn chunked_cmp_matches_materialized() {
        // Identical per-core record sequences delivered chunked vs as
        // materialized slices must give the byte-identical CmpResult:
        // the chunked pre-resolution may not perturb the streams.
        let w = small_workload();
        let n = 3;
        let t: Vec<Vec<TraceRecord>> = (0..n)
            .map(|s| TraceGenerator::new(&w, s as u64 + 1).take(90_000).collect())
            .collect();
        let mut a = CmpEngine::new(SimConfig::scaled_down(16), n, Box::new(NullPrefetcher));
        let ra = a.run(&t, 30_000, 60_000, "w");

        let mut gens: Vec<TraceGenerator> = (0..n)
            .map(|s| TraceGenerator::new(&w, s as u64 + 1))
            .collect();
        let mut b = CmpEngine::new(SimConfig::scaled_down(16), n, Box::new(NullPrefetcher));
        let rb = b.run_chunked(&mut gens, 30_000, 60_000, "w");
        assert_eq!(ra, rb);
    }

    #[test]
    fn ev_eq_agrees_with_ord() {
        // Regression for the derived-PartialEq / manual-Ord mismatch.
        let a = Ev {
            at: 3,
            seq: 0,
            kind: EvKind::TableDone { token: 9 },
        };
        let b = Ev {
            at: 3,
            seq: 0,
            kind: EvKind::PrefetchArrive {
                line: LineAddr::from_index(5),
                origin: 0,
            },
        };
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a, b);
    }

    #[test]
    fn ebcp_still_works_on_cmp() {
        let t = traces(2, 250_000);
        let sim = SimConfig::scaled_down(16);
        let mut base = CmpEngine::new(sim, 2, Box::new(NullPrefetcher));
        let rb = base.run(&t, 100_000, 150_000, "w");
        let mut with = CmpEngine::new(
            sim,
            2,
            Box::new(EbcpPrefetcher::new(
                EbcpConfig::tuned().with_table_entries(1 << 16),
            )),
        );
        let rw = with.run(&t, 100_000, 150_000, "w");
        assert!(
            rw.aggregate.pf_issued > 100,
            "prefetches issued: {}",
            rw.aggregate.pf_issued
        );
        let imp = rw.improvement_over(&rb);
        assert!(imp > 0.03, "EBCP should help on a 2-core CMP: {:.3}", imp);
    }
}
