//! The discrete-event wake-up scheduler for the CMP engine.
//!
//! A [`WakeHeap`] is a min-heap of component wake-ups keyed by
//! `(next_tick, component_id)`. The CMP engine (see [`crate::cmp`])
//! registers one component per core; a component's wake-up carries the
//! *pre-record clock* of its next shared interaction — the next trace
//! record that can touch chip-shared state (the L2, the prefetch
//! buffer, the MSHR file, the memory system or the prefetcher). All
//! purely core-local work between two wake-ups is advanced
//! algebraically when the component is popped, never enumerated.
//!
//! # Why `(next_tick, component_id)` reproduces the stepping order
//!
//! The record-stepping engine always executes the record of the core
//! with the smallest local clock, breaking ties toward the lowest core
//! index (its pick loop compares with strict `<`). Records therefore
//! execute in ascending `(pre-record clock, core index)` order — which
//! is exactly the heap order here. Core-local records commute (they
//! read and write nothing shared), so collapsing them into the pop that
//! follows preserves every observable of the stepping schedule. The
//! `component_id` tie-break makes the pop order a pure function of the
//! scheduled keys: *registration order cannot matter*, which the
//! determinism property test below (and the randomized one in
//! `crates/bench/tests/cmp_des.rs`) pins.
//!
//! Uncore completions (bus/DRAM grants, main-memory table round-trips,
//! prefetch arrivals) keep their own `(completion tick, sequence)`
//! queue inside the engine, because the stepping engine drains them
//! *within* core records (and even mid-record, inside window stalls) —
//! they are one logical component whose wake-up the engine compares
//! against this heap's head rather than storing, since mid-record
//! drains would constantly invalidate a stored entry.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduler tick — the same unit as a core clock cycle.
pub type Tick = u64;

/// Min-heap of `(next_tick, component_id)` wake-ups.
///
/// Pops ascend by tick; equal ticks ascend by component id, so the
/// schedule is deterministic no matter the order in which components
/// were registered or rescheduled.
///
/// The heap holds at most one *live* entry per component by
/// convention: the owner schedules a component exactly when it is
/// created and each time it is popped. It does not check this — a
/// component that schedules twice will simply be popped twice.
#[derive(Debug, Default, Clone)]
pub struct WakeHeap {
    heap: BinaryHeap<Reverse<(Tick, u32)>>,
}

impl WakeHeap {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Self {
        WakeHeap::default()
    }

    /// Pre-sized empty schedule (one slot per expected component).
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        WakeHeap {
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Whether any wake-up is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules component `id` to wake at `tick`.
    pub fn schedule(&mut self, tick: Tick, id: u32) {
        self.heap.push(Reverse((tick, id)));
    }

    /// The earliest scheduled wake-up, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(Tick, u32)> {
        self.heap.peek().map(|Reverse(k)| *k)
    }

    /// Removes and returns the earliest scheduled wake-up.
    pub fn pop(&mut self) -> Option<(Tick, u32)> {
        self.heap.pop().map(|Reverse(k)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_ascend_by_tick_then_id() {
        let mut h = WakeHeap::new();
        h.schedule(5, 2);
        h.schedule(3, 7);
        h.schedule(5, 0);
        h.schedule(3, 1);
        let order: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(order, vec![(3, 1), (3, 7), (5, 0), (5, 2)]);
    }

    #[test]
    fn pop_order_is_independent_of_registration_order() {
        // The tie-break on component id makes the schedule a pure
        // function of the key *set*: any permutation of schedule()
        // calls yields the identical pop sequence.
        let keys: Vec<(Tick, u32)> = vec![(9, 3), (1, 1), (9, 0), (1, 2), (4, 5), (4, 4)];
        let reference: Vec<(Tick, u32)> = {
            let mut s = keys.clone();
            s.sort_unstable();
            s
        };
        // Deterministic pseudo-shuffles: rotate + stride permutations.
        for rot in 0..keys.len() {
            let mut h = WakeHeap::with_capacity(keys.len());
            for i in 0..keys.len() {
                let (t, id) = keys[(i + rot) % keys.len()];
                h.schedule(t, id);
            }
            let order: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
            assert_eq!(order, reference, "rotation {rot}");
        }
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut h = WakeHeap::new();
        assert_eq!(h.peek(), None);
        h.schedule(8, 1);
        h.schedule(2, 9);
        assert_eq!(h.peek(), Some((2, 9)));
        assert_eq!(h.pop(), Some((2, 9)));
        assert_eq!(h.peek(), Some((8, 1)));
        assert!(!h.is_empty());
        assert_eq!(h.pop(), Some((8, 1)));
        assert!(h.is_empty());
    }
}
