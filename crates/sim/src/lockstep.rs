//! Lockstep multi-prefetcher replay: one pass over a shared
//! pre-resolved stream drives N back-end engines at once.
//!
//! The two-phase split (see `frontend`) already makes the event stream
//! prefetcher-independent; a whole-roster sweep nevertheless used to
//! replay it once per prefetcher, paying event decode, gap collapse,
//! and budget bookkeeping N times. [`Lockstep`] hoists all of that
//! stream-driven work out of the per-prefetcher loop:
//!
//! * **One shared cursor.** The replay cursor's position depends only
//!   on record counts, never on simulated state, so every lane sits at
//!   the same stream entry at all times.
//! * **Shared clock scalars.** `insts` and `issue_slots` are functions
//!   of records consumed (`issue_slots == insts % width` is an engine
//!   invariant), so they are shared scalars; only `cycle` and the heap
//!   deadline diverge per lane.
//! * **SoA lane state.** While every lane is *idle* (nothing
//!   outstanding, no heap event due) the fast pass keeps per-lane
//!   `cycle[]`/`next_ev[]` in flat arrays and advances them with the
//!   runtime-dispatched SIMD kernels of `ebcp_mem::simd`
//!   ([`add_broadcast`], [`any_due`]); event decode, gap collapse, and
//!   the deadline test are paid once per entry for the whole group.
//! * **Per-entry fallback.** When any lane has a miss window open, the
//!   group processes one entry at a time: each lane takes the
//!   single-entry fast specialization if it qualifies, else the exact
//!   general path (`Engine::replay_entry_general`) that serial replay
//!   uses.
//!
//! Because lanes share no mutable state and are advanced entry by
//! entry in submission order, each lane's operation sequence is
//! *exactly* the serial replay's — results are byte-identical by
//! construction, and `crates/bench/tests/lockstep.rs` enforces it over
//! the full roster × workload matrix on every SIMD tier.
//!
//! **Fault isolation.** Prefetcher code only runs inside the
//! miss-continuation and general-path calls; each is wrapped in
//! [`catch_unwind`] per lane. A panicking lane is marked dead with its
//! panic reason and drops out of the group; sibling lanes continue
//! unperturbed, preserving the harness's per-cell fault isolation.
//!
//! [`add_broadcast`]: ebcp_mem::simd::add_broadcast
//! [`any_due`]: ebcp_mem::simd::any_due

use std::panic::{catch_unwind, AssertUnwindSafe};

use ebcp_mem::simd::{self, SimdTier};
use ebcp_types::{LineAddr, Pc};

use crate::engine::Engine;
use crate::frontend::{
    PreEvent, ReplayCursor, F_IFETCH_MISS, K_LOAD, K_LOAD_FEEDS, K_MISPREDICT, K_SERIALIZE,
    K_SHIFT, K_STORE_HIT, K_STORE_MISS,
};
use crate::metrics::SimResult;

/// Extracts a printable reason from a caught panic payload.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

struct Lane {
    engine: Engine,
    /// Panic reason if this lane died mid-replay.
    dead: Option<String>,
}

/// A group of engines replaying one shared stream in lockstep.
///
/// Construct with [`Lockstep::new`] (one [`Engine`] per prefetcher,
/// all on the same `SimConfig`), drive with [`Lockstep::replay`] using
/// a single shared [`ReplayCursor`], and collect per-lane results with
/// [`Lockstep::results`]. `RunSpec::run_preresolved_many` wraps the
/// warmup/measure protocol.
pub struct Lockstep {
    lanes: Vec<Lane>,
    /// Indices of lanes still alive, in submission order.
    live: Vec<usize>,
    /// SoA per-live-lane clock, valid only inside `fast_pass`.
    cycle_soa: Vec<u64>,
    /// SoA per-live-lane heap deadline, valid only inside `fast_pass`.
    next_soa: Vec<u64>,
    /// Scratch: live-lane positions whose L2 probe missed this entry.
    missed: Vec<usize>,
    tier: SimdTier,
}

impl Lockstep {
    /// A lockstep group over `engines`, using the detected SIMD tier.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty or the engines disagree on machine
    /// configuration (lanes must share the timing model exactly for
    /// the shared clock scalars to be valid).
    pub fn new(engines: Vec<Engine>) -> Self {
        Self::with_tier(engines, simd::tier())
    }

    /// Like [`Lockstep::new`] with an explicit SIMD tier, so tests can
    /// exercise the scalar and SSE2 fallbacks deliberately. All tiers
    /// are bit-identical; this never changes results.
    ///
    /// # Panics
    ///
    /// Additionally panics if `tier` is not available on this host.
    pub fn with_tier(engines: Vec<Engine>, tier: SimdTier) -> Self {
        assert!(!engines.is_empty(), "a lockstep group needs >= 1 lane");
        assert!(
            tier.available(),
            "SIMD tier {} is not available on this host",
            tier.label()
        );
        let cfg = *engines[0].lane_cfg();
        for e in &engines[1..] {
            assert!(
                *e.lane_cfg() == cfg,
                "lockstep lanes must share one SimConfig"
            );
        }
        let live = (0..engines.len()).collect();
        Lockstep {
            lanes: engines
                .into_iter()
                .map(|engine| Lane { engine, dead: None })
                .collect(),
            live,
            cycle_soa: Vec::new(),
            next_soa: Vec::new(),
            missed: Vec::new(),
            tier,
        }
    }

    /// Number of lanes (dead ones included).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Resets measurement counters on every surviving lane (the
    /// warmup/measure boundary).
    pub fn reset_stats(&mut self) {
        for lane in &mut self.lanes {
            if lane.dead.is_none() {
                lane.engine.reset_stats();
            }
        }
    }

    /// Per-lane results in submission order: `Ok(SimResult)` for lanes
    /// that survived, `Err(panic reason)` for lanes that died.
    pub fn results(&self, workload: &str) -> Vec<Result<SimResult, String>> {
        self.lanes
            .iter()
            .map(|lane| match &lane.dead {
                Some(reason) => Err(reason.clone()),
                None => Ok(lane.engine.result(workload)),
            })
            .collect()
    }

    fn refresh_live(&mut self) {
        let lanes = &self.lanes;
        self.live.retain(|&i| lanes[i].dead.is_none());
    }

    fn all_live_idle(&self) -> bool {
        self.live.iter().all(|&i| self.lanes[i].engine.lane_idle())
    }

    /// Replays up to `budget` instructions from `events` on every live
    /// lane, resuming at (and updating) the shared cursor — the
    /// lockstep counterpart of `Engine::replay_events`, byte-identical
    /// per lane to running it serially.
    pub fn replay(&mut self, events: &[PreEvent], cur: &mut ReplayCursor, budget: u64) {
        let mut left = budget;
        self.refresh_live();
        if self.live.is_empty() {
            return;
        }
        let pow2 = self.lanes[self.live[0]]
            .engine
            .lane_cfg()
            .core
            .issue_width
            .is_power_of_two();
        while cur.idx < events.len() {
            if self.live.is_empty() {
                return;
            }
            // Group fast pass: every live lane idle, SoA clock state,
            // SIMD lane advance. Mirrors `Engine::replay_fast`.
            if pow2 && left > 0 && self.all_live_idle() {
                self.fast_pass(events, cur, &mut left);
                self.refresh_live();
                if cur.idx >= events.len() || self.live.is_empty() {
                    return;
                }
            }
            // Per-entry tier: the entry the fast pass bailed on (or a
            // lane with an open window). Each lane takes the
            // single-entry fast specialization when it qualifies, else
            // the exact serial general path. The budget/cursor split
            // is computed once, identically to serial replay.
            let ev = events[cur.idx];
            let gap_left = u64::from(ev.gap) - u64::from(cur.gap_done);
            let take = gap_left.min(left);
            let run_event = ev.flags != 0 && left > gap_left;
            let lane_fast = pow2 && run_event && ev.flags & F_IFETCH_MISS == 0;
            if run_event {
                // Overlap the lanes' independent L2 set fetches (same
                // hint as the fast pass; harmless for filler entries).
                let line = LineAddr::from_index(ev.dline);
                for k in 0..self.live.len() {
                    let i = self.live[k];
                    self.lanes[i].engine.lane_l2().prefetch_set(line);
                }
            }
            for k in 0..self.live.len() {
                let lane = &mut self.lanes[self.live[k]];
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if !(lane_fast && lane.engine.replay_entry_fast(&ev, gap_left)) {
                        lane.engine.replay_entry_general(&ev, take, run_event);
                    }
                }));
                if let Err(payload) = outcome {
                    lane.dead = Some(panic_reason(payload));
                }
            }
            self.refresh_live();
            cur.gap_done += take as u32;
            left -= take;
            if take < gap_left {
                return; // budget exhausted mid-gap
            }
            if ev.flags != 0 {
                if left == 0 {
                    return; // budget boundary right before the event
                }
                left -= 1;
            }
            cur.idx += 1;
            cur.gap_done = 0;
        }
    }

    /// The group hot loop: all live lanes idle, clock state SoA-packed,
    /// stream work amortized across the group. Structure and bail
    /// conditions mirror `Engine::replay_fast` exactly; the loop exits
    /// (after writing the SoA state back) on a filler or fetch-miss
    /// entry, a budget boundary, any lane's heap deadline, or any
    /// lane's L2 miss (whose continuation re-arms that lane's window).
    fn fast_pass(&mut self, events: &[PreEvent], cur: &mut ReplayCursor, left: &mut u64) {
        let Lockstep {
            lanes,
            live,
            cycle_soa,
            next_soa,
            missed,
            tier,
        } = self;
        let tier = *tier;
        let cfg = *lanes[live[0]].engine.lane_cfg();
        let shift = cfg.core.issue_width.trailing_zeros();
        let mask = u64::from(cfg.core.issue_width) - 1;
        let l2_hit = cfg.core.l2_hit_exposed;
        let mp_pen = cfg.core.mispredict_penalty;
        let ser_cost = cfg.core.serialize_cost;

        // Sync in: shared scalars from lane 0 (all live lanes agree by
        // the records-consumed invariant), per-lane cycle/deadline SoA.
        let (_, slots0, insts0) = lanes[live[0]].engine.lane_clock();
        let mut slots = u64::from(slots0);
        let mut insts = insts0;
        cycle_soa.clear();
        next_soa.clear();
        for &i in live.iter() {
            let (cycle, lane_slots, lane_insts) = lanes[i].engine.lane_clock();
            debug_assert_eq!(
                (lane_slots, lane_insts),
                (slots0, insts0),
                "lockstep lanes out of phase"
            );
            cycle_soa.push(cycle);
            next_soa.push(lanes[i].engine.lane_next_ev());
        }
        let mut lleft = *left;
        // Mispredicts are stream-driven and identical across lanes:
        // accumulate one shared count, credit every lane on sync-out.
        let mut mp: u64 = 0;

        while cur.idx < events.len() {
            let ev = events[cur.idx];
            if ev.flags == 0 || ev.flags & F_IFETCH_MISS != 0 {
                break;
            }
            let gap_left = u64::from(ev.gap) - u64::from(cur.gap_done);
            if gap_left >= lleft {
                break; // budget boundary inside this entry
            }
            // Any lane whose heap deadline falls within this entry
            // sends the whole group back to the general path.
            let step = (slots + gap_left) >> shift;
            if simd::any_due(tier, next_soa, cycle_soa, step) {
                break;
            }

            // Shared advance: gap records plus this instruction through
            // the issue stage, one broadcast add over every lane.
            insts += gap_left + 1;
            slots += gap_left + 1;
            let inc = slots >> shift;
            slots &= mask;
            simd::add_broadcast(tier, cycle_soa, inc);

            let line = LineAddr::from_index(ev.dline);
            match ev.flags >> K_SHIFT {
                K_LOAD | K_LOAD_FEEDS => {
                    // Kick every lane's set fetch off before the first
                    // probe: the per-lane L2 blocks are independent, so
                    // the host overlaps what would otherwise be a chain
                    // of dependent cache misses.
                    for &i in live.iter() {
                        lanes[i].engine.lane_l2().prefetch_set(line);
                    }
                    missed.clear();
                    for (k, &i) in live.iter().enumerate() {
                        if lanes[i].engine.lane_l2().access(line) {
                            cycle_soa[k] += l2_hit;
                        } else {
                            missed.push(k);
                        }
                    }
                    if !missed.is_empty() {
                        lleft -= gap_left + 1;
                        cur.idx += 1;
                        cur.gap_done = 0;
                        for (k, &i) in live.iter().enumerate() {
                            let e = &mut lanes[i].engine;
                            e.lane_set_clock(cycle_soa[k], slots as u32, insts);
                            e.lane_add_mispredicts(mp);
                        }
                        let feeds = ev.flags >> K_SHIFT == K_LOAD_FEEDS;
                        let pc = Pc::new(ev.pc);
                        for &k in missed.iter() {
                            let lane = &mut lanes[live[k]];
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                lane.engine.lane_load_continuation(line, pc, feeds);
                            }));
                            if let Err(payload) = outcome {
                                lane.dead = Some(panic_reason(payload));
                            }
                        }
                        *left = lleft;
                        return;
                    }
                }
                K_STORE_MISS => {
                    // A store that hits the L2 after all costs nothing
                    // extra (write buffering hides it) — only misses
                    // have a continuation.
                    for &i in live.iter() {
                        lanes[i].engine.lane_l2().prefetch_set(line);
                    }
                    missed.clear();
                    for (k, &i) in live.iter().enumerate() {
                        if !lanes[i].engine.lane_l2().access_dirty(line) {
                            missed.push(k);
                        }
                    }
                    if !missed.is_empty() {
                        lleft -= gap_left + 1;
                        cur.idx += 1;
                        cur.gap_done = 0;
                        for (k, &i) in live.iter().enumerate() {
                            let e = &mut lanes[i].engine;
                            e.lane_set_clock(cycle_soa[k], slots as u32, insts);
                            e.lane_add_mispredicts(mp);
                        }
                        for &k in missed.iter() {
                            let lane = &mut lanes[live[k]];
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                lane.engine.lane_store_continuation(line);
                            }));
                            if let Err(payload) = outcome {
                                lane.dead = Some(panic_reason(payload));
                            }
                        }
                        *left = lleft;
                        return;
                    }
                }
                K_STORE_HIT => {
                    for &i in live.iter() {
                        lanes[i].engine.lane_l2().mark_dirty(line);
                    }
                }
                K_MISPREDICT => {
                    mp += 1;
                    simd::add_broadcast(tier, cycle_soa, mp_pen);
                }
                K_SERIALIZE => {
                    simd::add_broadcast(tier, cycle_soa, ser_cost);
                }
                other => unreachable!("corrupt PreEvent kind {other}"),
            }

            lleft -= gap_left + 1;
            cur.idx += 1;
            cur.gap_done = 0;
        }

        for (k, &i) in live.iter().enumerate() {
            let e = &mut lanes[i].engine;
            e.lane_set_clock(cycle_soa[k], slots as u32, insts);
            e.lane_add_mispredicts(mp);
        }
        *left = lleft;
    }
}
