//! The record-stepping CMP engine, retained as a differential oracle.
//!
//! This is the original chip-multiprocessor engine: it steps one trace
//! record at a time, always picking the core with the smallest local
//! clock (ties to the lowest index), probing the per-core L1s inline.
//! The production engine is now the discrete-event rebuild in
//! [`crate::cmp`], which must be *metric-identical* to this one — the
//! differential battery in `crates/bench/tests/cmp_des.rs` (and the
//! quick checks in `crate::cmp`'s own tests) pins the equivalence
//! record for record.
//!
//! Compiled only for tests and under the `stepping-oracle` feature so
//! the release binaries carry a single CMP engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ebcp_core::EpochTracker;
use ebcp_mem::{MemOutcome, MemorySystem, MshrFile, PrefetchBuffer, SetAssocCache};
use ebcp_prefetch::{Action, MissInfo, PrefetchHitInfo, Prefetcher};
use ebcp_trace::{Op, TraceRecord};
use ebcp_types::{AccessKind, Cycle, FxHashMap, LineAddr, MemClass, Pc};

use crate::cmp::CmpResult;
use crate::config::SimConfig;
use crate::metrics::SimResult;

#[derive(Debug, Clone, Copy)]
struct Outst {
    line: LineAddr,
    done: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    TableDone { token: u64 },
    PrefetchArrive { line: LineAddr, origin: u64 },
    StoreFill { line: LineAddr },
}

#[derive(Debug, Clone, Copy, Eq)]
struct Ev {
    at: Cycle,
    seq: u64,
    kind: EvKind,
}

/// Heap ordering key: `(at, seq)` — `seq` is unique per engine.
/// Equality must match `Ord` (the derived `PartialEq` also compared
/// `kind`, letting `a == b` disagree with `a.cmp(&b) == Equal` and
/// violating the contract `BinaryHeap` relies on).
impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CoreCounters {
    inst_misses: u64,
    load_misses: u64,
    store_misses: u64,
    secondary_misses: u64,
    store_skipped: u64,
    averted_inst: u64,
    averted_load: u64,
    averted_store: u64,
    partial_hits: u64,
    stall_cycles: Cycle,
}

struct Core {
    id: u8,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    epoch: EpochTracker,
    cycle: Cycle,
    issue_slots: u32,
    insts: u64,
    outstanding: Vec<Outst>,
    window_insts: u32,
    dep_countdown: Option<u32>,
    last_fetch_line: Option<LineAddr>,
    c: CoreCounters,
    cycle_base: Cycle,
    insts_base: u64,
}

/// The N-core shared-L2 engine, stepped record by record (the oracle).
pub struct SteppingCmpEngine {
    cfg: SimConfig,
    cores: Vec<Core>,
    l2: SetAssocCache,
    pbuf: PrefetchBuffer,
    mshr: MshrFile,
    mem: MemorySystem,
    pf: Box<dyn Prefetcher>,
    pf_inflight: FxHashMap<LineAddr, Cycle>,
    events: BinaryHeap<Reverse<Ev>>,
    next_ev_at: Cycle,
    ev_seq: u64,
    actions: Vec<Action>,
    // Shared-traffic counters (whole-chip).
    pf_requested: u64,
    pf_filtered: u64,
    pf_dropped_mshr: u64,
    pf_dropped_bus: u64,
    pf_issued: u64,
    pf_evicted_unused: u64,
    table_reads: u64,
    table_read_drops: u64,
    table_writes: u64,
    writebacks: u64,
    shared_base: SharedBase,
    shared_snapshotted: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct SharedBase {
    pf_requested: u64,
    pf_filtered: u64,
    pf_dropped_mshr: u64,
    pf_dropped_bus: u64,
    pf_issued: u64,
    pf_evicted_unused: u64,
    table_reads: u64,
    table_read_drops: u64,
    table_writes: u64,
    writebacks: u64,
}

impl std::fmt::Debug for SteppingCmpEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SteppingCmpEngine")
            .field("cores", &self.cores.len())
            .field("prefetcher", &self.pf.name())
            .finish_non_exhaustive()
    }
}

impl SteppingCmpEngine {
    /// Creates an N-core engine over a cold machine.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or exceeds 255.
    pub fn new(cfg: SimConfig, n_cores: usize, pf: Box<dyn Prefetcher>) -> Self {
        assert!(n_cores > 0 && n_cores <= 255, "1..=255 cores");
        let cores = (0..n_cores)
            .map(|id| Core {
                id: id as u8,
                l1i: SetAssocCache::new(cfg.l1i),
                l1d: SetAssocCache::new(cfg.l1d),
                epoch: EpochTracker::new(),
                cycle: 0,
                issue_slots: 0,
                insts: 0,
                outstanding: Vec::new(),
                window_insts: 0,
                dep_countdown: None,
                last_fetch_line: None,
                c: CoreCounters::default(),
                cycle_base: 0,
                insts_base: 0,
            })
            .collect();
        SteppingCmpEngine {
            cores,
            l2: SetAssocCache::new(cfg.l2),
            pbuf: PrefetchBuffer::new(cfg.pbuf_entries, cfg.pbuf_ways.min(cfg.pbuf_entries)),
            mshr: MshrFile::new(cfg.mshrs),
            mem: MemorySystem::new(cfg.mem),
            pf,
            pf_inflight: FxHashMap::default(),
            events: BinaryHeap::new(),
            next_ev_at: Cycle::MAX,
            ev_seq: 0,
            actions: Vec::new(),
            pf_requested: 0,
            pf_filtered: 0,
            pf_dropped_mshr: 0,
            pf_dropped_bus: 0,
            pf_issued: 0,
            pf_evicted_unused: 0,
            table_reads: 0,
            table_read_drops: 0,
            table_writes: 0,
            writebacks: 0,
            shared_base: SharedBase::default(),
            shared_snapshotted: false,
            cfg,
        }
    }

    /// Runs one trace per core (all cores consume `warmup + measure`
    /// records; statistics cover the measurement part). Returns per-core
    /// and aggregate results.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one trace per core is supplied.
    pub fn run(
        &mut self,
        traces: &[Vec<TraceRecord>],
        warmup: u64,
        measure: u64,
        workload: &str,
    ) -> CmpResult {
        assert_eq!(traces.len(), self.cores.len(), "one trace per core");
        let total = warmup + measure;
        let mut cursors = vec![0usize; traces.len()];
        loop {
            // Step the core with the smallest local clock that still has
            // trace records left.
            let mut pick: Option<usize> = None;
            for (i, c) in self.cores.iter().enumerate() {
                if (cursors[i] as u64) < total
                    && cursors[i] < traces[i].len()
                    && pick.map(|p| c.cycle < self.cores[p].cycle).unwrap_or(true)
                {
                    pick = Some(i);
                }
            }
            let Some(i) = pick else { break };
            let rec = traces[i][cursors[i]];
            cursors[i] += 1;
            self.step_core(i, &rec);
            if self.cores[i].insts == warmup {
                self.reset_core_stats(i);
                if !self.shared_snapshotted && self.cores.iter().all(|c| c.insts >= warmup) {
                    self.shared_snapshotted = true;
                    self.snapshot_shared();
                }
            }
        }
        self.collect(workload)
    }

    /// Runs one trace *generator* per core, pulling records in
    /// [`crate::Engine::CHUNK_RECORDS`]-sized chunks instead of
    /// requiring fully materialized traces — the CMP counterpart of the
    /// single-core engine's chunked delivery, so large multi-core runs
    /// respect the harness memory budget.
    ///
    /// Per-core chunk cursors preserve the smallest-clock scheduling of
    /// [`SteppingCmpEngine::run`] exactly: each core refills its own buffer only
    /// when picked, so the interleaving — and therefore the result — is
    /// identical to the materialized path.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one generator per core is supplied.
    pub fn run_chunked(
        &mut self,
        gens: &mut [ebcp_trace::TraceGenerator],
        warmup: u64,
        measure: u64,
        workload: &str,
    ) -> CmpResult {
        assert_eq!(gens.len(), self.cores.len(), "one generator per core");
        let total = warmup + measure;
        struct Cursor {
            buf: Vec<TraceRecord>,
            pos: usize,
            consumed: u64,
            dry: bool,
        }
        let mut curs: Vec<Cursor> = (0..gens.len())
            .map(|_| Cursor {
                buf: Vec::with_capacity(crate::Engine::CHUNK_RECORDS),
                pos: 0,
                consumed: 0,
                dry: false,
            })
            .collect();
        loop {
            // Step the core with the smallest local clock that still
            // has records left (same policy as `run`).
            let mut pick: Option<usize> = None;
            for (i, c) in self.cores.iter().enumerate() {
                let cur = &curs[i];
                if cur.consumed < total
                    && !(cur.dry && cur.pos >= cur.buf.len())
                    && pick.map(|p| c.cycle < self.cores[p].cycle).unwrap_or(true)
                {
                    pick = Some(i);
                }
            }
            let Some(i) = pick else { break };
            if curs[i].pos >= curs[i].buf.len() {
                let want = crate::Engine::CHUNK_RECORDS
                    .min(usize::try_from(total - curs[i].consumed).unwrap_or(usize::MAX));
                let got = gens[i].next_chunk(&mut curs[i].buf, want);
                curs[i].pos = 0;
                if got == 0 {
                    curs[i].dry = true;
                    continue;
                }
            }
            let rec = curs[i].buf[curs[i].pos];
            curs[i].pos += 1;
            curs[i].consumed += 1;
            self.step_core(i, &rec);
            if self.cores[i].insts == warmup {
                self.reset_core_stats(i);
                if !self.shared_snapshotted && self.cores.iter().all(|c| c.insts >= warmup) {
                    self.shared_snapshotted = true;
                    self.snapshot_shared();
                }
            }
        }
        self.collect(workload)
    }

    fn reset_core_stats(&mut self, i: usize) {
        let c = &mut self.cores[i];
        c.c = CoreCounters::default();
        c.cycle_base = c.cycle;
        c.insts_base = c.insts;
        c.epoch.reset_stats();
    }

    fn snapshot_shared(&mut self) {
        self.shared_base = SharedBase {
            pf_requested: self.pf_requested,
            pf_filtered: self.pf_filtered,
            pf_dropped_mshr: self.pf_dropped_mshr,
            pf_dropped_bus: self.pf_dropped_bus,
            pf_issued: self.pf_issued,
            pf_evicted_unused: self.pf_evicted_unused,
            table_reads: self.table_reads,
            table_read_drops: self.table_read_drops,
            table_writes: self.table_writes,
            writebacks: self.writebacks,
        };
        self.pf.reset_aux_stats();
    }

    fn collect(&self, workload: &str) -> CmpResult {
        let cores: Vec<SimResult> = self
            .cores
            .iter()
            .map(|c| SimResult {
                prefetcher: self.pf.name().to_owned(),
                workload: format!("{workload}#core{}", c.id),
                insts: c.insts - c.insts_base,
                cycles: c.cycle - c.cycle_base,
                epochs: c.epoch.stats().epochs,
                l2_inst_misses: c.c.inst_misses,
                l2_load_misses: c.c.load_misses,
                l2_store_misses: c.c.store_misses,
                secondary_misses: c.c.secondary_misses,
                store_skipped: c.c.store_skipped,
                averted_inst: c.c.averted_inst,
                averted_load: c.c.averted_load,
                averted_store: c.c.averted_store,
                partial_hits: c.c.partial_hits,
                stall_cycles: c.c.stall_cycles,
                ..SimResult::default()
            })
            .collect();
        let mut aggregate = SimResult {
            prefetcher: self.pf.name().to_owned(),
            workload: workload.to_owned(),
            pf_requested: self.pf_requested - self.shared_base.pf_requested,
            pf_issued: self.pf_issued - self.shared_base.pf_issued,
            pf_dropped_bus: self.pf_dropped_bus - self.shared_base.pf_dropped_bus,
            pf_dropped_mshr: self.pf_dropped_mshr - self.shared_base.pf_dropped_mshr,
            pf_filtered: self.pf_filtered - self.shared_base.pf_filtered,
            pf_evicted_unused: self.pf_evicted_unused - self.shared_base.pf_evicted_unused,
            table_reads: self.table_reads - self.shared_base.table_reads,
            table_read_drops: self.table_read_drops - self.shared_base.table_read_drops,
            table_writes: self.table_writes - self.shared_base.table_writes,
            writebacks: self.writebacks - self.shared_base.writebacks,
            ..SimResult::default()
        };
        for c in &cores {
            aggregate.insts += c.insts;
            aggregate.cycles = aggregate.cycles.max(c.cycles);
            aggregate.epochs += c.epochs;
            aggregate.l2_inst_misses += c.l2_inst_misses;
            aggregate.l2_load_misses += c.l2_load_misses;
            aggregate.l2_store_misses += c.l2_store_misses;
            aggregate.secondary_misses += c.secondary_misses;
            aggregate.store_skipped += c.store_skipped;
            aggregate.averted_inst += c.averted_inst;
            aggregate.averted_load += c.averted_load;
            aggregate.averted_store += c.averted_store;
            aggregate.partial_hits += c.partial_hits;
            aggregate.stall_cycles += c.stall_cycles;
        }
        CmpResult { cores, aggregate }
    }

    // ------------------------------------------------------------------
    // Per-core stepping (mirrors the single-core engine's model)
    // ------------------------------------------------------------------

    fn step_core(&mut self, i: usize, rec: &TraceRecord) {
        if !self.cores[i].outstanding.is_empty() {
            self.drain_outstanding(i);
        }
        if self.next_ev_at <= self.cores[i].cycle {
            let upto = self.cores[i].cycle;
            self.drain_events(upto);
        }

        self.cores[i].insts += 1;

        let iline = rec.pc.line();
        if self.cores[i].last_fetch_line != Some(iline) {
            self.cores[i].last_fetch_line = Some(iline);
            self.fetch(i, iline, rec.pc);
        }

        let core = &mut self.cores[i];
        core.issue_slots += 1;
        if core.issue_slots >= self.cfg.core.issue_width {
            core.cycle += 1;
            core.issue_slots = 0;
        }
        if !core.outstanding.is_empty() {
            core.window_insts += 1;
        }

        match rec.op {
            Op::Alu => {}
            Op::Load {
                addr,
                feeds_mispredict,
            } => self.load(i, addr.line(), rec.pc, feeds_mispredict),
            Op::Store { addr } => self.store(i, addr.line()),
            Op::Branch { mispredicted } => {
                if mispredicted {
                    self.cores[i].cycle += self.cfg.core.mispredict_penalty;
                }
            }
            Op::Serialize => {
                if self.cores[i].outstanding.is_empty() {
                    self.cores[i].cycle += self.cfg.core.serialize_cost;
                } else {
                    self.stall_all(i);
                }
            }
        }

        if !self.cores[i].outstanding.is_empty() {
            if self.cores[i].window_insts >= self.cfg.core.rob_entries {
                self.stall_all(i);
            } else if let Some(cd) = self.cores[i].dep_countdown {
                if cd == 0 {
                    self.stall_all(i);
                } else {
                    self.cores[i].dep_countdown = Some(cd - 1);
                }
            }
        }
    }

    fn fetch(&mut self, i: usize, iline: LineAddr, pc: Pc) {
        // Eager L1 fill (mirrors the single-core engine): every L1 miss
        // installs the line at the access, regardless of where the data
        // comes from, keeping L1 state prefetcher-independent.
        if self.cores[i].l1i.access_fill(iline) {
            return;
        }
        if self.l2.access(iline) {
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            return;
        }
        if let Some(origin) = self.pbuf.lookup_consume(iline) {
            self.cores[i].c.averted_inst += 1;
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            self.fill_l2(i, iline, false);
            self.notify_pbuf_hit(i, iline, pc, AccessKind::InstrFetch, origin);
            return;
        }
        self.offchip_demand(i, iline, pc, AccessKind::InstrFetch);
        self.stall_all(i);
    }

    fn load(&mut self, i: usize, dline: LineAddr, pc: Pc, feeds_mispredict: bool) {
        if self.cores[i].l1d.access_fill(dline) {
            return;
        }
        if self.l2.access(dline) {
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            return;
        }
        if let Some(origin) = self.pbuf.lookup_consume(dline) {
            self.cores[i].c.averted_load += 1;
            self.cores[i].cycle += self.cfg.core.l2_hit_exposed;
            self.fill_l2(i, dline, false);
            self.notify_pbuf_hit(i, dline, pc, AccessKind::Load, origin);
            return;
        }
        self.offchip_demand(i, dline, pc, AccessKind::Load);
        if feeds_mispredict {
            self.cores[i].dep_countdown = Some(self.cfg.core.dep_branch_window);
        }
    }

    fn store(&mut self, i: usize, dline: LineAddr) {
        if self.cores[i].l1d.access_fill(dline) {
            self.l2.mark_dirty(dline);
            return;
        }
        if self.l2.access(dline) {
            self.l2.mark_dirty(dline);
            return;
        }
        if self.pbuf.lookup_consume(dline).is_some() {
            self.cores[i].c.averted_store += 1;
            self.fill_l2(i, dline, true);
            return;
        }
        if self.mshr.contains(dline) {
            self.cores[i].c.secondary_misses += 1;
            return;
        }
        if self.mshr.len() + self.pf_inflight.len() >= self.cfg.mshrs {
            // Store buffer absorbs it (same policy as the single-core
            // engine); counted, not silent.
            self.cores[i].c.store_skipped += 1;
            return;
        }
        self.cores[i].c.store_misses += 1;
        self.mshr.allocate(dline);
        let now = self.cores[i].cycle;
        if let MemOutcome::Done { done } = self.mem.request(now, MemClass::Demand) {
            self.push_event(done, EvKind::StoreFill { line: dline });
        }
    }

    fn offchip_demand(&mut self, i: usize, line: LineAddr, pc: Pc, kind: AccessKind) {
        let now = self.cores[i].cycle;
        if let Some(arrival) = self.pf_inflight.remove(&line) {
            self.cores[i].c.partial_hits += 1;
            let trigger = self.cores[i].epoch.on_offchip_issue(now);
            self.count_miss(i, kind);
            self.mshr.allocate(line);
            let done = arrival.max(now + 1);
            self.cores[i].outstanding.push(Outst { line, done });
            self.notify_miss(i, line, pc, kind, trigger);
            return;
        }
        if self.mshr.contains(line) {
            // Outstanding somewhere (possibly another core): attach to
            // this core's window with a conservative full-latency
            // completion. Still a merged (secondary) miss in MSHR terms.
            self.cores[i].c.secondary_misses += 1;
            let trigger = self.cores[i].epoch.on_offchip_issue(now);
            self.count_miss(i, kind);
            let done = now + self.cfg.mem.latency;
            self.cores[i].outstanding.push(Outst { line, done });
            self.notify_miss(i, line, pc, kind, trigger);
            return;
        }
        self.wait_for_mshr(i);
        let now = self.cores[i].cycle;
        let trigger = self.cores[i].epoch.on_offchip_issue(now);
        self.count_miss(i, kind);
        self.mshr.allocate(line);
        let done = match self.mem.request(now, MemClass::Demand) {
            MemOutcome::Done { done } => done,
            MemOutcome::Dropped => unreachable!("demand requests are never dropped"),
        };
        self.cores[i].outstanding.push(Outst { line, done });
        self.notify_miss(i, line, pc, kind, trigger);
    }

    fn count_miss(&mut self, i: usize, kind: AccessKind) {
        match kind {
            AccessKind::InstrFetch => self.cores[i].c.inst_misses += 1,
            AccessKind::Load => self.cores[i].c.load_misses += 1,
            AccessKind::Store => self.cores[i].c.store_misses += 1,
        }
    }

    fn wait_for_mshr(&mut self, i: usize) {
        while self.mshr.is_full() {
            if !self.cores[i].outstanding.is_empty() {
                self.stall_all(i);
            } else if self.next_ev_at != Cycle::MAX {
                self.cores[i].cycle = self.cores[i].cycle.max(self.next_ev_at);
                let upto = self.cores[i].cycle;
                self.drain_events(upto);
            } else {
                // Another core holds the registers; skew this core
                // forward past the soonest possible release.
                self.cores[i].cycle += self.cfg.mem.latency;
                return;
            }
        }
    }

    fn notify_miss(&mut self, i: usize, line: LineAddr, pc: Pc, kind: AccessKind, trigger: bool) {
        let info = MissInfo {
            line,
            pc,
            kind,
            epoch_trigger: trigger,
            now: self.cores[i].cycle,
            core: self.cores[i].id,
        };
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_miss(&info, &mut acts);
        let now = self.cores[i].cycle;
        self.apply_actions(now, &acts);
        self.actions = acts;
    }

    fn notify_pbuf_hit(&mut self, i: usize, line: LineAddr, pc: Pc, kind: AccessKind, origin: u64) {
        let info = PrefetchHitInfo {
            line,
            pc,
            kind,
            origin,
            would_be_trigger: self.cores[i].epoch.would_trigger(),
            now: self.cores[i].cycle,
            core: self.cores[i].id,
        };
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_prefetch_hit(&info, &mut acts);
        let now = self.cores[i].cycle;
        self.apply_actions(now, &acts);
        self.actions = acts;
    }

    fn apply_actions(&mut self, now: Cycle, acts: &[Action]) {
        for a in acts {
            match *a {
                Action::Prefetch { line, origin } => {
                    self.pf_requested += 1;
                    if self.l2.probe(line)
                        || self.pbuf.contains(line)
                        || self.mshr.contains(line)
                        || self.pf_inflight.contains_key(&line)
                    {
                        self.pf_filtered += 1;
                        continue;
                    }
                    if self.mshr.len() + self.pf_inflight.len() >= self.cfg.mshrs {
                        self.pf_dropped_mshr += 1;
                        continue;
                    }
                    match self.mem.request(now, MemClass::Prefetch) {
                        MemOutcome::Done { done } => {
                            self.pf_issued += 1;
                            self.pf_inflight.insert(line, done);
                            self.push_event(done, EvKind::PrefetchArrive { line, origin });
                        }
                        MemOutcome::Dropped => self.pf_dropped_bus += 1,
                    }
                }
                Action::TableRead { token, delay } => {
                    match self.mem.request(now + delay, MemClass::TableRead) {
                        MemOutcome::Done { done } => {
                            self.table_reads += 1;
                            self.push_event(done, EvKind::TableDone { token });
                        }
                        MemOutcome::Dropped => {
                            self.table_read_drops += 1;
                            self.pf.on_table_dropped(token);
                        }
                    }
                }
                Action::TableWrite => {
                    self.table_writes += 1;
                    let _ = self.mem.request(now, MemClass::TableWrite);
                }
            }
        }
    }

    fn fill_l2(&mut self, i: usize, line: LineAddr, dirty: bool) {
        if let Some(ev) = self.l2.fill(line, dirty) {
            if ev.dirty {
                self.writebacks += 1;
                let now = self.cores[i].cycle;
                let _ = self.mem.request(now, MemClass::Writeback);
            }
        }
    }

    fn stall_all(&mut self, i: usize) {
        let max_done = self.cores[i]
            .outstanding
            .iter()
            .map(|o| o.done)
            .max()
            .unwrap_or(self.cores[i].cycle);
        if max_done > self.cores[i].cycle {
            self.cores[i].c.stall_cycles += max_done - self.cores[i].cycle;
            self.cores[i].cycle = max_done;
        }
        let outs = std::mem::take(&mut self.cores[i].outstanding);
        for o in outs {
            self.complete_demand(i, o);
        }
        self.end_window(i);
    }

    fn complete_demand(&mut self, i: usize, o: Outst) {
        self.fill_l2(i, o.line, false);
        self.mshr.release(o.line);
    }

    fn end_window(&mut self, i: usize) {
        let now = self.cores[i].cycle;
        self.cores[i].epoch.on_all_complete(now);
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_epoch_end(now, &mut acts);
        self.apply_actions(now, &acts);
        self.actions = acts;
        self.cores[i].window_insts = 0;
        self.cores[i].dep_countdown = None;
        if self.next_ev_at <= now {
            self.drain_events(now);
        }
    }

    fn drain_outstanding(&mut self, i: usize) {
        let mut k = 0;
        let mut removed = false;
        while k < self.cores[i].outstanding.len() {
            if self.cores[i].outstanding[k].done <= self.cores[i].cycle {
                let o = self.cores[i].outstanding.swap_remove(k);
                self.complete_demand(i, o);
                removed = true;
            } else {
                k += 1;
            }
        }
        if removed && self.cores[i].outstanding.is_empty() {
            self.end_window(i);
        }
    }

    fn push_event(&mut self, at: Cycle, kind: EvKind) {
        let ev = Ev {
            at,
            seq: self.ev_seq,
            kind,
        };
        self.ev_seq += 1;
        self.events.push(Reverse(ev));
        self.next_ev_at = self.next_ev_at.min(at);
    }

    fn drain_events(&mut self, upto: Cycle) {
        while let Some(Reverse(ev)) = self.events.peek().copied() {
            if ev.at > upto {
                break;
            }
            self.events.pop();
            match ev.kind {
                EvKind::TableDone { token } => {
                    let mut acts = std::mem::take(&mut self.actions);
                    acts.clear();
                    self.pf.on_table_done(token, ev.at, &mut acts);
                    self.apply_actions(ev.at, &acts);
                    self.actions = acts;
                }
                EvKind::PrefetchArrive { line, origin } => {
                    self.pf_inflight.remove(&line);
                    if !self.l2.probe(line)
                        && !self.mshr.contains(line)
                        && self.pbuf.insert(line, origin).is_some()
                    {
                        self.pf_evicted_unused += 1;
                    }
                }
                EvKind::StoreFill { line } => {
                    // Attribute the (rare) writeback to core 0's clock.
                    self.fill_l2(0, line, true);
                    self.mshr.release(line);
                }
            }
        }
        self.next_ev_at = self
            .events
            .peek()
            .map(|Reverse(e)| e.at)
            .unwrap_or(Cycle::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_prefetch::NullPrefetcher;
    use ebcp_trace::{TraceGenerator, WorkloadSpec};

    fn small_workload() -> WorkloadSpec {
        WorkloadSpec {
            templates: 24,
            segments_per_template: 60,
            data_pool_lines: 1 << 14,
            cold_code_pool_lines: 2048,
            warm_pool_lines: 128,
            ..WorkloadSpec::database()
        }
    }

    /// Per-core traces over the SAME program (shared working set) —
    /// cores differ only in execution order and noise.
    fn traces(n: usize, len: usize) -> Vec<Vec<TraceRecord>> {
        let w = small_workload();
        (0..n)
            .map(|s| TraceGenerator::new(&w, s as u64 + 1).take(len).collect())
            .collect()
    }

    #[test]
    fn single_core_cmp_close_to_engine() {
        // N=1 CMP and the single-core engine implement the same model;
        // their baseline results must agree closely.
        let t = traces(1, 200_000);
        let mut cmp =
            SteppingCmpEngine::new(SimConfig::scaled_down(16), 1, Box::new(NullPrefetcher));
        let r = cmp.run(&t, 50_000, 150_000, "w");

        let mut engine =
            crate::engine::Engine::new(SimConfig::scaled_down(16), Box::new(NullPrefetcher));
        for rec in &t[0][..50_000] {
            engine.step(rec);
        }
        engine.reset_stats();
        for rec in &t[0][50_000..] {
            engine.step(rec);
        }
        let single = engine.result("w");
        let a = r.cores[0].cpi();
        let b = single.cpi();
        assert!(
            (a - b).abs() / b < 0.02,
            "N=1 CMP CPI {a:.4} vs single-core {b:.4}"
        );
        // The two event loops are the same model but not lockstep (CPI
        // above is allowed 2% divergence), so an epoch in flight when
        // warm-up statistics reset can be credited to either side of
        // the boundary on one engine and not the other: allow one
        // boundary epoch of slack.
        let (ec, es) = (r.cores[0].epochs, single.epochs);
        assert!(
            ec.abs_diff(es) <= 1,
            "N=1 CMP epochs {ec} vs single-core {es}"
        );
    }

    #[test]
    fn ev_eq_agrees_with_ord() {
        // Regression for the derived-PartialEq / manual-Ord mismatch.
        let a = Ev {
            at: 3,
            seq: 0,
            kind: EvKind::TableDone { token: 9 },
        };
        let b = Ev {
            at: 3,
            seq: 0,
            kind: EvKind::PrefetchArrive {
                line: LineAddr::from_index(5),
                origin: 0,
            },
        };
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a, b);
    }
}
