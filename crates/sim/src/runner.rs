//! Convenience layer: run a workload × prefetcher matrix.

use std::sync::Arc;

use ebcp_core::{EbcpConfig, EbcpPrefetcher};
use ebcp_prefetch::{BaselineConfig, NullPrefetcher, Prefetcher};
use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::{TraceGenerator, TraceRecord, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::metrics::SimResult;

pub use ebcp_trace::template::WorkloadProgram as Program;

/// Which prefetcher to simulate: none, a baseline from `ebcp-prefetch`,
/// or the EBCP itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PrefetcherSpec {
    /// No prefetching (the baseline of every figure).
    None,
    /// One of the Figure 9 baselines, with a display name.
    Baseline {
        /// Display name ("ghb-large", ...).
        name: String,
        /// The baseline's configuration.
        config: BaselineConfig,
    },
    /// The epoch-based correlation prefetcher.
    Ebcp(EbcpConfig),
}

impl PrefetcherSpec {
    /// A named baseline.
    pub fn baseline(name: &str, config: BaselineConfig) -> Self {
        PrefetcherSpec::Baseline {
            name: name.to_owned(),
            config,
        }
    }

    /// Builds the prefetcher instance.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherSpec::None => Box::new(NullPrefetcher),
            PrefetcherSpec::Baseline { name, config } => config.build_named(name),
            PrefetcherSpec::Ebcp(cfg) => Box::new(EbcpPrefetcher::new(*cfg)),
        }
    }

    /// Display name of the prefetcher this spec builds.
    pub fn name(&self) -> String {
        match self {
            PrefetcherSpec::None => "none".to_owned(),
            PrefetcherSpec::Baseline { name, .. } => name.clone(),
            PrefetcherSpec::Ebcp(cfg) => match cfg.variant {
                ebcp_core::EbcpVariant::Standard => "ebcp".to_owned(),
                ebcp_core::EbcpVariant::Minus => "ebcp-minus".to_owned(),
            },
        }
    }
}

/// A complete run specification: workload, trace length and machine.
///
/// # Examples
///
/// ```
/// use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
/// use ebcp_trace::WorkloadSpec;
///
/// let spec = RunSpec {
///     workload: WorkloadSpec::database().scaled(1, 32),
///     seed: 7,
///     warmup_insts: 30_000,
///     measure_insts: 30_000,
///     sim: SimConfig::scaled_down(16),
/// };
/// let base = spec.run(&PrefetcherSpec::None);
/// assert!(base.l2_load_misses > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// The workload to generate.
    pub workload: WorkloadSpec,
    /// Trace seed (runtime randomness; structure comes from the spec).
    pub seed: u64,
    /// Instructions simulated before statistics reset.
    pub warmup_insts: u64,
    /// Instructions measured after warm-up.
    pub measure_insts: u64,
    /// Machine configuration.
    pub sim: SimConfig,
}

impl RunSpec {
    /// Materializes the trace once (`warmup + measure` records) so many
    /// configurations can replay it.
    pub fn materialize(&self) -> Arc<Vec<TraceRecord>> {
        let n = (self.warmup_insts + self.measure_insts) as usize;
        let mut gen = TraceGenerator::new(&self.workload, self.seed);
        Arc::new(gen.collect_n(n))
    }

    /// Materializes the trace reusing an already-built workload program.
    pub fn materialize_with(&self, program: Arc<WorkloadProgram>) -> Arc<Vec<TraceRecord>> {
        let n = (self.warmup_insts + self.measure_insts) as usize;
        let mut gen = TraceGenerator::with_program(program, self.workload.clone(), self.seed);
        Arc::new(gen.collect_n(n))
    }

    /// Runs a prefetcher over this spec (generating the trace on the
    /// fly).
    pub fn run(&self, pf: &PrefetcherSpec) -> SimResult {
        let trace = self.materialize();
        self.run_on(&trace, pf)
    }

    /// Runs a prefetcher streaming the trace from the generator instead
    /// of materializing it — constant memory, so full-scale traces
    /// (hundreds of millions of records) stay feasible. Pass a shared
    /// pre-built program to avoid rebuilding templates per run.
    pub fn run_streaming(&self, program: Arc<WorkloadProgram>, pf: &PrefetcherSpec) -> SimResult {
        let mut gen = TraceGenerator::with_program(program, self.workload.clone(), self.seed);
        let mut engine = Engine::new(self.sim, pf.build());
        engine.run_chunks(&mut gen, self.warmup_insts);
        engine.reset_stats();
        engine.run_chunks(&mut gen, self.measure_insts);
        engine.result(&self.workload.name)
    }

    /// Runs a prefetcher over a pre-materialized trace.
    pub fn run_on(&self, trace: &[TraceRecord], pf: &PrefetcherSpec) -> SimResult {
        let mut engine = Engine::new(self.sim, pf.build());
        let warm = (self.warmup_insts as usize).min(trace.len());
        for rec in &trace[..warm] {
            engine.step(rec);
        }
        engine.reset_stats();
        for rec in &trace[warm..] {
            engine.step(rec);
        }
        engine.result(&self.workload.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::database().scaled(1, 32),
            seed: 11,
            warmup_insts: 60_000,
            measure_insts: 60_000,
            sim: SimConfig::scaled_down(16),
        }
    }

    #[test]
    fn baseline_run_produces_misses_and_epochs() {
        let r = quick_spec().run(&PrefetcherSpec::None);
        assert!(r.l2_load_misses > 20, "load misses {}", r.l2_load_misses);
        assert!(r.epochs > 20, "epochs {}", r.epochs);
        assert!(r.cpi() > 0.5, "cpi {}", r.cpi());
        assert_eq!(r.pf_issued, 0);
    }

    /// A workload small enough to recur several times within a short
    /// trace while its miss working set still overflows the scaled L2
    /// (128 KB = 2048 lines): recurrence is what correlation prefetching
    /// feeds on, eviction is what makes recurrences miss.
    fn recurring_spec() -> RunSpec {
        RunSpec {
            workload: WorkloadSpec {
                templates: 30,
                segments_per_template: 80,
                data_pool_lines: 1 << 14,
                cold_code_pool_lines: 2048,
                warm_pool_lines: 128,
                ..WorkloadSpec::database()
            },
            seed: 3,
            warmup_insts: 700_000,
            measure_insts: 700_000,
            sim: SimConfig::scaled_down(16),
        }
    }

    #[test]
    fn ebcp_improves_over_baseline() {
        let spec = recurring_spec();
        let trace = spec.materialize();
        let base = spec.run_on(&trace, &PrefetcherSpec::None);
        let ebcp = spec.run_on(&trace, &PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        assert!(
            ebcp.pf_issued > 100,
            "EBCP must issue prefetches, got {}",
            ebcp.pf_issued
        );
        assert!(
            ebcp.pf_useful() > 50,
            "prefetches must hit, got {}",
            ebcp.pf_useful()
        );
        let imp = ebcp.improvement_over(&base);
        assert!(
            imp > 0.02,
            "EBCP should improve CPI, got {:.2}%",
            imp * 100.0
        );
    }

    /// The chunked streaming path (`run_chunks` over generator refills)
    /// must be observationally identical to stepping a materialized
    /// trace record by record — same counters, cycles and stats.
    #[test]
    fn chunked_and_stepped_runs_agree() {
        let spec = quick_spec();
        let pf = PrefetcherSpec::Ebcp(EbcpConfig::tuned());
        let stepped = spec.run_on(&spec.materialize(), &pf);
        let program = Arc::new(WorkloadProgram::build(&spec.workload));
        let chunked = spec.run_streaming(program, &pf);
        assert_eq!(stepped, chunked);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = quick_spec();
        let a = spec.run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        let b = spec.run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        assert_eq!(a, b);
    }

    #[test]
    fn spec_names() {
        assert_eq!(PrefetcherSpec::None.name(), "none");
        assert_eq!(PrefetcherSpec::Ebcp(EbcpConfig::tuned()).name(), "ebcp");
        let b = PrefetcherSpec::baseline(
            "ghb-large",
            BaselineConfig::Ghb(ebcp_prefetch::GhbConfig::large()),
        );
        assert_eq!(b.name(), "ghb-large");
    }
}
