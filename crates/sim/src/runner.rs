//! Convenience layer: run a workload × prefetcher matrix.

use std::sync::Arc;

use ebcp_core::{EbcpConfig, EbcpPrefetcher};
use ebcp_prefetch::{
    BaselineConfig, NullPrefetcher, OffchipFilter, OffchipFilterConfig, Prefetcher,
};
use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::{TraceGenerator, TraceRecord, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::cmp::{CmpEngine, CmpResult};
use crate::config::SimConfig;
use crate::engine::Engine;
use crate::frontend::{PreResolved, PreResolver, ReplayCursor};
use crate::lockstep::Lockstep;
use crate::metrics::SimResult;

pub use ebcp_trace::template::WorkloadProgram as Program;

/// Which prefetcher to simulate: none, a baseline from `ebcp-prefetch`,
/// or the EBCP itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PrefetcherSpec {
    /// No prefetching (the baseline of every figure).
    None,
    /// One of the Figure 9 baselines, with a display name.
    Baseline {
        /// Display name ("ghb-large", ...).
        name: String,
        /// The baseline's configuration.
        config: BaselineConfig,
    },
    /// The epoch-based correlation prefetcher.
    Ebcp(EbcpConfig),
    /// Any other spec wrapped in the perceptron-style off-chip
    /// prediction filter (`"<inner>+nof"`): the inner prefetcher runs
    /// unchanged and the filter drops its low-confidence candidates.
    Filtered {
        /// The filter's predictor configuration.
        filter: OffchipFilterConfig,
        /// The wrapped prefetcher.
        inner: Box<PrefetcherSpec>,
    },
}

impl PrefetcherSpec {
    /// A named baseline.
    pub fn baseline(name: &str, config: BaselineConfig) -> Self {
        PrefetcherSpec::Baseline {
            name: name.to_owned(),
            config,
        }
    }

    /// Wraps `inner` in the off-chip prediction filter.
    pub fn filtered(inner: PrefetcherSpec) -> Self {
        PrefetcherSpec::Filtered {
            filter: OffchipFilterConfig::default_config(),
            inner: Box::new(inner),
        }
    }

    /// Builds the prefetcher instance.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherSpec::None => Box::new(NullPrefetcher),
            PrefetcherSpec::Baseline { name, config } => config.build_named(name),
            PrefetcherSpec::Ebcp(cfg) => Box::new(EbcpPrefetcher::new(*cfg)),
            PrefetcherSpec::Filtered { filter, inner } => {
                Box::new(OffchipFilter::wrap(*filter, inner.build()))
            }
        }
    }

    /// Display name of the prefetcher this spec builds.
    pub fn name(&self) -> String {
        match self {
            PrefetcherSpec::None => "none".to_owned(),
            PrefetcherSpec::Baseline { name, .. } => name.clone(),
            PrefetcherSpec::Ebcp(cfg) => match cfg.variant {
                ebcp_core::EbcpVariant::Standard => "ebcp".to_owned(),
                ebcp_core::EbcpVariant::Minus => "ebcp-minus".to_owned(),
            },
            PrefetcherSpec::Filtered { inner, .. } => format!("{}+nof", inner.name()),
        }
    }
}

/// A complete run specification: workload, trace length and machine.
///
/// # Examples
///
/// ```
/// use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
/// use ebcp_trace::WorkloadSpec;
///
/// let spec = RunSpec {
///     workload: WorkloadSpec::database().scaled(1, 32),
///     seed: 7,
///     warmup_insts: 30_000,
///     measure_insts: 30_000,
///     sim: SimConfig::scaled_down(16),
/// };
/// let base = spec.run(&PrefetcherSpec::None);
/// assert!(base.l2_load_misses > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// The workload to generate.
    pub workload: WorkloadSpec,
    /// Trace seed (runtime randomness; structure comes from the spec).
    pub seed: u64,
    /// Instructions simulated before statistics reset.
    pub warmup_insts: u64,
    /// Instructions measured after warm-up.
    pub measure_insts: u64,
    /// Machine configuration.
    pub sim: SimConfig,
}

impl RunSpec {
    /// Materializes the trace once (`warmup + measure` records) so many
    /// configurations can replay it.
    pub fn materialize(&self) -> Arc<Vec<TraceRecord>> {
        let n = (self.warmup_insts + self.measure_insts) as usize;
        let mut gen = TraceGenerator::new(&self.workload, self.seed);
        Arc::new(gen.collect_n(n))
    }

    /// Materializes the trace reusing an already-built workload program.
    pub fn materialize_with(&self, program: Arc<WorkloadProgram>) -> Arc<Vec<TraceRecord>> {
        let n = (self.warmup_insts + self.measure_insts) as usize;
        let mut gen = TraceGenerator::with_program(program, self.workload.clone(), self.seed);
        Arc::new(gen.collect_n(n))
    }

    /// Runs a prefetcher over this spec (generating the trace on the
    /// fly).
    pub fn run(&self, pf: &PrefetcherSpec) -> SimResult {
        let trace = self.materialize();
        self.run_on(&trace, pf)
    }

    /// Runs a prefetcher streaming the trace from the generator instead
    /// of materializing it — constant memory, so full-scale traces
    /// (hundreds of millions of records) stay feasible. Pass a shared
    /// pre-built program to avoid rebuilding templates per run.
    pub fn run_streaming(&self, program: Arc<WorkloadProgram>, pf: &PrefetcherSpec) -> SimResult {
        let mut gen = TraceGenerator::with_program(program, self.workload.clone(), self.seed);
        let mut engine = Engine::new(self.sim, pf.build());
        engine.run_chunks(&mut gen, self.warmup_insts);
        engine.reset_stats();
        engine.run_chunks(&mut gen, self.measure_insts);
        engine.result(&self.workload.name)
    }

    /// Runs a prefetcher over a pre-materialized trace.
    pub fn run_on(&self, trace: &[TraceRecord], pf: &PrefetcherSpec) -> SimResult {
        let mut engine = Engine::new(self.sim, pf.build());
        let warm = (self.warmup_insts as usize).min(trace.len());
        for rec in &trace[..warm] {
            engine.step(rec);
        }
        engine.reset_stats();
        for rec in &trace[warm..] {
            engine.step(rec);
        }
        engine.result(&self.workload.name)
    }

    /// Pre-resolves this spec's trace through the L1 front end into a
    /// compact event stream, streaming the generator in chunks
    /// (constant memory — nothing is materialized).
    ///
    /// The stream depends only on (workload, seed, record count, L1
    /// geometry), never on the prefetcher, so one stream serves every
    /// [`RunSpec::run_preresolved`] cell of a sweep.
    pub fn pre_resolve(&self) -> PreResolved {
        let mut gen = TraceGenerator::new(&self.workload, self.seed);
        self.pre_resolve_from(&mut gen)
    }

    /// [`RunSpec::pre_resolve`] reusing an already-built workload
    /// program.
    pub fn pre_resolve_with(&self, program: Arc<WorkloadProgram>) -> PreResolved {
        let mut gen = TraceGenerator::with_program(program, self.workload.clone(), self.seed);
        self.pre_resolve_from(&mut gen)
    }

    fn pre_resolve_from(&self, gen: &mut TraceGenerator) -> PreResolved {
        let mut pr = PreResolver::new(&self.sim);
        let mut chunk = Vec::with_capacity(Engine::CHUNK_RECORDS);
        let mut left = self.warmup_insts + self.measure_insts;
        while left > 0 {
            let want = Engine::CHUNK_RECORDS.min(usize::try_from(left).unwrap_or(usize::MAX));
            let got = gen.next_chunk(&mut chunk, want);
            if got == 0 {
                break;
            }
            pr.push_chunk(&chunk);
            left -= got as u64;
        }
        pr.finish()
    }

    /// Runs a prefetcher by replaying a pre-resolved event stream —
    /// byte-identical results to [`RunSpec::run_on`] over the stream's
    /// underlying trace, at back-end-only cost.
    ///
    /// # Panics
    ///
    /// Panics if the stream was resolved under different L1 geometries
    /// than `self.sim` (the stream would describe a different machine).
    pub fn run_preresolved(&self, pre: &PreResolved, pf: &PrefetcherSpec) -> SimResult {
        assert_eq!(
            (pre.l1i, pre.l1d),
            (self.sim.l1i, self.sim.l1d),
            "pre-resolved stream L1 geometry mismatch for {} x {}: the stream \
             describes a different machine and must be rebuilt",
            self.workload.name,
            pf.name(),
        );
        let mut engine = Engine::new(self.sim, pf.build());
        let mut cur = ReplayCursor::default();
        engine.replay_events(&pre.events, &mut cur, self.warmup_insts);
        engine.reset_stats();
        engine.replay_events(&pre.events, &mut cur, self.measure_insts);
        engine.result(&self.workload.name)
    }

    /// Runs a whole roster of prefetchers over one pre-resolved stream
    /// in a single lockstep pass (see [`Lockstep`]) — each lane's
    /// result byte-identical to its own [`RunSpec::run_preresolved`]
    /// call, at amortized stream cost.
    ///
    /// Per-lane fault isolation: a lane whose prefetcher panics comes
    /// back as `Err(panic reason)` while sibling lanes complete
    /// normally.
    ///
    /// # Panics
    ///
    /// Panics if `pfs` is empty or the stream was resolved under
    /// different L1 geometries than `self.sim`.
    pub fn run_preresolved_many(
        &self,
        pre: &PreResolved,
        pfs: &[PrefetcherSpec],
    ) -> Vec<Result<SimResult, String>> {
        self.run_preresolved_many_with(pre, pfs, ebcp_mem::simd::tier())
    }

    /// [`RunSpec::run_preresolved_many`] with an explicit SIMD tier
    /// (all tiers are bit-identical; tests use this to exercise the
    /// scalar and SSE2 fallback paths).
    pub fn run_preresolved_many_with(
        &self,
        pre: &PreResolved,
        pfs: &[PrefetcherSpec],
        tier: ebcp_mem::SimdTier,
    ) -> Vec<Result<SimResult, String>> {
        assert_eq!(
            (pre.l1i, pre.l1d),
            (self.sim.l1i, self.sim.l1d),
            "pre-resolved stream L1 geometry mismatch for {} lockstep sweep: the \
             stream describes a different machine and must be rebuilt",
            self.workload.name,
        );
        let engines = pfs
            .iter()
            .map(|pf| Engine::new(self.sim, pf.build()))
            .collect();
        let mut group = Lockstep::with_tier(engines, tier);
        let mut cur = ReplayCursor::default();
        group.replay(&pre.events, &mut cur, self.warmup_insts);
        group.reset_stats();
        group.replay(&pre.events, &mut cur, self.measure_insts);
        group.results(&self.workload.name)
    }
}

/// A complete CMP run specification: one workload × seed per core over
/// one shared machine.
///
/// The per-core front ends are prefetcher-independent, so each core's
/// stream is exactly the stream of its single-core [`RunSpec`]
/// (see [`CmpSpec::core_run_spec`]) — which is how the harness shares
/// per-core pre-resolved streams between CMP cells, single-core cells
/// and the on-disk cache.
///
/// # Examples
///
/// ```
/// use ebcp_sim::{CmpSpec, PrefetcherSpec, SimConfig};
/// use ebcp_trace::WorkloadSpec;
///
/// let spec = CmpSpec::homogeneous(
///     WorkloadSpec::database().scaled(1, 32),
///     2,
///     20_000,
///     20_000,
///     SimConfig::scaled_down(16),
/// );
/// let r = spec.run(&PrefetcherSpec::None);
/// assert_eq!(r.cores.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmpSpec {
    /// Display name for the whole cell (per-core results append
    /// `#core<k>`).
    pub name: String,
    /// One workload per core.
    pub workloads: Vec<WorkloadSpec>,
    /// One trace seed per core.
    pub seeds: Vec<u64>,
    /// Instructions each core runs before statistics reset.
    pub warmup_insts: u64,
    /// Instructions each core measures after warm-up.
    pub measure_insts: u64,
    /// The shared machine (per-core L1s + shared L2/bus/DRAM).
    pub sim: SimConfig,
}

impl CmpSpec {
    /// N cores all running `workload`, distinguished only by seed
    /// (`k + 1`) — the multi-threaded-single-application scenario.
    pub fn homogeneous(
        workload: WorkloadSpec,
        cores: usize,
        warmup_insts: u64,
        measure_insts: u64,
        sim: SimConfig,
    ) -> Self {
        let name = workload.name.clone();
        CmpSpec {
            name,
            workloads: vec![workload; cores],
            seeds: (0..cores as u64).map(|k| k + 1).collect(),
            warmup_insts,
            measure_insts,
            sim,
        }
    }

    /// One workload per core, each from its own spec/seed pair — the
    /// consolidated-server scenario.
    ///
    /// # Panics
    ///
    /// Panics if `per_core` is empty.
    pub fn heterogeneous(
        name: &str,
        per_core: Vec<(WorkloadSpec, u64)>,
        warmup_insts: u64,
        measure_insts: u64,
        sim: SimConfig,
    ) -> Self {
        assert!(!per_core.is_empty(), "at least one core");
        let (workloads, seeds) = per_core.into_iter().unzip();
        CmpSpec {
            name: name.to_owned(),
            workloads,
            seeds,
            warmup_insts,
            measure_insts,
            sim,
        }
    }

    /// Number of cores.
    ///
    /// # Panics
    ///
    /// Panics if the workload and seed lists disagree in length (a
    /// malformed spec).
    pub fn cores(&self) -> usize {
        assert_eq!(
            self.workloads.len(),
            self.seeds.len(),
            "one seed per core workload"
        );
        self.workloads.len()
    }

    /// The single-core [`RunSpec`] whose trace and pre-resolved stream
    /// core `k` consumes — shared cache currency with the single-core
    /// paths.
    pub fn core_run_spec(&self, k: usize) -> RunSpec {
        RunSpec {
            workload: self.workloads[k].clone(),
            seed: self.seeds[k],
            warmup_insts: self.warmup_insts,
            measure_insts: self.measure_insts,
            sim: self.sim,
        }
    }

    /// Pre-resolves every core's stream (front end only, no
    /// prefetcher), streaming each generator in chunks.
    pub fn pre_resolve_cores(&self) -> Vec<PreResolved> {
        (0..self.cores())
            .map(|k| self.core_run_spec(k).pre_resolve())
            .collect()
    }

    /// Runs a prefetcher over this spec, pre-resolving per-core streams
    /// on the fly. Sweeps over a roster should pre-resolve once with
    /// [`CmpSpec::pre_resolve_cores`] and call [`CmpSpec::run_streams`]
    /// per prefetcher.
    pub fn run(&self, pf: &PrefetcherSpec) -> CmpResult {
        let streams = self.pre_resolve_cores();
        let refs: Vec<&PreResolved> = streams.iter().collect();
        self.run_streams(&refs, pf)
    }

    /// Runs a prefetcher over already pre-resolved per-core streams.
    ///
    /// # Panics
    ///
    /// Panics unless there is exactly one stream per core, resolved
    /// under this spec's L1 geometries.
    pub fn run_streams(&self, streams: &[&PreResolved], pf: &PrefetcherSpec) -> CmpResult {
        let mut engine = CmpEngine::new(self.sim, self.cores(), pf.build());
        engine.run_streams(streams, self.warmup_insts, self.measure_insts, &self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::database().scaled(1, 32),
            seed: 11,
            warmup_insts: 60_000,
            measure_insts: 60_000,
            sim: SimConfig::scaled_down(16),
        }
    }

    #[test]
    fn baseline_run_produces_misses_and_epochs() {
        let r = quick_spec().run(&PrefetcherSpec::None);
        assert!(r.l2_load_misses > 20, "load misses {}", r.l2_load_misses);
        assert!(r.epochs > 20, "epochs {}", r.epochs);
        assert!(r.cpi() > 0.5, "cpi {}", r.cpi());
        assert_eq!(r.pf_issued, 0);
    }

    /// A workload small enough to recur several times within a short
    /// trace while its miss working set still overflows the scaled L2
    /// (128 KB = 2048 lines): recurrence is what correlation prefetching
    /// feeds on, eviction is what makes recurrences miss.
    fn recurring_spec() -> RunSpec {
        RunSpec {
            workload: WorkloadSpec {
                templates: 30,
                segments_per_template: 80,
                data_pool_lines: 1 << 14,
                cold_code_pool_lines: 2048,
                warm_pool_lines: 128,
                ..WorkloadSpec::database()
            },
            seed: 3,
            warmup_insts: 700_000,
            measure_insts: 700_000,
            sim: SimConfig::scaled_down(16),
        }
    }

    #[test]
    fn ebcp_improves_over_baseline() {
        let spec = recurring_spec();
        let trace = spec.materialize();
        let base = spec.run_on(&trace, &PrefetcherSpec::None);
        let ebcp = spec.run_on(&trace, &PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        assert!(
            ebcp.pf_issued > 100,
            "EBCP must issue prefetches, got {}",
            ebcp.pf_issued
        );
        assert!(
            ebcp.pf_useful() > 50,
            "prefetches must hit, got {}",
            ebcp.pf_useful()
        );
        let imp = ebcp.improvement_over(&base);
        assert!(
            imp > 0.02,
            "EBCP should improve CPI, got {:.2}%",
            imp * 100.0
        );
    }

    /// The chunked streaming path (`run_chunks` over generator refills)
    /// must be observationally identical to stepping a materialized
    /// trace record by record — same counters, cycles and stats.
    #[test]
    fn chunked_and_stepped_runs_agree() {
        let spec = quick_spec();
        let pf = PrefetcherSpec::Ebcp(EbcpConfig::tuned());
        let stepped = spec.run_on(&spec.materialize(), &pf);
        let program = Arc::new(WorkloadProgram::build(&spec.workload));
        let chunked = spec.run_streaming(program, &pf);
        assert_eq!(stepped, chunked);
    }

    /// Runs `spec` over a hand-built trace both ways — per-record
    /// stepping and pre-resolved replay — and asserts byte-identical
    /// results.
    fn assert_replay_identical(
        spec: &RunSpec,
        trace: &[TraceRecord],
        pf: &PrefetcherSpec,
    ) -> SimResult {
        let stepped = spec.run_on(trace, pf);
        let pre = crate::frontend::PreResolved::from_records(&spec.sim, trace);
        let replayed = spec.run_preresolved(&pre, pf);
        assert_eq!(stepped, replayed);
        stepped
    }

    fn edge_spec(warmup: u64, measure: u64) -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::database().scaled(1, 32),
            seed: 1,
            warmup_insts: warmup,
            measure_insts: measure,
            sim: SimConfig::scaled_down(16),
        }
    }

    #[test]
    fn preresolved_matches_stepped() {
        let spec = quick_spec();
        let trace = spec.materialize();
        let pre = spec.pre_resolve();
        for pf in [
            PrefetcherSpec::None,
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()),
        ] {
            assert_eq!(spec.run_on(&trace, &pf), spec.run_preresolved(&pre, &pf));
        }
    }

    #[test]
    fn edge_serialize_adjacent_to_l1_miss_load() {
        use ebcp_trace::Op;
        use ebcp_types::{Addr, Pc};
        // An off-chip load with a serialize immediately after: the
        // serialize is a window terminator right next to the miss, so
        // the gap between the two events is zero.
        let mut t: Vec<TraceRecord> = (0..64)
            .map(|i| TraceRecord::alu(Pc::new(0x1000 + 4 * (i % 16))))
            .collect();
        t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.push(TraceRecord::new(Pc::new(0x1004), Op::Serialize));
        // And the mirror adjacency: serialize, then the miss.
        t.push(TraceRecord::new(Pc::new(0x1008), Op::Serialize));
        t.push(TraceRecord::load(Pc::new(0x100c), Addr::new(0x90_0000)));
        t.extend((0..400).map(|i| TraceRecord::alu(Pc::new(0x1000 + 4 * (i % 16)))));
        let spec = edge_spec(32, t.len() as u64 - 32);
        let r = assert_replay_identical(&spec, &t, &PrefetcherSpec::None);
        assert!(r.epochs >= 2, "both loads must open epochs: {}", r.epochs);
    }

    #[test]
    fn edge_feeds_mispredict_outcome_differs_across_prefetchers() {
        use ebcp_trace::Op;
        // A feeds_mispredict load is only a window terminator if it
        // goes OFF-CHIP — a prefetcher that catches the line in the
        // prefetch buffer defuses it. The front end cannot know which,
        // so the event carries the flag and the back end decides:
        // replay must match stepping under both outcomes.
        let spec = recurring_spec();
        let trace: Vec<TraceRecord> = {
            let mut gen = TraceGenerator::new(&spec.workload, spec.seed);
            gen.collect_n((spec.warmup_insts + spec.measure_insts) as usize)
        };
        assert!(
            trace.iter().any(|r| matches!(
                r.op,
                Op::Load {
                    feeds_mispredict: true,
                    ..
                }
            )),
            "workload must exercise dependent-mispredict loads"
        );
        let base = assert_replay_identical(&spec, &trace, &PrefetcherSpec::None);
        let ebcp =
            assert_replay_identical(&spec, &trace, &PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        // The same stream really did diverge in the back end.
        assert!(ebcp.averted_load + ebcp.partial_hits > 0);
        assert_ne!(base.cycles, ebcp.cycles);
    }

    #[test]
    fn edge_store_l1_hit_propagates_dirty() {
        use ebcp_types::{Addr, Pc};
        // Store miss fills L1D; the second store to the line is an L1
        // hit whose only back-end effect is the L2 dirty bit. Evict the
        // line from the (tiny) L2 afterwards: a writeback must appear,
        // and replay must account for it identically.
        let sim = SimConfig::scaled_down(16);
        let l2_lines = sim.l2.lines();
        let mut t: Vec<TraceRecord> = (0..16)
            .map(|i| TraceRecord::alu(Pc::new(0x1000 + 4 * (i % 16))))
            .collect();
        t.push(TraceRecord::store(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.push(TraceRecord::store(Pc::new(0x1004), Addr::new(0x80_0000)));
        for i in 0..l2_lines * 2 {
            t.push(TraceRecord::load(
                Pc::new(0x1000),
                Addr::new(0x200_0000 + i * 64),
            ));
            t.extend((0..32).map(|k| TraceRecord::alu(Pc::new(0x1000 + 4 * (k % 16)))));
        }
        let spec = RunSpec {
            workload: WorkloadSpec::database().scaled(1, 32),
            seed: 1,
            warmup_insts: 8,
            measure_insts: t.len() as u64 - 8,
            sim,
        };
        let r = assert_replay_identical(&spec, &t, &PrefetcherSpec::None);
        assert!(r.writebacks > 0, "dirty line must write back on eviction");
    }

    #[test]
    fn edge_warmup_boundary_inside_gap() {
        use ebcp_types::{Addr, Pc};
        // A long pure-ALU stretch forms one big gap; place the
        // warmup/measure boundary in the middle of it. Replay must cut
        // the gap at the exact record, reset statistics there, and
        // still agree with stepping.
        let mut t: Vec<TraceRecord> = (0..16)
            .map(|i| TraceRecord::alu(Pc::new(0x1000 + 4 * (i % 16))))
            .collect();
        t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.extend((0..10_000).map(|i| TraceRecord::alu(Pc::new(0x1000 + 4 * (i % 16)))));
        t.push(TraceRecord::load(Pc::new(0x1004), Addr::new(0x90_0000)));
        t.extend((0..500).map(|i| TraceRecord::alu(Pc::new(0x1000 + 4 * (i % 16)))));
        // Boundary at 5k: deep inside the 10k-record gap.
        let spec = edge_spec(5_000, t.len() as u64 - 5_000);
        let r = assert_replay_identical(&spec, &t, &PrefetcherSpec::None);
        assert_eq!(r.insts, t.len() as u64 - 5_000);
        assert_eq!(
            r.l2_load_misses, 1,
            "only the post-boundary load is measured"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = quick_spec();
        let a = spec.run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        let b = spec.run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        assert_eq!(a, b);
    }

    #[test]
    fn cmp_spec_matches_direct_engine_run() {
        // CmpSpec::run over shared per-core streams is the same
        // computation as handing the engine materialized traces.
        let spec = CmpSpec::homogeneous(
            WorkloadSpec::database().scaled(1, 32),
            3,
            30_000,
            60_000,
            SimConfig::scaled_down(16),
        );
        let via_spec = spec.run(&PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        let traces: Vec<Vec<TraceRecord>> = (0..3)
            .map(|k| {
                let mut gen = TraceGenerator::new(&spec.workloads[k], spec.seeds[k]);
                gen.collect_n(90_000)
            })
            .collect();
        let mut engine = crate::cmp::CmpEngine::new(
            spec.sim,
            3,
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()).build(),
        );
        let direct = engine.run(&traces, 30_000, 60_000, &spec.name);
        assert_eq!(via_spec, direct);
        // Core streams are the single-core RunSpec streams — the cache
        // currency the harness shares with single-core cells.
        let s0 = spec.core_run_spec(0).pre_resolve();
        assert_eq!(s0.records, 90_000);
    }

    #[test]
    fn spec_names() {
        assert_eq!(PrefetcherSpec::None.name(), "none");
        assert_eq!(PrefetcherSpec::Ebcp(EbcpConfig::tuned()).name(), "ebcp");
        let b = PrefetcherSpec::baseline(
            "ghb-large",
            BaselineConfig::Ghb(ebcp_prefetch::GhbConfig::large()),
        );
        assert_eq!(b.name(), "ghb-large");
        let f = PrefetcherSpec::filtered(PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        assert_eq!(f.name(), "ebcp+nof");
        assert_eq!(f.build().name(), "ebcp+nof");
    }

    #[test]
    fn filtered_spec_replays_identically_and_runs_the_inner() {
        // The filter composes over EBCP: replay must stay byte-identical
        // to stepping, and the inner prefetcher must still issue.
        let spec = recurring_spec();
        let trace: Vec<TraceRecord> = {
            let mut gen = TraceGenerator::new(&spec.workload, spec.seed);
            gen.collect_n((spec.warmup_insts + spec.measure_insts) as usize)
        };
        let pf = PrefetcherSpec::filtered(PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        let r = assert_replay_identical(&spec, &trace, &pf);
        assert!(r.pf_issued > 0, "filtered EBCP must still prefetch");
        // The filter only ever drops candidates, never adds them.
        let unfiltered = spec.run_on(&trace, &PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
        assert!(r.pf_issued <= unfiltered.pf_issued);
    }

    #[test]
    fn lockstep_matches_serial_preresolved_replay_on_every_tier() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let pfs = vec![
            PrefetcherSpec::None,
            PrefetcherSpec::baseline(
                "ghb-large",
                BaselineConfig::Ghb(ebcp_prefetch::GhbConfig::large()),
            ),
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()),
        ];
        let serial: Vec<SimResult> = pfs
            .iter()
            .map(|pf| spec.run_preresolved(&pre, pf))
            .collect();
        for tier in ebcp_mem::SimdTier::available_tiers() {
            let lock = spec.run_preresolved_many_with(&pre, &pfs, tier);
            for ((s, l), pf) in serial.iter().zip(&lock).zip(&pfs) {
                assert_eq!(
                    s,
                    l.as_ref().unwrap(),
                    "lane {} diverged on tier {}",
                    pf.name(),
                    tier.label()
                );
            }
        }
    }

    #[test]
    fn lockstep_single_lane_matches_serial() {
        let spec = recurring_spec();
        let pre = spec.pre_resolve();
        let pf = PrefetcherSpec::Ebcp(EbcpConfig::tuned());
        let serial = spec.run_preresolved(&pre, &pf);
        let lock = spec.run_preresolved_many(&pre, std::slice::from_ref(&pf));
        assert_eq!(serial, *lock[0].as_ref().unwrap());
    }

    #[test]
    fn lockstep_panicking_lane_fails_alone() {
        let spec = quick_spec();
        let pre = spec.pre_resolve();
        let pfs = vec![
            PrefetcherSpec::None,
            PrefetcherSpec::baseline(
                "fault",
                BaselineConfig::Fault(ebcp_prefetch::FaultConfig::panic_after(40)),
            ),
            PrefetcherSpec::Ebcp(EbcpConfig::tuned()),
        ];
        let lock = spec.run_preresolved_many(&pre, &pfs);
        let err = lock[1].as_ref().unwrap_err();
        assert!(err.contains("injected fault"), "reason: {err}");
        // Siblings are byte-identical to their own serial replays.
        assert_eq!(
            spec.run_preresolved(&pre, &pfs[0]),
            *lock[0].as_ref().unwrap()
        );
        assert_eq!(
            spec.run_preresolved(&pre, &pfs[2]),
            *lock[2].as_ref().unwrap()
        );
    }
}
