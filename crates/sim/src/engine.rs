//! The trace-driven epoch-model timing engine.
//!
//! One [`Engine`] simulates one core with the §4.4 memory hierarchy and a
//! pluggable prefetcher. The model is described in the crate docs; the
//! invariants worth keeping in mind while reading:
//!
//! * `cycle` only moves forward; stalls jump it to the completion of the
//!   outstanding off-chip miss group.
//! * A miss *window* is open exactly while `outstanding` is non-empty.
//!   Window termination (ROB full, serialize, dependent mispredict,
//!   instruction miss) calls [`Engine::stall_all`], which is also where
//!   epochs end.
//! * All deferred work (table-read completions, prefetch arrivals, store
//!   fills) lives in a time-ordered event heap, drained whenever the
//!   clock catches up to the next event.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ebcp_core::EpochTracker;
use ebcp_mem::{
    MemOutcome, MemStats, MemorySystem, MshrFile, MshrOutcome, PrefetchBuffer, SetAssocCache,
};
use ebcp_prefetch::{Action, MissInfo, PrefetchHitInfo, Prefetcher};
use ebcp_trace::ChunkSource;
use ebcp_trace::TraceRecord;
use ebcp_types::{AccessKind, Cycle, LineAddr, MemClass, Pc};

use crate::config::SimConfig;
use crate::frontend::{FrontEnd, PreEvent, ReplayCursor, Resolved, ResolvedOp};
use crate::metrics::SimResult;

#[derive(Debug, Clone, Copy)]
struct Outst {
    line: LineAddr,
    done: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    TableDone { token: u64 },
    PrefetchArrive { line: LineAddr, origin: u64 },
    StoreFill { line: LineAddr },
}

#[derive(Debug, Clone, Copy, Eq)]
struct Ev {
    at: Cycle,
    seq: u64,
    kind: EvKind,
}

/// Heap ordering key: `(at, seq)`. `seq` is unique per engine, so the
/// key alone identifies an event; equality deliberately matches `Ord`
/// (comparing `kind` too would let `a == b` disagree with
/// `a.cmp(&b) == Equal`, violating the `Ord` contract `BinaryHeap`
/// relies on).
impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    inst_misses: u64,
    load_misses: u64,
    store_misses: u64,
    secondary_misses: u64,
    averted_inst: u64,
    averted_load: u64,
    averted_store: u64,
    partial_hits: u64,
    pf_requested: u64,
    pf_filtered: u64,
    pf_dropped_mshr: u64,
    pf_dropped_bus: u64,
    pf_issued: u64,
    pf_evicted_unused: u64,
    store_skipped: u64,
    table_reads: u64,
    table_read_drops: u64,
    table_writes: u64,
    writebacks: u64,
    stall_cycles: Cycle,
    mispredicts: u64,
}

/// The simulation engine.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::NullPrefetcher;
/// use ebcp_sim::{Engine, SimConfig};
/// use ebcp_trace::{TraceGenerator, WorkloadSpec};
///
/// let spec = WorkloadSpec::database().scaled(1, 32);
/// let mut engine = Engine::new(SimConfig::scaled_down(16), Box::new(NullPrefetcher));
/// engine.run(TraceGenerator::new(&spec, 1).take(50_000));
/// assert!(engine.result("database").cpi() > 0.25);
/// ```
pub struct Engine {
    cfg: SimConfig,
    fe: FrontEnd,
    l2: SetAssocCache,
    pbuf: PrefetchBuffer,
    mshr: MshrFile,
    mem: MemorySystem,
    pf: Box<dyn Prefetcher>,
    epoch: EpochTracker,

    cycle: Cycle,
    issue_slots: u32,
    insts: u64,
    outstanding: Vec<Outst>,
    /// Spare buffer swapped with `outstanding` in `stall_all` so that
    /// draining a window never reallocates.
    outs_scratch: Vec<Outst>,
    window_insts: u32,
    dep_countdown: Option<u32>,
    /// Prefetches in flight to memory (line, arrival cycle). Bounded by
    /// the MSHR count, so a flat scan beats hashing on the every-miss
    /// lookup.
    pf_inflight: Vec<(LineAddr, Cycle)>,
    events: BinaryHeap<Reverse<Ev>>,
    next_ev_at: Cycle,
    ev_seq: u64,
    actions: Vec<Action>,

    c: Counters,
    cycle_base: Cycle,
    insts_base: u64,
    mem_base: MemStats,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.cycle)
            .field("insts", &self.insts)
            .field("prefetcher", &self.pf.name())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an engine over a fresh (cold) machine.
    pub fn new(cfg: SimConfig, pf: Box<dyn Prefetcher>) -> Self {
        Engine {
            fe: FrontEnd::new(&cfg),
            l2: SetAssocCache::new(cfg.l2),
            pbuf: PrefetchBuffer::new(cfg.pbuf_entries, cfg.pbuf_ways.min(cfg.pbuf_entries)),
            mshr: MshrFile::new(cfg.mshrs),
            mem: MemorySystem::new(cfg.mem),
            pf,
            epoch: EpochTracker::new(),
            cycle: 0,
            issue_slots: 0,
            insts: 0,
            outstanding: Vec::with_capacity(cfg.mshrs),
            outs_scratch: Vec::with_capacity(cfg.mshrs),
            window_insts: 0,
            dep_countdown: None,
            pf_inflight: Vec::with_capacity(cfg.mshrs),
            events: BinaryHeap::new(),
            next_ev_at: Cycle::MAX,
            ev_seq: 0,
            actions: Vec::new(),
            c: Counters::default(),
            cycle_base: 0,
            insts_base: 0,
            mem_base: MemStats::default(),
            cfg,
        }
    }

    /// Current core cycle.
    pub const fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Instructions consumed so far (including warm-up).
    pub const fn insts(&self) -> u64 {
        self.insts
    }

    /// The prefetcher's name.
    pub fn prefetcher_name(&self) -> &str {
        self.pf.name()
    }

    /// Read access to the prefetcher (for end-of-run inspection).
    pub fn prefetcher(&self) -> &dyn Prefetcher {
        self.pf.as_ref()
    }

    /// Resets measurement counters (call at the end of warm-up). Machine
    /// state — caches, tables, in-flight traffic — is untouched.
    pub fn reset_stats(&mut self) {
        self.c = Counters::default();
        self.cycle_base = self.cycle;
        self.insts_base = self.insts;
        self.mem_base = self.mem.stats();
        self.epoch.reset_stats();
        self.pf.reset_aux_stats();
    }

    /// Consumes an entire trace.
    pub fn run(&mut self, trace: impl IntoIterator<Item = TraceRecord>) {
        for rec in trace {
            self.step(&rec);
        }
    }

    /// Trace records per chunk for [`Engine::run_chunks`]: 4096 records
    /// (~64 KB) keeps the working chunk inside the host L2 while
    /// amortizing the generator's per-call overhead over thousands of
    /// steps.
    pub const CHUNK_RECORDS: usize = 4096;

    /// Consumes `total` records from `gen` in reusable-buffer chunks.
    ///
    /// Produces exactly the same simulation as calling
    /// [`Engine::step`] on `total` records pulled one at a time from
    /// the source — every [`ChunkSource`] guarantees `next_chunk`
    /// preserves the record sequence — but the hot loop runs over a
    /// contiguous `&[TraceRecord]` instead of ticking an iterator per
    /// record. The source may be a live [`TraceGenerator`] or an
    /// on-disk [`ebcp_trace::SegmentedTrace`]; either way at most one
    /// chunk (plus the source's own window) is resident.
    pub fn run_chunks<S: ChunkSource>(&mut self, gen: &mut S, total: u64) {
        let mut chunk = Vec::with_capacity(Self::CHUNK_RECORDS);
        let mut left = total;
        while left > 0 {
            let want = Self::CHUNK_RECORDS.min(usize::try_from(left).unwrap_or(usize::MAX));
            let got = gen.next_chunk(&mut chunk, want);
            if got == 0 {
                break;
            }
            for rec in &chunk {
                self.step(rec);
            }
            left -= got as u64;
        }
    }

    /// Simulates one trace record: resolve the L1 front end, then run
    /// the back end. The two phases share no state (the front end never
    /// reads the clock, the back end never touches L1), which is what
    /// lets [`Engine::replay_events`] run the identical back end over a
    /// stream resolved long in advance.
    #[inline]
    pub fn step(&mut self, rec: &TraceRecord) {
        let r = self.fe.resolve(rec);
        self.step_resolved(&r);
    }

    /// Everything [`Engine::step_resolved`] does before the data/control
    /// op: retire work the clock caught up to, count the instruction,
    /// run the fetch path and advance issue bandwidth. Shared verbatim
    /// by the stepping and replay back ends so the two cannot drift.
    #[inline]
    fn pre_op(&mut self, ifetch_miss: bool, pc: Pc) {
        if !self.outstanding.is_empty() {
            self.drain_outstanding();
        }
        if self.next_ev_at <= self.cycle {
            self.drain_events(self.cycle);
        }

        self.insts += 1;

        if ifetch_miss {
            self.fetch_miss(pc.line(), pc);
        }

        // Issue bandwidth.
        self.issue_slots += 1;
        if self.issue_slots >= self.cfg.core.issue_width {
            self.cycle += 1;
            self.issue_slots = 0;
        }
        if !self.outstanding.is_empty() {
            self.window_insts += 1;
        }
    }

    /// Window termination conditions (§2.1) — the shared tail of both
    /// back ends.
    #[inline]
    fn post_op(&mut self) {
        if !self.outstanding.is_empty() {
            if self.window_insts >= self.cfg.core.rob_entries {
                self.stall_all();
            } else if let Some(cd) = self.dep_countdown {
                if cd == 0 {
                    self.stall_all();
                } else {
                    self.dep_countdown = Some(cd - 1);
                }
            }
        }
    }

    /// The prefetcher-dependent back end for one resolved record.
    #[inline]
    fn step_resolved(&mut self, r: &Resolved) {
        self.pre_op(r.ifetch_miss, r.pc);

        match r.op {
            ResolvedOp::None => {}
            ResolvedOp::LoadMiss {
                line,
                feeds_mispredict,
            } => self.load_miss(line, r.pc, feeds_mispredict),
            ResolvedOp::StoreMiss { line } => self.store_miss(line),
            ResolvedOp::StoreHit { line } => {
                // L1D write hit: only the dirty bit travels down.
                self.l2.mark_dirty(line);
            }
            ResolvedOp::Mispredict => {
                self.c.mispredicts += 1;
                self.cycle += self.cfg.core.mispredict_penalty;
            }
            ResolvedOp::Serialize => {
                if self.outstanding.is_empty() {
                    self.cycle += self.cfg.core.serialize_cost;
                } else {
                    self.stall_all();
                }
            }
        }

        self.post_op();
    }

    /// The back end for one packed event, dispatching straight on the
    /// stream encoding. Op for op this is [`Engine::step_resolved`] over
    /// `ev.decode().unwrap()` — the prologue and epilogue are the same
    /// functions — but skipping the intermediate [`Resolved`] removes a
    /// second data-dependent dispatch from the replay hot path, which is
    /// worth a measurable slice of sweep throughput. The differential
    /// replay-vs-stepping tests pin the equivalence.
    #[inline]
    fn step_event(&mut self, ev: &PreEvent) {
        use crate::frontend::{
            F_IFETCH_MISS, K_LOAD, K_LOAD_FEEDS, K_MISPREDICT, K_NONE, K_SERIALIZE, K_SHIFT,
            K_STORE_HIT, K_STORE_MISS,
        };
        let pc = Pc::new(ev.pc);
        self.pre_op(ev.flags & F_IFETCH_MISS != 0, pc);

        let line = LineAddr::from_index(ev.dline);
        match ev.flags >> K_SHIFT {
            K_NONE => {}
            K_LOAD => self.load_miss(line, pc, false),
            K_LOAD_FEEDS => self.load_miss(line, pc, true),
            K_STORE_MISS => self.store_miss(line),
            K_STORE_HIT => {
                // L1D write hit: only the dirty bit travels down.
                self.l2.mark_dirty(line);
            }
            K_MISPREDICT => {
                self.c.mispredicts += 1;
                self.cycle += self.cfg.core.mispredict_penalty;
            }
            K_SERIALIZE => {
                if self.outstanding.is_empty() {
                    self.cycle += self.cfg.core.serialize_cost;
                } else {
                    self.stall_all();
                }
            }
            other => unreachable!("corrupt PreEvent kind {other}"),
        }

        self.post_op();
    }

    /// An inert record for the back end: no fetch miss, no data op.
    /// Exactly [`Engine::step_resolved`] with the fetch and op arms
    /// skipped — [`Engine::gap_advance`] falls back to this whenever a
    /// gap record is not provably inert.
    fn step_plain(&mut self) {
        if !self.outstanding.is_empty() {
            self.drain_outstanding();
        }
        if self.next_ev_at <= self.cycle {
            self.drain_events(self.cycle);
        }
        self.insts += 1;
        self.issue_slots += 1;
        if self.issue_slots >= self.cfg.core.issue_width {
            self.cycle += 1;
            self.issue_slots = 0;
        }
        if !self.outstanding.is_empty() {
            self.window_insts += 1;
            if self.window_insts >= self.cfg.core.rob_entries {
                self.stall_all();
            } else if let Some(cd) = self.dep_countdown {
                if cd == 0 {
                    self.stall_all();
                } else {
                    self.dep_countdown = Some(cd - 1);
                }
            }
        }
    }

    /// Replays up to `budget` instructions from a pre-resolved stream,
    /// resuming at (and updating) `cur`. Produces state byte-identical
    /// to stepping the underlying records through
    /// [`Engine::step`] — the stream's events run the same
    /// [`Engine::step_resolved`], and gaps advance through
    /// [`Engine::gap_advance`], which is an exact algebraic collapse of
    /// consecutive inert records.
    ///
    /// The engine's own L1 model stays cold and unused on this path;
    /// callers are responsible for pairing a stream with the matching
    /// `SimConfig` (see `RunSpec::run_preresolved`, which checks the
    /// geometries).
    pub fn replay_events(&mut self, events: &[PreEvent], cur: &mut ReplayCursor, budget: u64) {
        let pow2 = self.cfg.core.issue_width.is_power_of_two();
        let mut left = budget;
        while cur.idx < events.len() {
            // An idle back end (nothing outstanding, no heap event due)
            // is the overwhelmingly common state; a specialized loop
            // runs it on register-resident clock state until something
            // needs the full machinery.
            if pow2 && left > 0 && self.outstanding.is_empty() && self.next_ev_at > self.cycle {
                self.replay_fast(events, cur, &mut left);
                if cur.idx >= events.len() {
                    return;
                }
            }
            // General path: the one stream entry the fast loop bailed
            // on, with the full per-record machinery. The lockstep
            // driver makes the identical `take`/`run_event` split, so
            // both replays execute the same per-entry body.
            let ev = &events[cur.idx];
            let gap_left = u64::from(ev.gap) - u64::from(cur.gap_done);
            let take = gap_left.min(left);
            let run_event = ev.flags != 0 && left > gap_left;
            self.replay_entry_general(ev, take, run_event);
            cur.gap_done += take as u32;
            left -= take;
            if take < gap_left {
                return; // budget exhausted mid-gap
            }
            if ev.flags != 0 {
                if left == 0 {
                    return; // budget boundary right before the event
                }
                left -= 1;
            }
            cur.idx += 1;
            cur.gap_done = 0;
        }
    }

    /// One stream entry through the general path: `take` gap records
    /// (the caller's `min(gap_left, budget)`) and, when `run_event`,
    /// the entry's event itself. Budget and cursor arithmetic stay with
    /// the caller — [`Engine::replay_events`] and the lockstep driver
    /// share this body so serial and lockstep replay execute the exact
    /// same per-entry machinery.
    pub(crate) fn replay_entry_general(&mut self, ev: &PreEvent, take: u64, run_event: bool) {
        let w = u64::from(self.cfg.core.issue_width);
        if take > 0 {
            // A gap over an idle back end with no heap event due
            // inside it still collapses to arithmetic.
            if self.outstanding.is_empty()
                && (self.next_ev_at == Cycle::MAX
                    || (self.next_ev_at > self.cycle
                        && self.records_until(self.next_ev_at, w) >= take))
            {
                self.advance_inert(take, w, false);
            } else {
                self.gap_advance(take);
            }
        }
        if run_event {
            self.step_event(ev);
        }
    }

    /// Single-entry specialization of the [`Engine::replay_fast`] body
    /// for the lockstep driver's per-lane path: processes one
    /// event-bearing entry (its `gap_left` remaining gap records plus
    /// the event) entirely with fast arithmetic, or returns `false`
    /// having touched nothing so the caller can fall back to
    /// [`Engine::replay_entry_general`].
    ///
    /// Caller-checked preconditions (shared across lanes): power-of-two
    /// issue width, `ev.flags != 0`, no instruction-fetch miss, and
    /// `gap_left < budget left` so the event itself runs.
    pub(crate) fn replay_entry_fast(&mut self, ev: &PreEvent, gap_left: u64) -> bool {
        use crate::frontend::{
            K_LOAD, K_LOAD_FEEDS, K_MISPREDICT, K_SERIALIZE, K_SHIFT, K_STORE_HIT, K_STORE_MISS,
        };
        if !self.outstanding.is_empty() || self.next_ev_at <= self.cycle {
            return false;
        }
        let shift = self.cfg.core.issue_width.trailing_zeros();
        let mask = u64::from(self.cfg.core.issue_width) - 1;
        let mut cycle = self.cycle;
        let mut slots = u64::from(self.issue_slots);
        if self.next_ev_at <= cycle + ((slots + gap_left) >> shift) {
            return false; // heap event due inside this entry
        }

        self.insts += gap_left + 1;
        slots += gap_left + 1;
        cycle += slots >> shift;
        slots &= mask;

        let line = LineAddr::from_index(ev.dline);
        match ev.flags >> K_SHIFT {
            K_LOAD | K_LOAD_FEEDS => {
                if self.l2.access(line) {
                    cycle += self.cfg.core.l2_hit_exposed;
                } else {
                    self.cycle = cycle;
                    self.issue_slots = slots as u32;
                    self.load_fill(line, Pc::new(ev.pc), ev.flags >> K_SHIFT == K_LOAD_FEEDS);
                    self.post_op();
                    return true;
                }
            }
            K_STORE_MISS => {
                if !self.l2.access_dirty(line) {
                    self.cycle = cycle;
                    self.issue_slots = slots as u32;
                    self.store_fill(line);
                    self.post_op();
                    return true;
                }
            }
            K_STORE_HIT => {
                self.l2.mark_dirty(line);
            }
            K_MISPREDICT => {
                self.c.mispredicts += 1;
                cycle += self.cfg.core.mispredict_penalty;
            }
            K_SERIALIZE => {
                cycle += self.cfg.core.serialize_cost;
            }
            other => unreachable!("corrupt PreEvent kind {other}"),
        }
        self.cycle = cycle;
        self.issue_slots = slots as u32;
        true
    }

    // --- Lockstep lane access --------------------------------------------
    // The minimal surface `crate::lockstep` needs to drive several
    // engines over one shared stream with SoA-packed clock state. All
    // mutations mirror what `replay_fast` does with its own locals.

    /// The machine configuration (lanes in one lockstep group must
    /// share it exactly).
    pub(crate) fn lane_cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Whether this lane qualifies for the fast loop: nothing
    /// outstanding and no heap event due.
    pub(crate) fn lane_idle(&self) -> bool {
        self.outstanding.is_empty() && self.next_ev_at > self.cycle
    }

    /// The lane's `(cycle, issue_slots, insts)` clock triple.
    pub(crate) fn lane_clock(&self) -> (Cycle, u32, u64) {
        (self.cycle, self.issue_slots, self.insts)
    }

    /// Writes back a clock triple the driver advanced in SoA form.
    pub(crate) fn lane_set_clock(&mut self, cycle: Cycle, slots: u32, insts: u64) {
        self.cycle = cycle;
        self.issue_slots = slots;
        self.insts = insts;
    }

    /// The lane's next heap-event deadline (loop-invariant while the
    /// lane stays in the fast loop).
    pub(crate) fn lane_next_ev(&self) -> Cycle {
        self.next_ev_at
    }

    /// The lane's private L2, for the per-lane tag probes.
    pub(crate) fn lane_l2(&mut self) -> &mut SetAssocCache {
        &mut self.l2
    }

    /// Credits `n` mispredicts accumulated as a shared scalar while the
    /// lane sat in the lockstep fast loop.
    pub(crate) fn lane_add_mispredicts(&mut self, n: u64) {
        self.c.mispredicts += n;
    }

    /// The load-miss continuation of the fast loop (clock already
    /// written back): pbuf/MSHR/memory machinery plus `post_op`.
    pub(crate) fn lane_load_continuation(&mut self, line: LineAddr, pc: Pc, feeds: bool) {
        self.load_fill(line, pc, feeds);
        self.post_op();
    }

    /// The store-miss continuation of the fast loop.
    pub(crate) fn lane_store_continuation(&mut self, line: LineAddr) {
        self.store_fill(line);
        self.post_op();
    }

    /// The replay hot loop. Processes stream entries while the back end
    /// stays *idle* — no outstanding misses (hence no open window, and
    /// by the window invariant no dependence countdown) and no heap
    /// event due — keeping `cycle`/`issue_slots`/`insts` in locals so
    /// the compiler can hold them in registers across the loop. Each
    /// iteration is exactly [`Engine::step_event`] specialized to that
    /// state; anything else (instruction-fetch misses, L2 misses,
    /// a heap event coming due, a budget boundary, pure gap fillers)
    /// syncs the locals back and returns to the general path.
    ///
    /// Preconditions (checked by the caller): power-of-two issue width,
    /// `left > 0`, `outstanding` empty, `next_ev_at > cycle`.
    fn replay_fast(&mut self, events: &[PreEvent], cur: &mut ReplayCursor, left: &mut u64) {
        use crate::frontend::{
            F_IFETCH_MISS, K_LOAD, K_LOAD_FEEDS, K_MISPREDICT, K_SERIALIZE, K_SHIFT, K_STORE_HIT,
            K_STORE_MISS,
        };
        let shift = self.cfg.core.issue_width.trailing_zeros();
        let mask = u64::from(self.cfg.core.issue_width) - 1;
        let l2_hit = self.cfg.core.l2_hit_exposed;
        let mp_pen = self.cfg.core.mispredict_penalty;
        let ser_cost = self.cfg.core.serialize_cost;

        let mut cycle = self.cycle;
        let mut slots = u64::from(self.issue_slots);
        let mut insts = self.insts;
        // Nothing inside this loop pushes heap events, so the deadline
        // is loop-invariant; paths that can push (the miss
        // continuations) sync and leave.
        let next_ev = self.next_ev_at;
        let mut lleft = *left;

        while cur.idx < events.len() {
            let ev = events[cur.idx];
            // Overlap the next event's L2 set fetch with this event's
            // work: the probe is the loop's longest dependency chain.
            if let Some(next) = events.get(cur.idx + 1) {
                self.l2.prefetch_set(LineAddr::from_index(next.dline));
            }
            // Instruction-fetch misses and pure fillers take the
            // general path; both are rare.
            if ev.flags == 0 || ev.flags & F_IFETCH_MISS != 0 {
                break;
            }
            let gap_left = u64::from(ev.gap) - u64::from(cur.gap_done);
            if gap_left >= lleft {
                break; // budget boundary inside this entry
            }
            // Stepping drains the heap at the start of any record whose
            // clock reaches the deadline; the event record starts at
            // cycle + (slots + gap_left) / width. Bail just before.
            if next_ev <= cycle + ((slots + gap_left) >> shift) {
                break;
            }

            // Gap records plus this instruction through the issue stage
            // (same collapse as `advance_inert`; no window is open).
            insts += gap_left + 1;
            slots += gap_left + 1;
            cycle += slots >> shift;
            slots &= mask;

            let line = LineAddr::from_index(ev.dline);
            match ev.flags >> K_SHIFT {
                K_LOAD | K_LOAD_FEEDS => {
                    if self.l2.access(line) {
                        cycle += l2_hit;
                    } else {
                        // Miss continuation touches pbuf/MSHRs/memory:
                        // commit state and finish this event generally.
                        self.cycle = cycle;
                        self.issue_slots = slots as u32;
                        self.insts = insts;
                        self.load_fill(line, Pc::new(ev.pc), ev.flags >> K_SHIFT == K_LOAD_FEEDS);
                        self.post_op();
                        *left = lleft - (gap_left + 1);
                        cur.idx += 1;
                        cur.gap_done = 0;
                        return;
                    }
                }
                K_STORE_MISS => {
                    if !self.l2.access_dirty(line) {
                        self.cycle = cycle;
                        self.issue_slots = slots as u32;
                        self.insts = insts;
                        self.store_fill(line);
                        self.post_op();
                        *left = lleft - (gap_left + 1);
                        cur.idx += 1;
                        cur.gap_done = 0;
                        return;
                    }
                }
                K_STORE_HIT => {
                    // L1D write hit: only the dirty bit travels down.
                    self.l2.mark_dirty(line);
                }
                K_MISPREDICT => {
                    self.c.mispredicts += 1;
                    cycle += mp_pen;
                }
                K_SERIALIZE => {
                    // Nothing outstanding by the loop invariant.
                    cycle += ser_cost;
                }
                other => unreachable!("corrupt PreEvent kind {other}"),
            }

            lleft -= gap_left + 1;
            cur.idx += 1;
            cur.gap_done = 0;
        }

        self.cycle = cycle;
        self.issue_slots = slots as u32;
        self.insts = insts;
        *left = lleft;
    }

    /// Advances the back end over `n` inert records without executing
    /// them one by one.
    ///
    /// Invariants that make the collapse exact:
    ///
    /// * `issue_slots` is always `insts % issue_width`, so the clock at
    ///   the *start* of the k-th upcoming inert record is
    ///   `cycle + (issue_slots + k) / width` — pure arithmetic;
    /// * inert records never add `outstanding` entries or heap events,
    ///   so the only state they can touch beyond the clock is via four
    ///   *deadlines*, each expressible as "k records from now": the
    ///   first outstanding-miss completion, the next heap event
    ///   becoming due, the ROB filling, and the dependent-mispredict
    ///   countdown reaching zero.
    ///
    /// The loop jumps to the nearest deadline arithmetically, executes
    /// that single record through the full [`Engine::step_plain`] state
    /// machine, and repeats. With nothing outstanding, none of the
    /// window machinery can fire and whole gaps collapse to O(events
    /// due) work.
    fn gap_advance(&mut self, mut n: u64) {
        let w = u64::from(self.cfg.core.issue_width);
        while n > 0 {
            if self.outstanding.is_empty() {
                // Fast path: only heap events can need attention, and
                // they cannot create outstanding misses. Drain each at
                // the exact clock value stepping would have seen (the
                // start of the record whose issue advance catches up to
                // the event) — event handlers issue bus traffic, and
                // the bus model is sensitive to request time.
                if self.next_ev_at <= self.cycle {
                    self.drain_events(self.cycle);
                    continue;
                }
                let take = if self.next_ev_at == Cycle::MAX {
                    n
                } else {
                    self.records_until(self.next_ev_at, w).min(n)
                };
                if take == 0 {
                    // next_ev_at is within this record's clock: handled
                    // by the drain branch above after the advance below
                    // computed a zero jump — advance a single record.
                    self.advance_inert(1, w, false);
                    n -= 1;
                    continue;
                }
                self.advance_inert(take, w, false);
                n -= take;
                continue;
            }
            // Slow path: a miss window is open. Find the first record
            // where anything can happen.
            let min_done = self
                .outstanding
                .iter()
                .map(|o| o.done)
                .min()
                .expect("outstanding non-empty");
            let mut k = self.records_until(min_done, w);
            if self.next_ev_at != Cycle::MAX {
                k = k.min(self.records_until(self.next_ev_at, w));
            }
            // ROB: record k raises window_insts to window_insts + k + 1,
            // and stalls when that reaches rob_entries.
            k = k.min(u64::from(self.cfg.core.rob_entries - 1 - self.window_insts));
            if let Some(cd) = self.dep_countdown {
                // Record cd (0-indexed) observes the countdown at zero.
                k = k.min(u64::from(cd));
            }
            let k = k.min(n);
            if k > 0 {
                self.advance_inert(k, w, true);
                n -= k;
                if n == 0 {
                    return;
                }
            }
            // The deadline record itself: full per-record machinery.
            self.step_plain();
            n -= 1;
        }
    }

    /// First k ≥ 0 such that the clock at the start of the k-th
    /// upcoming record reaches `at`.
    #[inline]
    fn records_until(&self, at: Cycle, w: u64) -> u64 {
        if at <= self.cycle {
            0
        } else {
            ((at - self.cycle) * w).saturating_sub(u64::from(self.issue_slots))
        }
    }

    /// Arithmetically applies `k` provably-inert records: instruction
    /// count, issue clock, and (inside a window) the window-instruction
    /// count and dependence countdown.
    ///
    /// Runs once per gap on the replay hot path, so the issue-width
    /// division matters: for power-of-two widths (every modeled machine
    /// is 4-wide) it is a shift/mask — a 64-bit divide on the host costs
    /// more than the rest of this function combined.
    #[inline]
    fn advance_inert(&mut self, k: u64, w: u64, windowed: bool) {
        self.insts += k;
        let slots = u64::from(self.issue_slots) + k;
        if w.is_power_of_two() {
            self.cycle += slots >> w.trailing_zeros();
            self.issue_slots = (slots & (w - 1)) as u32;
        } else {
            self.cycle += slots / w;
            self.issue_slots = (slots % w) as u32;
        }
        if windowed {
            self.window_insts += k as u32;
            if let Some(cd) = self.dep_countdown {
                self.dep_countdown = Some(cd - k as u32);
            }
        }
    }

    /// The measurement-phase result.
    pub fn result(&self, workload: &str) -> SimResult {
        let mem_now = self.mem.stats();
        SimResult {
            prefetcher: self.pf.name().to_owned(),
            workload: workload.to_owned(),
            insts: self.insts - self.insts_base,
            cycles: self.cycle - self.cycle_base,
            epochs: self.epoch.stats().epochs,
            l2_inst_misses: self.c.inst_misses,
            l2_load_misses: self.c.load_misses,
            l2_store_misses: self.c.store_misses,
            secondary_misses: self.c.secondary_misses,
            averted_inst: self.c.averted_inst,
            averted_load: self.c.averted_load,
            averted_store: self.c.averted_store,
            partial_hits: self.c.partial_hits,
            pf_requested: self.c.pf_requested,
            pf_issued: self.c.pf_issued,
            pf_dropped_bus: self.c.pf_dropped_bus,
            pf_dropped_mshr: self.c.pf_dropped_mshr,
            pf_filtered: self.c.pf_filtered,
            pf_evicted_unused: self.c.pf_evicted_unused,
            table_reads: self.c.table_reads,
            table_read_drops: self.c.table_read_drops,
            table_writes: self.c.table_writes,
            writebacks: self.c.writebacks,
            store_skipped: self.c.store_skipped,
            stall_cycles: self.c.stall_cycles,
            mem: diff_mem(mem_now, self.mem_base),
        }
    }

    // ------------------------------------------------------------------
    // Demand paths (L1 already resolved: these all start below L1)
    // ------------------------------------------------------------------

    #[inline]
    fn fetch_miss(&mut self, iline: LineAddr, pc: Pc) {
        if self.l2.access(iline) {
            self.cycle += self.cfg.core.l2_hit_exposed;
            return;
        }
        if let Some(origin) = self.pbuf.lookup_consume(iline) {
            self.c.averted_inst += 1;
            self.cycle += self.cfg.core.l2_hit_exposed;
            self.fill_l2(iline, false);
            self.notify_pbuf_hit(iline, pc, AccessKind::InstrFetch, origin);
            return;
        }
        // Off-chip instruction miss: always a window terminator (§2.1).
        self.offchip_demand(iline, pc, AccessKind::InstrFetch);
        self.stall_all();
    }

    #[inline]
    fn load_miss(&mut self, dline: LineAddr, pc: Pc, feeds_mispredict: bool) {
        if self.l2.access(dline) {
            self.cycle += self.cfg.core.l2_hit_exposed;
            return;
        }
        self.load_fill(dline, pc, feeds_mispredict);
    }

    /// [`Engine::load_miss`] past the (already taken) L2 probe: the
    /// prefetch-buffer and off-chip continuation. Split out so the
    /// replay fast loop can probe L2 inline and delegate only misses.
    #[inline]
    fn load_fill(&mut self, dline: LineAddr, pc: Pc, feeds_mispredict: bool) {
        if let Some(origin) = self.pbuf.lookup_consume(dline) {
            self.c.averted_load += 1;
            self.cycle += self.cfg.core.l2_hit_exposed;
            self.fill_l2(dline, false);
            self.notify_pbuf_hit(dline, pc, AccessKind::Load, origin);
            return;
        }
        self.offchip_demand(dline, pc, AccessKind::Load);
        if feeds_mispredict {
            self.dep_countdown = Some(self.cfg.core.dep_branch_window);
        }
    }

    #[inline]
    fn store_miss(&mut self, dline: LineAddr) {
        if self.l2.access_dirty(dline) {
            return;
        }
        self.store_fill(dline);
    }

    /// [`Engine::store_miss`] past the (already taken) L2 probe — same
    /// split as [`Engine::load_fill`].
    #[inline]
    fn store_fill(&mut self, dline: LineAddr) {
        if self.pbuf.lookup_consume(dline).is_some() {
            self.c.averted_store += 1;
            self.fill_l2(dline, true);
            return;
        }
        // Off-chip write-allocate: non-blocking under weak consistency,
        // never an epoch trigger, never reported to the prefetcher.
        if self.mshr.contains(dline) {
            self.c.secondary_misses += 1;
            return;
        }
        if self.mshr.len() + self.pf_inflight.len() >= self.cfg.mshrs {
            // Store buffer absorbs it; the fill is skipped. Rare, but
            // counted so the skip is visible in the result.
            self.c.store_skipped += 1;
            return;
        }
        self.c.store_misses += 1;
        self.mshr.allocate(dline);
        let done = match self.mem.request(self.cycle, MemClass::Demand) {
            MemOutcome::Done { done } => done,
            MemOutcome::Dropped => unreachable!("demand requests are never dropped"),
        };
        self.push_event(done, EvKind::StoreFill { line: dline });
    }

    #[inline]
    fn offchip_demand(&mut self, line: LineAddr, pc: Pc, kind: AccessKind) {
        // A demand miss to a line with a prefetch already in flight: the
        // prefetch becomes the demand fill (partial latency hiding).
        if let Some(i) = self.pf_inflight.iter().position(|&(l, _)| l == line) {
            let (_, arrival) = self.pf_inflight.swap_remove(i);
            self.c.partial_hits += 1;
            let trigger = self.epoch.on_offchip_issue(self.cycle);
            self.count_miss(kind);
            self.mshr.allocate(line);
            let done = arrival.max(self.cycle + 1);
            self.outstanding.push(Outst { line, done });
            self.notify_miss(line, pc, kind, trigger);
            return;
        }
        if self.mshr.contains(line) {
            // Secondary miss: merges into the existing MSHR.
            self.c.secondary_misses += 1;
            return;
        }
        self.wait_for_mshr();
        let trigger = self.epoch.on_offchip_issue(self.cycle);
        self.count_miss(kind);
        debug_assert!(matches!(self.mshr.allocate(line), MshrOutcome::Primary));
        let done = match self.mem.request(self.cycle, MemClass::Demand) {
            MemOutcome::Done { done } => done,
            MemOutcome::Dropped => unreachable!("demand requests are never dropped"),
        };
        self.outstanding.push(Outst { line, done });
        self.notify_miss(line, pc, kind, trigger);
    }

    #[inline]
    fn count_miss(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::InstrFetch => self.c.inst_misses += 1,
            AccessKind::Load => self.c.load_misses += 1,
            AccessKind::Store => self.c.store_misses += 1,
        }
    }

    fn wait_for_mshr(&mut self) {
        while self.mshr.is_full() {
            if !self.outstanding.is_empty() {
                self.stall_all();
            } else if self.next_ev_at != Cycle::MAX {
                self.cycle = self.cycle.max(self.next_ev_at);
                self.drain_events(self.cycle);
            } else {
                unreachable!("MSHRs full with nothing in flight");
            }
        }
    }

    // ------------------------------------------------------------------
    // Prefetcher interaction
    // ------------------------------------------------------------------

    fn notify_miss(&mut self, line: LineAddr, pc: Pc, kind: AccessKind, trigger: bool) {
        let info = MissInfo {
            line,
            pc,
            kind,
            epoch_trigger: trigger,
            now: self.cycle,
            core: 0,
        };
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_miss(&info, &mut acts);
        self.apply_actions(self.cycle, &acts);
        self.actions = acts;
    }

    fn notify_pbuf_hit(&mut self, line: LineAddr, pc: Pc, kind: AccessKind, origin: u64) {
        let info = PrefetchHitInfo {
            line,
            pc,
            kind,
            origin,
            would_be_trigger: self.epoch.would_trigger(),
            now: self.cycle,
            core: 0,
        };
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_prefetch_hit(&info, &mut acts);
        self.apply_actions(self.cycle, &acts);
        self.actions = acts;
    }

    #[inline]
    fn apply_actions(&mut self, now: Cycle, acts: &[Action]) {
        for a in acts {
            match *a {
                Action::Prefetch { line, origin } => {
                    self.c.pf_requested += 1;
                    if self.l2.probe(line)
                        || self.pbuf.contains(line)
                        || self.mshr.contains(line)
                        || self.pf_inflight.iter().any(|&(l, _)| l == line)
                    {
                        self.c.pf_filtered += 1;
                        continue;
                    }
                    if self.mshr.len() + self.pf_inflight.len() >= self.cfg.mshrs {
                        self.c.pf_dropped_mshr += 1;
                        continue;
                    }
                    match self.mem.request(now, MemClass::Prefetch) {
                        MemOutcome::Done { done } => {
                            self.c.pf_issued += 1;
                            self.pf_inflight.push((line, done));
                            self.push_event(done, EvKind::PrefetchArrive { line, origin });
                        }
                        MemOutcome::Dropped => self.c.pf_dropped_bus += 1,
                    }
                }
                Action::TableRead { token, delay } => {
                    match self.mem.request(now + delay, MemClass::TableRead) {
                        MemOutcome::Done { done } => {
                            self.c.table_reads += 1;
                            self.push_event(done, EvKind::TableDone { token });
                        }
                        MemOutcome::Dropped => {
                            self.c.table_read_drops += 1;
                            self.pf.on_table_dropped(token);
                        }
                    }
                }
                Action::TableWrite => {
                    self.c.table_writes += 1;
                    let _ = self.mem.request(now, MemClass::TableWrite);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Time advancement
    // ------------------------------------------------------------------

    #[inline]
    fn fill_l2(&mut self, line: LineAddr, dirty: bool) {
        if let Some(ev) = self.l2.fill(line, dirty) {
            if ev.dirty {
                self.c.writebacks += 1;
                let _ = self.mem.request(self.cycle, MemClass::Writeback);
            }
        }
    }

    fn stall_all(&mut self) {
        let max_done = self
            .outstanding
            .iter()
            .map(|o| o.done)
            .max()
            .unwrap_or(self.cycle);
        if max_done > self.cycle {
            self.c.stall_cycles += max_done - self.cycle;
            self.cycle = max_done;
        }
        let mut outs = std::mem::take(&mut self.outs_scratch);
        std::mem::swap(&mut outs, &mut self.outstanding);
        for o in outs.drain(..) {
            self.complete_demand(o);
        }
        self.outs_scratch = outs;
        self.end_window();
    }

    fn complete_demand(&mut self, o: Outst) {
        self.fill_l2(o.line, false);
        self.mshr.release(o.line);
    }

    fn end_window(&mut self) {
        self.epoch.on_all_complete(self.cycle);
        let mut acts = std::mem::take(&mut self.actions);
        acts.clear();
        self.pf.on_epoch_end(self.cycle, &mut acts);
        self.apply_actions(self.cycle, &acts);
        self.actions = acts;
        self.window_insts = 0;
        self.dep_countdown = None;
        if self.next_ev_at <= self.cycle {
            self.drain_events(self.cycle);
        }
    }

    /// Retires outstanding misses that completed while the core kept
    /// running (natural overlap, no stall).
    #[inline]
    fn drain_outstanding(&mut self) {
        let mut i = 0;
        let mut removed = false;
        while i < self.outstanding.len() {
            if self.outstanding[i].done <= self.cycle {
                let o = self.outstanding.swap_remove(i);
                self.complete_demand(o);
                removed = true;
            } else {
                i += 1;
            }
        }
        if removed && self.outstanding.is_empty() {
            self.end_window();
        }
    }

    #[inline]
    fn push_event(&mut self, at: Cycle, kind: EvKind) {
        let ev = Ev {
            at,
            seq: self.ev_seq,
            kind,
        };
        self.ev_seq += 1;
        self.events.push(Reverse(ev));
        self.next_ev_at = self.next_ev_at.min(at);
    }

    fn drain_events(&mut self, upto: Cycle) {
        while let Some(Reverse(ev)) = self.events.peek().copied() {
            if ev.at > upto {
                break;
            }
            self.events.pop();
            match ev.kind {
                EvKind::TableDone { token } => {
                    let mut acts = std::mem::take(&mut self.actions);
                    acts.clear();
                    self.pf.on_table_done(token, ev.at, &mut acts);
                    self.apply_actions(ev.at, &acts);
                    self.actions = acts;
                }
                EvKind::PrefetchArrive { line, origin } => {
                    if let Some(i) = self.pf_inflight.iter().position(|&(l, _)| l == line) {
                        self.pf_inflight.swap_remove(i);
                    }
                    if !self.l2.probe(line)
                        && !self.mshr.contains(line)
                        && self.pbuf.insert(line, origin).is_some()
                    {
                        self.c.pf_evicted_unused += 1;
                    }
                }
                EvKind::StoreFill { line } => {
                    self.fill_l2(line, true);
                    self.mshr.release(line);
                }
            }
        }
        self.next_ev_at = self
            .events
            .peek()
            .map(|Reverse(e)| e.at)
            .unwrap_or(Cycle::MAX);
    }
}

fn diff_bus(now: ebcp_mem::BusStats, base: ebcp_mem::BusStats) -> ebcp_mem::BusStats {
    let mut out = now;
    for i in 0..out.transfers.len() {
        out.transfers[i] -= base.transfers[i];
        out.dropped[i] -= base.dropped[i];
        out.busy_cycles[i] -= base.busy_cycles[i];
    }
    out
}

fn diff_mem(now: MemStats, base: MemStats) -> MemStats {
    MemStats {
        read: diff_bus(now.read, base.read),
        write: diff_bus(now.write, base.write),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_prefetch::NullPrefetcher;
    use ebcp_trace::Op;
    use ebcp_types::Addr;

    fn tiny_cfg() -> SimConfig {
        SimConfig::scaled_down(16)
    }

    fn alu_run(pc0: u64, n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord::alu(Pc::new(pc0 + 4 * (i % 16))))
            .collect()
    }

    #[test]
    fn pure_alu_cpi_is_quarter() {
        let mut e = Engine::new(tiny_cfg(), Box::new(NullPrefetcher));
        // First fetch of the line misses everything: one epoch.
        e.run(alu_run(0x1000, 40_000));
        let r = e.result("t");
        // 40k insts at 4-wide = 10k cycles, plus one cold ifetch miss.
        assert!(r.cpi() > 0.25 && r.cpi() < 0.27, "cpi {}", r.cpi());
        assert_eq!(r.epochs, 1, "single cold instruction-fetch epoch");
    }

    #[test]
    fn overlapped_loads_form_one_epoch() {
        let mut e = Engine::new(tiny_cfg(), Box::new(NullPrefetcher));
        // Warm the code line, then two adjacent off-chip loads.
        let mut t = alu_run(0x1000, 16);
        t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.push(TraceRecord::load(Pc::new(0x1004), Addr::new(0x90_0000)));
        t.extend(alu_run(0x1000, 200));
        e.run(t);
        let r = e.result("t");
        assert_eq!(r.l2_load_misses, 2);
        // Cold ifetch epoch + one overlapped load epoch.
        assert_eq!(r.epochs, 2, "both loads overlap into one epoch");
    }

    #[test]
    fn rob_limit_terminates_window() {
        let cfg = tiny_cfg();
        let rob = cfg.core.rob_entries as u64;
        let mut e = Engine::new(cfg, Box::new(NullPrefetcher));
        // Load, then > ROB instructions, then another load: two epochs.
        let mut t = alu_run(0x1000, 16);
        t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.extend(alu_run(0x1000, rob + 32));
        t.push(TraceRecord::load(Pc::new(0x1004), Addr::new(0x90_0000)));
        t.extend(alu_run(0x1000, 300));
        e.run(t);
        let r = e.result("t");
        assert_eq!(r.epochs, 3, "ifetch epoch + two separated load epochs");
        assert!(
            r.stall_cycles > 900,
            "two full stalls expected, got {}",
            r.stall_cycles
        );
    }

    #[test]
    fn serialize_terminates_window() {
        let mut e = Engine::new(tiny_cfg(), Box::new(NullPrefetcher));
        let mut t = alu_run(0x1000, 16);
        t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.push(TraceRecord::new(Pc::new(0x1004), Op::Serialize));
        t.push(TraceRecord::load(Pc::new(0x1008), Addr::new(0x90_0000)));
        t.extend(alu_run(0x1000, 300));
        e.run(t);
        assert_eq!(e.result("t").epochs, 3);
    }

    #[test]
    fn dependent_mispredict_terminates_window() {
        let cfg = tiny_cfg();
        let mut e = Engine::new(cfg, Box::new(NullPrefetcher));
        let mut t = alu_run(0x1000, 16);
        t.push(TraceRecord::new(
            Pc::new(0x1000),
            Op::Load {
                addr: Addr::new(0x80_0000),
                feeds_mispredict: true,
            },
        ));
        // Within the dep window: a second load would have overlapped,
        // but the dependent mispredict cuts the window first.
        t.extend(alu_run(0x1000, 10));
        t.push(TraceRecord::load(Pc::new(0x1004), Addr::new(0x90_0000)));
        t.extend(alu_run(0x1000, 300));
        e.run(t);
        assert_eq!(e.result("t").epochs, 3, "dep-mispredict split the loads");
    }

    #[test]
    fn repeated_lines_hit_after_first_epoch() {
        let mut e = Engine::new(tiny_cfg(), Box::new(NullPrefetcher));
        let mut t = alu_run(0x1000, 16);
        for _ in 0..5 {
            t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
            t.extend(alu_run(0x1000, 200));
        }
        e.run(t);
        let r = e.result("t");
        assert_eq!(r.l2_load_misses, 1, "subsequent accesses hit the L2");
    }

    #[test]
    fn secondary_miss_does_not_double_count() {
        let mut e = Engine::new(tiny_cfg(), Box::new(NullPrefetcher));
        let mut t = alu_run(0x1000, 16);
        t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.push(TraceRecord::load(Pc::new(0x1004), Addr::new(0x80_0010))); // same line
        t.extend(alu_run(0x1000, 300));
        e.run(t);
        let r = e.result("t");
        assert_eq!(r.l2_load_misses, 1);
    }

    #[test]
    fn store_misses_do_not_create_epochs() {
        let mut e = Engine::new(tiny_cfg(), Box::new(NullPrefetcher));
        let mut t = alu_run(0x1000, 16);
        for i in 0..8u64 {
            t.push(TraceRecord::store(
                Pc::new(0x1000),
                Addr::new(0x80_0000 + i * 64),
            ));
        }
        t.extend(alu_run(0x1000, 2000));
        e.run(t);
        let r = e.result("t");
        assert_eq!(r.epochs, 1, "only the cold ifetch epoch");
        assert_eq!(r.l2_store_misses, 8);
    }

    #[test]
    fn dirty_evictions_produce_writebacks() {
        let cfg = tiny_cfg();
        let l2_lines = cfg.l2.lines();
        let mut e = Engine::new(cfg, Box::new(NullPrefetcher));
        let mut t = alu_run(0x1000, 16);
        // Dirty many lines, then stream enough loads through to evict.
        for i in 0..64u64 {
            t.push(TraceRecord::store(
                Pc::new(0x1000),
                Addr::new(0x80_0000 + i * 64),
            ));
            t.extend(alu_run(0x1000, 64));
        }
        for i in 0..l2_lines * 3 {
            t.push(TraceRecord::load(
                Pc::new(0x1000),
                Addr::new(0x200_0000 + i * 64),
            ));
            t.extend(alu_run(0x1000, 200));
        }
        e.run(t);
        assert!(e.result("t").writebacks > 0);
    }

    #[test]
    fn ev_eq_agrees_with_ord() {
        // Regression: PartialEq used to include `kind`, so two events
        // with equal (at, seq) but different kinds compared unequal
        // while Ord said Equal — a contract violation.
        let a = Ev {
            at: 100,
            seq: 7,
            kind: EvKind::TableDone { token: 1 },
        };
        let b = Ev {
            at: 100,
            seq: 7,
            kind: EvKind::StoreFill {
                line: LineAddr::from_index(42),
            },
        };
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a, b, "eq must agree with Ord::cmp == Equal");
        let c = Ev {
            at: 100,
            seq: 8,
            kind: EvKind::TableDone { token: 1 },
        };
        assert_ne!(a, c);
        assert!(a < c);
    }

    #[test]
    fn replay_matches_stepping_mixed_trace() {
        use crate::frontend::PreResolved;
        use ebcp_trace::{TraceGenerator, WorkloadSpec};

        let spec = WorkloadSpec::database().scaled(1, 32);
        let records: Vec<TraceRecord> = TraceGenerator::new(&spec, 11).take(60_000).collect();
        let cfg = tiny_cfg();

        let mut stepped = Engine::new(cfg, Box::new(NullPrefetcher));
        for r in &records {
            stepped.step(r);
        }

        let pre = PreResolved::from_records(&cfg, &records);
        let mut replayed = Engine::new(cfg, Box::new(NullPrefetcher));
        let mut cur = ReplayCursor::default();
        // Split the budget awkwardly to exercise mid-gap resumption.
        for budget in [1, 999, 17, 40_000, u64::MAX] {
            replayed.replay_events(&pre.events, &mut cur, budget);
        }

        assert_eq!(stepped.result("t"), replayed.result("t"));
        assert_eq!(stepped.insts(), replayed.insts());
        assert_eq!(stepped.cycle(), replayed.cycle());
    }

    #[test]
    fn warmup_reset_isolates_measurement() {
        let mut e = Engine::new(tiny_cfg(), Box::new(NullPrefetcher));
        let mut t = alu_run(0x1000, 16);
        t.push(TraceRecord::load(Pc::new(0x1000), Addr::new(0x80_0000)));
        t.extend(alu_run(0x1000, 300));
        e.run(t);
        e.reset_stats();
        e.run(alu_run(0x1000, 4000));
        let r = e.result("t");
        assert_eq!(r.l2_load_misses, 0);
        assert_eq!(r.epochs, 0);
        assert!(
            (r.cpi() - 0.25).abs() < 0.01,
            "pure issue-limited: {}",
            r.cpi()
        );
    }
}
