//! End-to-end service tests: a real daemon on a real socket, real
//! concurrent clients, and the byte-identity and warm-cache contracts
//! the service exists to provide.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ebcp_harness::{write_doc, Harness, HarnessConfig, QueueConfig, Scale, Value};
use ebcp_serve::{Client, Server, ServerConfig, SweepOutcome, SweepSpec};

/// A sub-second scale: tiny machine, a fraction of one recurrence
/// interval. Travels over the wire like any other scale.
fn tiny_scale() -> Scale {
    Scale {
        den: 64,
        warm_tenths: 2,
        measure_tenths: 2,
        seed: 7,
    }
}

fn sweep(workloads: &[&str], prefetchers: &[&str]) -> SweepSpec {
    SweepSpec {
        workloads: workloads.iter().map(|s| (*s).to_string()).collect(),
        prefetchers: prefetchers.iter().map(|s| (*s).to_string()).collect(),
        cores: Vec::new(),
        scale: tiny_scale(),
    }
}

struct Daemon {
    server: Arc<Server>,
    addr: String,
    runner: thread::JoinHandle<std::io::Result<()>>,
}

fn daemon(workers: usize, depth: usize) -> Daemon {
    let harness = Arc::new(Harness::new(HarnessConfig {
        jobs: 1,
        ..HarnessConfig::default()
    }));
    let server = Server::bind(
        harness,
        ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
            queue: QueueConfig {
                depth,
                workers,
                retry_after: Duration::from_millis(9),
            },
        },
    )
    .unwrap();
    let addr = format!("tcp:{}", server.tcp_addr().unwrap());
    let runner = {
        let s = Arc::clone(&server);
        thread::spawn(move || s.run())
    };
    Daemon {
        server,
        addr,
        runner,
    }
}

fn tmpfile(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ebcp-serve-{tag}-{}.json", std::process::id()))
}

fn job_started_events(v: &Value) -> bool {
    v.get("event").and_then(Value::as_str) == Some("telemetry")
        && v.get("kind").and_then(Value::as_str) == Some("job_started")
}

#[test]
fn served_results_match_a_local_run_byte_for_byte_and_warm_repeats_are_free() {
    let d = daemon(1, 64);
    let spec = sweep(&["database"], &["none", "stream"]);

    // Cold submit: every cell simulates.
    let mut client = Client::connect(&d.addr).unwrap();
    let started = AtomicUsize::new(0);
    let first = client
        .submit(&spec, |ev| {
            if job_started_events(ev) {
                started.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
    let SweepOutcome::Done { results, failed } = first else {
        panic!("cold submit refused: {first:?}");
    };
    assert_eq!(failed, 0);
    assert_eq!(started.load(Ordering::Relaxed), 2, "both cells simulated");
    assert_eq!(d.server.service().harness().summary().executed, 2);

    // The same sweep run locally, through the harness's own writer.
    let local = Harness::serial();
    local.run_outcomes(&spec.jobs().unwrap());
    let local_path = tmpfile("local");
    let served_path = tmpfile("served");
    local.write_results_json(&local_path).unwrap();
    write_doc(&served_path, &results).unwrap();
    assert_eq!(
        std::fs::read(&local_path).unwrap(),
        std::fs::read(&served_path).unwrap(),
        "served results.json must be byte-identical to a local run's"
    );

    // Warm repeat: answered from the memo — zero simulations, zero
    // job_started telemetry, and the identical document again.
    let started_again = AtomicUsize::new(0);
    let second = client
        .submit(&spec, |ev| {
            if job_started_events(ev) {
                started_again.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
    let SweepOutcome::Done { results: warm, .. } = second else {
        panic!("warm submit refused: {second:?}");
    };
    assert_eq!(started_again.load(Ordering::Relaxed), 0, "no cell re-ran");
    assert_eq!(d.server.service().harness().summary().executed, 2);
    assert_eq!(warm.to_json_pretty(), results.to_json_pretty());

    // The daemon held the pre-resolved stream warm across requests.
    let status = client.status().unwrap();
    assert!(status.warm_streams >= 1, "stream cache stayed warm");
    assert_eq!(status.completed, 4, "2 cold + 2 memo deliveries");

    client.shutdown().unwrap();
    d.runner.join().unwrap().unwrap();
    let _ = std::fs::remove_file(local_path);
    let _ = std::fs::remove_file(served_path);
}

#[test]
fn concurrent_clients_isolate_faults_and_both_finish() {
    let d = daemon(2, 64);

    // Client A's sweep contains only the fault-injection prefetcher:
    // every cell panics (twice — the simulator is deterministic) and
    // must come back as that client's "failed" cells.
    let addr_a = d.addr.clone();
    let a = thread::spawn(move || {
        let mut c = Client::connect(&addr_a).unwrap();
        c.submit(&sweep(&["database"], &["fault"]), |_| {}).unwrap()
    });
    // Client B sweeps normally at the same time.
    let addr_b = d.addr.clone();
    let b = thread::spawn(move || {
        let mut c = Client::connect(&addr_b).unwrap();
        c.submit(&sweep(&["database", "tpcw"], &["none"]), |_| {})
            .unwrap()
    });

    let SweepOutcome::Done {
        failed: a_failed,
        results: a_results,
    } = a.join().unwrap()
    else {
        panic!("client A refused");
    };
    let SweepOutcome::Done {
        failed: b_failed, ..
    } = b.join().unwrap()
    else {
        panic!("client B refused");
    };
    assert_eq!(a_failed, 1, "the fault cell failed for client A");
    assert_eq!(b_failed, 0, "client B's sweep was undisturbed");
    let row = &a_results.get("jobs").unwrap().as_arr().unwrap()[0];
    assert_eq!(row.get("outcome").unwrap().as_str(), Some("failed"));
    assert!(row.get("result").unwrap().is_null());

    d.server.stop();
    d.runner.join().unwrap().unwrap();
}

#[test]
fn fault_lane_in_a_mixed_sweep_fails_alone_and_siblings_match_serial() {
    // One submit carries a fault-injection lane *between* healthy
    // lanes. The fault cell must fail alone; every sibling's result
    // must be byte-identical to a serial local reference run with
    // lockstep replay disabled — the end-to-end version of the
    // harness-level isolation test.
    let d = daemon(2, 64);
    let spec = sweep(&["database"], &["none", "fault", "ebcp"]);
    let mut client = Client::connect(&d.addr).unwrap();
    let outcome = client.submit(&spec, |_| {}).unwrap();
    let SweepOutcome::Done { results, failed } = outcome else {
        panic!("submit refused: {outcome:?}");
    };
    assert_eq!(failed, 1, "exactly the fault cell failed");

    let reference = Harness::new(HarnessConfig {
        jobs: 1,
        lockstep: false,
        ..HarnessConfig::default()
    });
    reference.run_outcomes(&spec.jobs().unwrap());
    let ref_path = tmpfile("fault-ref");
    let served_path = tmpfile("fault-served");
    reference.write_results_json(&ref_path).unwrap();
    write_doc(&served_path, &results).unwrap();
    assert_eq!(
        std::fs::read(&ref_path).unwrap(),
        std::fs::read(&served_path).unwrap(),
        "served sweep with a fault lane must match the serial reference byte for byte"
    );

    let rows = results.get("jobs").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 3);
    for (i, expect) in [("none", "ok"), ("fault", "failed"), ("ebcp", "ok")]
        .iter()
        .enumerate()
    {
        let row = &rows[i];
        assert_eq!(row.get("prefetcher").unwrap().as_str(), Some(expect.0));
        assert_eq!(row.get("outcome").unwrap().as_str(), Some(expect.1));
    }
    let fault_err = rows[1].get("error").unwrap().as_str().unwrap();
    assert!(fault_err.contains("injected fault"), "{fault_err}");

    client.shutdown().unwrap();
    d.runner.join().unwrap().unwrap();
    let _ = std::fs::remove_file(ref_path);
    let _ = std::fs::remove_file(served_path);
}

#[test]
fn cmp_cells_flow_through_the_service_and_match_a_local_run() {
    use ebcp_harness::{results_doc_cmp, CmpResultRow};

    let d = daemon(1, 64);
    let mut spec = sweep(&["database"], &["none", "ebcp"]);
    spec.cores = vec![1, 2];
    let mut client = Client::connect(&d.addr).unwrap();
    let outcome = client.submit(&spec, |_| {}).unwrap();
    let SweepOutcome::Done { results, failed } = outcome else {
        panic!("cmp submit refused: {outcome:?}");
    };
    assert_eq!(failed, 0);

    // 2 single-core cells + (1 workload × 2 core counts × 2
    // prefetchers) CMP cells.
    let summary = results.get("summary").unwrap();
    assert_eq!(summary.get("unique").unwrap().as_u64(), Some(6));
    let cmp_rows_json = results.get("cmp_jobs").unwrap().as_arr().unwrap();
    assert_eq!(cmp_rows_json.len(), 4);
    assert_eq!(
        cmp_rows_json[0].get("cell").unwrap().as_str(),
        Some("database-mix")
    );
    assert_eq!(cmp_rows_json[2].get("cores").unwrap().as_u64(), Some(2));
    for row in cmp_rows_json {
        assert_eq!(row.get("outcome").unwrap().as_str(), Some("ok"));
        assert!(row.get("result").unwrap().get("aggregate").is_some());
    }

    // A local run of the same grid, assembled through the same
    // renderer, must be byte-identical — the CMP extension of the
    // sweep/submit contract.
    let local = Harness::serial();
    local.run_outcomes(&spec.jobs().unwrap());
    let cmp_jobs = spec.cmp_jobs().unwrap();
    let cmp_outcomes = local.run_cmp_outcomes(&cmp_jobs);
    let cmp_rows: Vec<CmpResultRow> = cmp_jobs
        .iter()
        .zip(&cmp_outcomes)
        .map(|(job, outcome)| CmpResultRow {
            id: job.id(),
            cell: job.spec.name.clone(),
            prefetcher: job.pf.name().to_string(),
            cores: job.cores() as u64,
            outcome: outcome.clone(),
        })
        .collect();
    let local_doc = results_doc_cmp(
        spec.jobs().unwrap().len() + cmp_jobs.len(),
        &local.result_rows(),
        &cmp_rows,
    );
    assert_eq!(
        local_doc.to_json_pretty(),
        results.to_json_pretty(),
        "served CMP results.json must match the local assembly byte for byte"
    );

    client.shutdown().unwrap();
    d.runner.join().unwrap().unwrap();
}

#[test]
fn full_queue_rejects_the_sweep_with_a_retry_hint() {
    // No workers and zero depth: a cold submit cannot be accepted.
    let d = daemon(0, 0);
    let mut client = Client::connect(&d.addr).unwrap();
    let outcome = client
        .submit(&sweep(&["database"], &["none"]), |_| {})
        .unwrap();
    let SweepOutcome::Rejected {
        reason,
        retry_after_ms,
    } = outcome
    else {
        panic!("expected rejection, got {outcome:?}");
    };
    assert!(reason.contains("queue full"), "reason: {reason}");
    assert_eq!(retry_after_ms, 9);

    // The daemon is still healthy: status round-trips on the same
    // connection.
    let status = client.status().unwrap();
    assert_eq!(status.depth, 0);

    d.server.stop();
    d.runner.join().unwrap().unwrap();
}

#[test]
fn malformed_frame_gets_an_error_line_not_a_silent_hangup() {
    use std::io::{BufRead, BufReader, Write};

    let d = daemon(1, 64);
    let raw_addr = d.addr.strip_prefix("tcp:").unwrap().to_string();

    // A raw socket speaking garbage: the daemon must answer with a
    // protocol error line naming the framing problem (not hang up
    // silently, and certainly not panic the handler thread).
    let mut bad = std::net::TcpStream::connect(&raw_addr).unwrap();
    bad.write_all(b"this is not json\n").unwrap();
    let mut reply = String::new();
    BufReader::new(bad.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    let v = ebcp_harness::json::parse(&reply).expect("error line is well-formed JSON");
    assert_eq!(v.get("event").and_then(Value::as_str), Some("error"));
    let reason = v.get("reason").and_then(Value::as_str).unwrap_or_default();
    assert!(reason.contains("malformed frame"), "reason: {reason}");
    // The connection is closed after the error line.
    let mut rest = String::new();
    let n = BufReader::new(bad).read_line(&mut rest).unwrap();
    assert_eq!(n, 0, "connection closes after the error line: {rest:?}");

    // The daemon survived and still serves real clients.
    let mut client = Client::connect(&d.addr).unwrap();
    let outcome = client
        .submit(&sweep(&["database"], &["none"]), |_| {})
        .unwrap();
    assert!(matches!(outcome, SweepOutcome::Done { failed: 0, .. }));
    client.shutdown().unwrap();
    d.runner.join().unwrap().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_carries_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("ebcp-serve-sock-{}", std::process::id()));
    let harness = Arc::new(Harness::new(HarnessConfig {
        jobs: 1,
        ..HarnessConfig::default()
    }));
    let server = Server::bind(
        harness,
        ServerConfig {
            tcp: None,
            unix: Some(path.clone()),
            queue: QueueConfig::default(),
        },
    )
    .unwrap();
    let runner = {
        let s = Arc::clone(&server);
        thread::spawn(move || s.run())
    };
    let mut client = Client::connect(&format!("unix:{}", path.display())).unwrap();
    let outcome = client
        .submit(&sweep(&["database"], &["none"]), |_| {})
        .unwrap();
    assert!(matches!(outcome, SweepOutcome::Done { failed: 0, .. }));
    client.shutdown().unwrap();
    runner.join().unwrap().unwrap();
    assert!(!path.exists(), "socket file removed on shutdown");
}
