//! The daemon: listeners, per-connection protocol handling, and the
//! bridge from [`JobService`] completions and the telemetry bus onto
//! client sockets.
//!
//! One [`Server`] owns one shared [`Harness`] (via its [`JobService`]),
//! so every connection sees the same warm memo and pre-resolved
//! streams. Each accepted socket gets a handler thread; a `submit`
//! subscribes to the harness telemetry bus *before* queueing, then
//! streams per-cell results and bus events (filtered to the sweep's own
//! job labels, except cache quarantines, which every client should see)
//! until all unique cells have landed.
//!
//! Isolation is inherited, not re-implemented: a cell that panics
//! becomes that client's `"failed"` cell through the harness's
//! panic-isolation path, and other connections never notice.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ebcp_harness::telemetry::Event;
use ebcp_harness::{
    CmpJob, CmpResultRow, Harness, Job, JobId, JobOutcome, JobService, QueueConfig, ResultRow,
    SubmitError, Value,
};

use crate::proto::{
    resp_accepted, resp_cell, resp_cmp_cell, resp_done, resp_error, resp_rejected,
    resp_shutting_down, resp_status, resp_telemetry, Conn, PROTO_VERSION,
};
use crate::sweep::SweepSpec;

/// Where to listen and how to queue.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address (`host:port`); `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix socket path; `None` disables it (and non-Unix platforms
    /// ignore it).
    pub unix: Option<PathBuf>,
    /// Job queue sizing and backpressure policy.
    pub queue: QueueConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: Some("127.0.0.1:3772".into()), // 0xebc
            unix: None,
            queue: QueueConfig::default(),
        }
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        // Only an atomic store: async-signal-safe.
        TERM.store(true, Ordering::SeqCst);
    }

    /// Routes SIGTERM and SIGINT to a flag the accept loop polls, so
    /// `kill <pid>` produces the same orderly drain as a `shutdown`
    /// command.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_term as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn terminated() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn terminated() -> bool {
        false
    }
}

/// The sweep service daemon.
pub struct Server {
    service: Arc<JobService>,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    unix: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    stop: AtomicBool,
    next_client: AtomicU64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tcp", &self.tcp_addr())
            .field("unix", &self.unix_path)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the configured listeners over `harness`. Workers do not
    /// run until [`Server::run`]. A stale Unix socket file from a dead
    /// daemon is removed before binding.
    ///
    /// # Errors
    ///
    /// Bind failures, or a config with no listener at all.
    pub fn bind(harness: Arc<Harness>, cfg: ServerConfig) -> io::Result<Arc<Self>> {
        let tcp = match &cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        #[cfg(unix)]
        let unix = match &cfg.unix {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        #[cfg(unix)]
        let have_unix = unix.is_some();
        #[cfg(not(unix))]
        let have_unix = false;
        if tcp.is_none() && !have_unix {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server config enables no listener",
            ));
        }
        Ok(Arc::new(Server {
            service: JobService::new(harness, cfg.queue),
            tcp,
            #[cfg(unix)]
            unix,
            unix_path: cfg.unix,
            stop: AtomicBool::new(false),
            next_client: AtomicU64::new(1),
        }))
    }

    /// The bound TCP address (useful after binding port `0`).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The job service (status snapshots, the shared harness).
    pub fn service(&self) -> &Arc<JobService> {
        &self.service
    }

    /// Asks the accept loop to wind down after its current poll.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || sig::terminated()
    }

    /// Starts the worker pool and serves until a `shutdown` command,
    /// [`Server::stop`], SIGTERM or SIGINT. Queued jobs drain before
    /// the call returns; idle connections are simply abandoned to
    /// process exit.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O failures other than `WouldBlock`.
    pub fn run(self: &Arc<Self>) -> io::Result<()> {
        sig::install();
        self.service.start();
        while !self.stopping() {
            let mut idle = true;
            if let Some(l) = &self.tcp {
                match l.accept() {
                    Ok((stream, _peer)) => {
                        idle = false;
                        // The protocol is many small lines; without
                        // nodelay, Nagle + delayed ACKs add ~40 ms per
                        // exchange.
                        let _ = stream.set_nodelay(true);
                        let reader = stream.try_clone()?;
                        self.spawn_handler(Box::new(reader), Box::new(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => return Err(e),
                }
            }
            #[cfg(unix)]
            if let Some(l) = &self.unix {
                match l.accept() {
                    Ok((stream, _peer)) => {
                        idle = false;
                        let reader = stream.try_clone()?;
                        self.spawn_handler(Box::new(reader), Box::new(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => return Err(e),
                }
            }
            if idle {
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        self.service.shutdown();
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    fn spawn_handler(self: &Arc<Self>, read: Box<dyn Read + Send>, write: Box<dyn Write + Send>) {
        let server = Arc::clone(self);
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(move || {
            let mut conn = Conn::new(read, write);
            server.handle_conn(client, &mut conn);
        });
    }

    /// One connection's command loop. Returns when the peer hangs up,
    /// sends garbage framing (after an `error` line naming the framing
    /// problem, so a buggy client sees *why* instead of a bare EOF), or
    /// the socket errors.
    fn handle_conn(&self, client: u64, conn: &mut Conn) {
        loop {
            let msg = match conn.recv() {
                Ok(Some(v)) => v,
                Ok(None) => return,
                Err(e) => {
                    if e.kind() == io::ErrorKind::InvalidData {
                        let _ = conn.send(&resp_error(&format!("malformed frame: {e}")));
                    }
                    return;
                }
            };
            if msg.get("v").and_then(Value::as_u64) != Some(PROTO_VERSION) {
                let reason =
                    format!("unsupported protocol version (server speaks {PROTO_VERSION})");
                if conn.send(&resp_error(&reason)).is_err() {
                    return;
                }
                continue;
            }
            let ok = match msg.get("cmd").and_then(Value::as_str) {
                Some("submit") => match msg.get("sweep") {
                    Some(sweep) => self.handle_submit(client, conn, sweep).is_ok(),
                    None => conn.send(&resp_error("submit without a sweep")).is_ok(),
                },
                Some("status") => conn.send(&resp_status(&self.service.status())).is_ok(),
                Some("shutdown") => {
                    let _ = conn.send(&resp_shutting_down());
                    self.stop();
                    return;
                }
                _ => conn.send(&resp_error("unknown cmd")).is_ok(),
            };
            if !ok {
                return;
            }
        }
    }

    /// Resolves, queues and streams one sweep. An `Err` means the
    /// socket died mid-stream; protocol-level refusals (bad names,
    /// backpressure) are sent as `error` / `rejected` lines and return
    /// `Ok`.
    ///
    /// Single-core cells go through the bounded job queue; multi-core
    /// CMP cells run inline on this handler thread through
    /// [`Harness::run_cmp_outcomes`] (the same memo and `.cmp.json`
    /// disk cache a local run uses) while the workers chew the queued
    /// singles — their `cmp_cell` lines stream after the singles drain.
    fn handle_submit(&self, client: u64, conn: &mut Conn, sweep: &Value) -> io::Result<()> {
        let (jobs, cmp_jobs) =
            match SweepSpec::from_value(sweep).and_then(|s| Ok((s.jobs()?, s.cmp_jobs()?))) {
                Ok(expanded) => expanded,
                Err(reason) => return conn.send(&resp_error(&reason)),
            };
        let mut seen = HashSet::new();
        let unique: Vec<Job> = jobs
            .iter()
            .filter(|j| seen.insert(j.id()))
            .cloned()
            .collect();
        let mut seen_cmp = HashSet::new();
        let unique_cmp: Vec<CmpJob> = cmp_jobs
            .iter()
            .filter(|j| seen_cmp.insert(j.id()))
            .cloned()
            .collect();
        let mut labels: HashSet<String> = unique.iter().map(Job::label).collect();
        labels.extend(unique_cmp.iter().map(CmpJob::label));

        // Subscribe before queueing so no event of ours is missed.
        let telemetry = self.service.harness().bus().subscribe();
        let (tx, completions) = mpsc::channel();
        for job in &unique {
            match self.service.submit(client, job.clone(), tx.clone()) {
                Ok(()) => {}
                Err(e) => {
                    // Cells already queued still run and warm the
                    // caches; their deliveries land in a dropped
                    // channel and are ignored.
                    let retry_ms = match &e {
                        SubmitError::QueueFull { retry_after } => {
                            u64::try_from(retry_after.as_millis()).unwrap_or(u64::MAX)
                        }
                        SubmitError::ShuttingDown => 0,
                    };
                    return conn.send(&resp_rejected(&e.to_string(), retry_ms));
                }
            }
        }
        drop(tx);
        conn.send(&resp_accepted(
            jobs.len() + cmp_jobs.len(),
            unique.len() + unique_cmp.len(),
        ))?;

        // CMP cells run here while the workers drain the queued
        // singles; the telemetry subscription (taken before queueing)
        // buffers both streams' events until the drain loop below.
        let cmp_outcomes = self.service.harness().run_cmp_outcomes(&unique_cmp);

        let mut outcomes: HashMap<JobId, JobOutcome> = HashMap::new();
        while outcomes.len() < unique.len() {
            let mut idle = true;
            while let Ok(ev) = telemetry.try_recv() {
                idle = false;
                if event_is_for(&ev, &labels) {
                    conn.send(&resp_telemetry(&ev))?;
                }
            }
            match completions.try_recv() {
                Ok((id, outcome)) => {
                    idle = false;
                    // A completion for a job this sweep never submitted
                    // would be a service routing bug; drop it rather
                    // than panicking the handler thread (which would
                    // silently kill the client's stream).
                    let Some(job) = unique.iter().find(|j| j.id() == id) else {
                        continue;
                    };
                    conn.send(&resp_cell(&ResultRow {
                        id,
                        workload: job.spec.workload.name.clone(),
                        prefetcher: job.pf.name().to_string(),
                        outcome: outcome.clone(),
                    }))?;
                    outcomes.insert(id, outcome);
                }
                Err(mpsc::TryRecvError::Empty) => {}
                // All senders gone with cells missing: workers died
                // (shutdown mid-sweep). Close out with what we have.
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
            if idle {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        // Late stragglers from the final cell's execution.
        while let Ok(ev) = telemetry.try_recv() {
            if event_is_for(&ev, &labels) {
                conn.send(&resp_telemetry(&ev))?;
            }
        }
        for (job, outcome) in unique_cmp.iter().zip(&cmp_outcomes) {
            conn.send(&resp_cmp_cell(&CmpResultRow {
                id: job.id(),
                cell: job.spec.name.clone(),
                prefetcher: job.pf.name().to_string(),
                cores: job.cores() as u64,
                outcome: outcome.clone(),
            }))?;
        }
        let failed = outcomes.values().filter(|o| o.is_failed()).count()
            + cmp_outcomes.iter().filter(|o| o.is_failed()).count();
        conn.send(&resp_done(
            jobs.len() + cmp_jobs.len(),
            outcomes.len() + cmp_outcomes.len(),
            failed,
        ))
    }
}

/// Should this bus event be forwarded to a sweep with these labels?
/// Cache quarantines are operator-relevant regardless of whose job
/// tripped them.
fn event_is_for(ev: &Event, labels: &HashSet<String>) -> bool {
    match ev {
        Event::CacheQuarantined { .. } => true,
        Event::JobStarted { label }
        | Event::JobFinished { label, .. }
        | Event::JobRetried { label, .. }
        | Event::JobFailed { label, .. } => labels.contains(label),
    }
}
