//! Sweep grids: the unit of work a client submits.
//!
//! A sweep is named, not serialized: workload preset names × prefetcher
//! names × a [`Scale`]. Both ends of the wire resolve the same names
//! through the same workspace code ([`SweepSpec::jobs`]), so the
//! daemon's content-addressed [`Job`]s are identical to the ones a
//! local run would build — the memo, the disk store, and the
//! byte-identical `results.json` contract all hang off that.

use ebcp_core::EbcpConfig;
use ebcp_harness::{CmpJob, Job, Scale, Value};
use ebcp_prefetch::{BaselineConfig, FaultConfig};
use ebcp_sim::PrefetcherSpec;
use ebcp_trace::WorkloadSpec;

/// A named sweep: the cross product of workloads and prefetchers at
/// one scale. Order matters — it is the submission (and results.json)
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Workload preset names (subset of the paper's four plus the
    /// evolving-graph preset, `graph`).
    pub workloads: Vec<String>,
    /// Prefetcher names (see [`SweepSpec::resolve_prefetcher`]).
    pub prefetchers: Vec<String>,
    /// CMP core counts (1..=64). Empty = single-core only: the sweep
    /// carries no CMP cells and its `results.json` is byte-identical
    /// to the pre-CMP format. Non-empty adds one multi-core cell per
    /// workload × count × prefetcher, routed through the
    /// discrete-event CMP engine.
    pub cores: Vec<u64>,
    /// Experiment scale.
    pub scale: Scale,
}

impl SweepSpec {
    /// Resolves a prefetcher name at `scale`: `none`, `ebcp`,
    /// `ebcp-minus`, any Figure 9 roster baseline (`ghb-small`,
    /// `ghb-large`, `tcp-small`, `tcp-large`, `stream`, `sms`,
    /// `solihin-3,2`, `solihin-6,1`), a modern roster competitor
    /// (`triangel`, `amc`), or `fault` — the fault-injection
    /// prefetcher, kept addressable so isolation is testable end to
    /// end. A `+nof` suffix wraps any of the above in the neural
    /// off-chip filter (`ebcp+nof`, `stream+nof`, ...).
    ///
    /// # Errors
    ///
    /// An unknown name (the message lists the roster).
    pub fn resolve_prefetcher(name: &str, scale: &Scale) -> Result<PrefetcherSpec, String> {
        if let Some(inner) = name.strip_suffix("+nof") {
            let inner = Self::resolve_prefetcher(inner, scale)?;
            return Ok(PrefetcherSpec::filtered(inner));
        }
        match name {
            "none" => Ok(PrefetcherSpec::None),
            "ebcp" => Ok(PrefetcherSpec::Ebcp(
                EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20)),
            )),
            "ebcp-minus" => Ok(PrefetcherSpec::Ebcp(
                EbcpConfig::comparison_minus().with_table_entries(scale.entries(1 << 20)),
            )),
            "fault" => Ok(PrefetcherSpec::baseline(
                "fault",
                BaselineConfig::Fault(FaultConfig::panic_after(0)),
            )),
            other => scale
                .figure9_roster()
                .into_iter()
                .chain(scale.modern_roster())
                .find(|(n, _)| *n == other)
                .map(|(n, c)| PrefetcherSpec::baseline(n, c))
                .ok_or_else(|| {
                    format!(
                        "unknown prefetcher {other:?}; known: none, ebcp, ebcp-minus, fault, \
                         ghb-small, ghb-large, tcp-small, tcp-large, stream, sms, \
                         solihin-3,2, solihin-6,1, triangel, amc, and any of those \
                         with a +nof suffix"
                    )
                }),
        }
    }

    /// Expands the grid into submission-ordered jobs (workload-major,
    /// matching the figure drivers).
    ///
    /// # Errors
    ///
    /// An unknown workload or prefetcher name, or an empty axis.
    pub fn jobs(&self) -> Result<Vec<Job>, String> {
        if self.workloads.is_empty() || self.prefetchers.is_empty() {
            return Err("a sweep needs at least one workload and one prefetcher".into());
        }
        let presets = self.scale.workloads_all();
        let machine = self.scale.machine();
        let pfs: Vec<PrefetcherSpec> = self
            .prefetchers
            .iter()
            .map(|n| Self::resolve_prefetcher(n, &self.scale))
            .collect::<Result<_, _>>()?;
        let mut jobs = Vec::with_capacity(self.workloads.len() * pfs.len());
        for wname in &self.workloads {
            let w = presets
                .iter()
                .find(|w| &w.name == wname)
                .ok_or_else(|| format!("unknown workload {wname:?}"))?;
            let spec = self.scale.run_spec(w, machine.clone());
            for pf in &pfs {
                jobs.push(Job::new(spec.clone(), pf.clone()));
            }
        }
        Ok(jobs)
    }

    /// Expands the CMP grid into submission-ordered cells
    /// (workload-major, then core count, then prefetcher). Empty when
    /// the sweep has no `cores` axis.
    ///
    /// Cells are built through the one shared recipe
    /// ([`Scale::cmp_spec`], from the **unscaled** presets), so the
    /// daemon's content-addressed [`CmpJob`]s are identical to the ones
    /// `repro cmp` or a local `repro sweep --cores` would build — same
    /// id, same memo, same disk cache.
    ///
    /// # Errors
    ///
    /// An unknown workload or prefetcher name, or a core count outside
    /// `1..=64`.
    pub fn cmp_jobs(&self) -> Result<Vec<CmpJob>, String> {
        if self.cores.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(&n) = self.cores.iter().find(|&&n| n == 0 || n > 64) {
            return Err(format!("core count {n} outside 1..=64"));
        }
        let presets = WorkloadSpec::extended_presets();
        let pfs: Vec<PrefetcherSpec> = self
            .prefetchers
            .iter()
            .map(|n| Self::resolve_prefetcher(n, &self.scale))
            .collect::<Result<_, _>>()?;
        let mut jobs = Vec::with_capacity(self.workloads.len() * self.cores.len() * pfs.len());
        for wname in &self.workloads {
            let preset = presets
                .iter()
                .find(|w| &w.name == wname)
                .ok_or_else(|| format!("unknown workload {wname:?}"))?;
            for &n in &self.cores {
                let spec = self.scale.cmp_spec(preset, n as usize);
                for pf in &pfs {
                    jobs.push(CmpJob::new(spec.clone(), pf.clone()));
                }
            }
        }
        Ok(jobs)
    }

    /// Wire encoding (the names and scale numbers, nothing resolved).
    /// The `cores` axis is encoded only when non-empty, so a
    /// single-core sweep's encoding is unchanged from older clients.
    pub fn to_value(&self) -> Value {
        let strs = |v: &[String]| Value::Arr(v.iter().map(|s| Value::Str(s.clone())).collect());
        let mut fields = vec![
            ("workloads".into(), strs(&self.workloads)),
            ("prefetchers".into(), strs(&self.prefetchers)),
        ];
        if !self.cores.is_empty() {
            fields.push((
                "cores".into(),
                Value::Arr(self.cores.iter().map(|&n| Value::Int(n)).collect()),
            ));
        }
        fields.push((
            "scale".into(),
            Value::Obj(vec![
                ("den".into(), Value::Int(self.scale.den)),
                ("warm_tenths".into(), Value::Int(self.scale.warm_tenths)),
                (
                    "measure_tenths".into(),
                    Value::Int(self.scale.measure_tenths),
                ),
                ("seed".into(), Value::Int(self.scale.seed)),
            ]),
        ));
        Value::Obj(fields)
    }

    /// Decodes the wire encoding.
    ///
    /// # Errors
    ///
    /// A missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let strs = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("sweep missing {key:?} array"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("non-string entry in {key:?}"))
                })
                .collect()
        };
        let scale = v.get("scale").ok_or("sweep missing \"scale\"")?;
        let num = |key: &str| -> Result<u64, String> {
            scale
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("scale missing {key:?}"))
        };
        // Absent-tolerant: sweeps from pre-CMP clients carry no
        // "cores" key, which decodes as the empty axis.
        let cores: Vec<u64> = match v.get("cores") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("\"cores\" is not an array")?
                .iter()
                .map(|n| {
                    n.as_u64()
                        .ok_or_else(|| "non-integer core count".to_owned())
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(SweepSpec {
            workloads: strs("workloads")?,
            prefetchers: strs("prefetchers")?,
            cores,
            scale: Scale {
                den: num("den")?,
                warm_tenths: num("warm_tenths")?,
                measure_tenths: num("measure_tenths")?,
                seed: num("seed")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> SweepSpec {
        SweepSpec {
            workloads: vec!["database".into(), "tpcw".into()],
            prefetchers: vec!["none".into(), "ebcp".into(), "stream".into()],
            cores: Vec::new(),
            scale: Scale::quick(),
        }
    }

    #[test]
    fn grid_expands_workload_major() {
        let jobs = sweep().jobs().unwrap();
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].spec.workload.name, "database");
        assert_eq!(jobs[0].pf.name(), "none");
        assert_eq!(jobs[2].pf.name(), "stream");
        assert_eq!(jobs[3].spec.workload.name, "tpcw");
    }

    #[test]
    fn wire_round_trip_preserves_the_grid() {
        let s = sweep();
        let text = s.to_value().to_json();
        let back = SweepSpec::from_value(&ebcp_harness::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Same grid → same content-addressed jobs on both ends.
        let a: Vec<_> = s.jobs().unwrap().iter().map(Job::id).collect();
        let b: Vec<_> = back.jobs().unwrap().iter().map(Job::id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_names_are_rejected_with_the_roster() {
        let mut s = sweep();
        s.prefetchers = vec!["bogus".into()];
        let err = s.jobs().unwrap_err();
        assert!(err.contains("unknown prefetcher") && err.contains("solihin-6,1"));
        let mut s = sweep();
        s.workloads = vec!["nope".into()];
        assert!(s.jobs().unwrap_err().contains("unknown workload"));
    }

    #[test]
    fn cmp_grid_expands_and_round_trips() {
        // No cores axis: no CMP cells, and no "cores" key on the wire
        // (single-core encodings stay byte-identical).
        let s = sweep();
        assert!(s.cmp_jobs().unwrap().is_empty());
        assert!(!s.to_value().to_json().contains("cores"));

        let mut s = sweep();
        s.cores = vec![1, 4];
        let cells = s.cmp_jobs().unwrap();
        // workload-major × cores × prefetchers.
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells[0].spec.name, "database-mix");
        assert_eq!(cells[0].cores(), 1);
        assert_eq!(cells[0].pf.name(), "none");
        assert_eq!(cells[3].cores(), 4);
        assert_eq!(cells[6].spec.name, "tpcw-mix");

        // Wire round-trip preserves the axis and the content hashes.
        let text = s.to_value().to_json();
        let back = SweepSpec::from_value(&ebcp_harness::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        let a: Vec<_> = cells.iter().map(CmpJob::id).collect();
        let b: Vec<_> = back.cmp_jobs().unwrap().iter().map(CmpJob::id).collect();
        assert_eq!(a, b);

        // Out-of-range counts are rejected.
        s.cores = vec![65];
        assert!(s.cmp_jobs().unwrap_err().contains("1..=64"));
    }

    #[test]
    fn every_roster_name_resolves() {
        for n in [
            "none",
            "ebcp",
            "ebcp-minus",
            "fault",
            "ghb-small",
            "ghb-large",
            "tcp-small",
            "tcp-large",
            "stream",
            "sms",
            "solihin-3,2",
            "solihin-6,1",
            "triangel",
            "amc",
            "ebcp+nof",
            "stream+nof",
            "triangel+nof",
        ] {
            let pf = SweepSpec::resolve_prefetcher(n, &Scale::quick()).unwrap();
            assert_eq!(pf.name(), n);
        }
        // The suffix composes with resolution, not with arbitrary text.
        assert!(SweepSpec::resolve_prefetcher("bogus+nof", &Scale::quick()).is_err());
    }

    #[test]
    fn graph_workload_and_modern_names_expand_to_jobs() {
        let s = SweepSpec {
            workloads: vec!["graph".into()],
            prefetchers: vec!["triangel".into(), "amc".into(), "ebcp+nof".into()],
            cores: vec![2],
            scale: Scale::quick(),
        };
        let jobs = s.jobs().unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].spec.workload.name, "graph");
        assert!(jobs[0].spec.workload.evolve_every_execs > 0);
        assert_eq!(jobs[2].pf.name(), "ebcp+nof");
        assert_eq!(s.cmp_jobs().unwrap().len(), 3);

        // Wire round-trip preserves the grid and the content hashes.
        let text = s.to_value().to_json();
        let back = SweepSpec::from_value(&ebcp_harness::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        let a: Vec<_> = jobs.iter().map(Job::id).collect();
        let b: Vec<_> = back.jobs().unwrap().iter().map(Job::id).collect();
        assert_eq!(a, b);
    }
}
