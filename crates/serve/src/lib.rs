//! Sweep-as-a-service: a long-lived daemon over the EBCP harness.
//!
//! `repro all` pays its fixed costs — front-end trace resolution, disk
//! cache reads, memo warm-up — once per *process*. A research loop that
//! submits dozens of small sweeps a day pays them dozens of times. This
//! crate moves the harness behind a daemon (`repro serve`) that holds
//! everything warm across requests:
//!
//! - the **result memo** and **pre-resolved event streams** live in one
//!   shared [`Harness`](ebcp_harness::Harness) for the daemon's
//!   lifetime, so a repeat sweep performs *zero* simulations and even a
//!   novel prefetcher sweep pays zero front-end cost on a warm
//!   workload;
//! - jobs flow through a bounded, per-client-fair
//!   [`JobService`](ebcp_harness::JobService) queue — a flooding client
//!   is pushed back with a retry hint, not buffered unboundedly, and
//!   one client's panicking cell never disturbs another's sweep;
//! - results and live telemetry **stream** back per cell as they land,
//!   over a std-only line-delimited JSON protocol ([`proto`]) carried
//!   by TCP or a Unix socket — no HTTP stack, no serialization crates.
//!
//! The client side ([`client`]) assembles the streamed cells back into
//! a `results.json` through the *same* deterministic renderer local
//! runs use ([`ebcp_harness::results_doc`]), which is what makes
//! `repro submit` byte-identical to `repro sweep` run locally.
//!
//! Sweeps travel as **grids**, not serialized jobs: workload names ×
//! prefetcher names × a scale ([`sweep::SweepSpec`]). Client and daemon
//! are built from the same workspace, so resolving the grid on both
//! sides yields identical content-addressed jobs; the names are the
//! wire format and version skew is caught by the job-id echo.

pub mod client;
pub mod proto;
pub mod server;
pub mod sweep;

pub use client::{Client, SweepOutcome};
pub use proto::Conn;
pub use server::{Server, ServerConfig};
pub use sweep::SweepSpec;
