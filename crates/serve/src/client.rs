//! The client side: connect, submit a sweep, reassemble the stream.
//!
//! The client expands the sweep grid itself (same workspace code as the
//! daemon), so it knows the exact submission-ordered job ids to expect.
//! Streamed cells arrive in *completion* order and are re-sorted into
//! submission order before rendering — through
//! [`ebcp_harness::results_doc`], the same renderer local runs use,
//! which is what makes a served `results.json` byte-identical to a
//! local one. A cell id the client did not predict is a version-skew
//! error, not a silent mismatch.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

use ebcp_harness::{results_doc_cmp, CmpResultRow, JobId, ResultRow, ServiceStatus, Value};

use crate::proto::{
    parse_cell, parse_cmp_cell, request_shutdown, request_status, request_submit, Conn,
};
use crate::sweep::SweepSpec;

/// How a submitted sweep ended.
#[derive(Debug, Clone)]
pub enum SweepOutcome {
    /// Every unique cell landed; `results` is the deterministic
    /// document a local run of the same sweep would have written.
    Done {
        /// The assembled `results.json` document.
        results: Value,
        /// Cells that failed (also counted inside `results`).
        failed: usize,
    },
    /// The daemon refused the sweep (backpressure or shutdown).
    Rejected {
        /// Human-readable refusal.
        reason: String,
        /// Suggested back-off before resubmitting.
        retry_after_ms: u64,
    },
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    conn: Conn,
}

fn split<S>(stream: S) -> io::Result<Conn>
where
    S: Read + Write + Send + 'static,
    S: TryCloneStream,
{
    let reader = stream.try_clone_stream()?;
    Ok(Conn::new(reader, Box::new(stream)))
}

/// Object-safe `try_clone` shim over the two socket types.
trait TryCloneStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Read + Send>>;
}

impl TryCloneStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl TryCloneStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Client {
    /// Connects to a daemon. Accepts `tcp:host:port` (or a bare
    /// `host:port`) and `unix:/path/to.sock`.
    ///
    /// # Errors
    ///
    /// Connection failures, or a `unix:` address off Unix.
    pub fn connect(addr: &str) -> io::Result<Client> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                return Ok(Client {
                    conn: split(UnixStream::connect(path)?)?,
                });
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        }
        let hostport = addr.strip_prefix("tcp:").unwrap_or(addr);
        let stream = TcpStream::connect(hostport)?;
        // Line-at-a-time request/response: Nagle would serialize every
        // exchange behind a delayed ACK.
        let _ = stream.set_nodelay(true);
        Ok(Client {
            conn: split(stream)?,
        })
    }

    /// Submits a sweep and blocks until it finishes or is refused.
    /// Every streamed line (telemetry and cells alike) is passed to
    /// `on_event` for live display before being processed.
    ///
    /// # Errors
    ///
    /// Socket failures, protocol `error` lines, a cell id outside the
    /// locally expanded grid, or a `done` with cells missing (all
    /// version-skew or daemon-fault conditions — a well-behaved
    /// exchange ends in [`SweepOutcome::Done`] or
    /// [`SweepOutcome::Rejected`]).
    pub fn submit(
        &mut self,
        sweep: &SweepSpec,
        mut on_event: impl FnMut(&Value),
    ) -> io::Result<SweepOutcome> {
        let jobs = sweep.jobs().map_err(bad_input)?;
        let cmp_jobs = sweep.cmp_jobs().map_err(bad_input)?;
        // Submission-ordered unique identity rows, as a local run's
        // results.json would list them.
        let mut order: Vec<(JobId, String, String)> = Vec::new();
        for job in &jobs {
            if order.iter().all(|(id, _, _)| *id != job.id()) {
                order.push((
                    job.id(),
                    job.spec.workload.name.clone(),
                    job.pf.name().to_string(),
                ));
            }
        }
        // (id, cell name, prefetcher, cores) per unique CMP cell.
        let mut cmp_order: Vec<(JobId, String, String, u64)> = Vec::new();
        for job in &cmp_jobs {
            if cmp_order.iter().all(|(id, _, _, _)| *id != job.id()) {
                cmp_order.push((
                    job.id(),
                    job.spec.name.clone(),
                    job.pf.name().to_string(),
                    job.cores() as u64,
                ));
            }
        }
        self.conn.send(&request_submit(sweep.to_value()))?;

        let mut cells: HashMap<JobId, ResultRow> = HashMap::new();
        let mut cmp_cells: HashMap<JobId, CmpResultRow> = HashMap::new();
        loop {
            let Some(msg) = self.conn.recv()? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon hung up mid-sweep",
                ));
            };
            on_event(&msg);
            match msg.get("event").and_then(Value::as_str) {
                Some("accepted") => {
                    let unique = msg.get("unique").and_then(Value::as_u64);
                    let expected = order.len() + cmp_order.len();
                    if unique != Some(expected as u64) {
                        return Err(bad_data(format!(
                            "daemon resolved {unique:?} unique cells, client expected {expected} \
                             — client/daemon version skew"
                        )));
                    }
                }
                Some("rejected") => {
                    return Ok(SweepOutcome::Rejected {
                        reason: msg
                            .get("reason")
                            .and_then(Value::as_str)
                            .unwrap_or("rejected")
                            .to_string(),
                        retry_after_ms: msg
                            .get("retry_after_ms")
                            .and_then(Value::as_u64)
                            .unwrap_or(0),
                    });
                }
                Some("telemetry") => {}
                Some("cell") => {
                    let row = parse_cell(&msg).map_err(bad_data)?;
                    if !order.iter().any(|(id, _, _)| *id == row.id) {
                        return Err(bad_data(format!(
                            "daemon streamed cell {} outside the submitted grid \
                             — client/daemon version skew",
                            row.id
                        )));
                    }
                    cells.insert(row.id, row);
                }
                Some("cmp_cell") => {
                    let row = parse_cmp_cell(&msg).map_err(bad_data)?;
                    if !cmp_order.iter().any(|(id, _, _, _)| *id == row.id) {
                        return Err(bad_data(format!(
                            "daemon streamed CMP cell {} outside the submitted grid \
                             — client/daemon version skew",
                            row.id
                        )));
                    }
                    cmp_cells.insert(row.id, row);
                }
                Some("done") => {
                    let mut rows = Vec::with_capacity(order.len());
                    for (id, workload, prefetcher) in &order {
                        let row = cells.remove(id).ok_or_else(|| {
                            bad_data(format!("done, but cell {workload} x {prefetcher} missing"))
                        })?;
                        rows.push(row);
                    }
                    let mut cmp_rows = Vec::with_capacity(cmp_order.len());
                    for (id, cell, prefetcher, cores) in &cmp_order {
                        let row = cmp_cells.remove(id).ok_or_else(|| {
                            bad_data(format!(
                                "done, but CMP cell {cell}@{cores}c x {prefetcher} missing"
                            ))
                        })?;
                        cmp_rows.push(row);
                    }
                    let failed = rows.iter().filter(|r| r.outcome.is_failed()).count()
                        + cmp_rows.iter().filter(|r| r.outcome.is_failed()).count();
                    return Ok(SweepOutcome::Done {
                        results: results_doc_cmp(jobs.len() + cmp_jobs.len(), &rows, &cmp_rows),
                        failed,
                    });
                }
                Some("error") => {
                    let reason = msg
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("daemon error");
                    return Err(bad_data(reason.to_string()));
                }
                other => {
                    return Err(bad_data(format!("unexpected event {other:?}")));
                }
            }
        }
    }

    /// Fetches a status snapshot.
    ///
    /// # Errors
    ///
    /// Socket failures or a malformed reply.
    pub fn status(&mut self) -> io::Result<ServiceStatus> {
        self.conn.send(&request_status())?;
        let msg = self
            .conn
            .recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon hung up"))?;
        let n = |key: &str| {
            msg.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad_data(format!("status missing {key:?}")))
        };
        Ok(ServiceStatus {
            queued: n("queued")? as usize,
            running: n("running")? as usize,
            clients: n("clients")? as usize,
            completed: n("completed")?,
            depth: n("depth")? as usize,
            warm_streams: n("warm_streams")? as usize,
            // Absent-tolerant: a storeless (or older) daemon sends no
            // footprint.
            store: msg.get("store").and_then(crate::proto::footprint_from_json),
        })
    }

    /// Asks the daemon to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Socket failures or a reply that is not the shutdown ack.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.conn.send(&request_shutdown())?;
        let msg = self
            .conn
            .recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon hung up"))?;
        match msg.get("event").and_then(Value::as_str) {
            Some("shutting_down") => Ok(()),
            other => Err(bad_data(format!("unexpected shutdown reply {other:?}"))),
        }
    }
}

fn bad_input(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, reason)
}

fn bad_data(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason)
}
