//! The wire protocol: line-delimited JSON over any byte stream.
//!
//! Framing is one compact JSON document per `\n`-terminated line —
//! trivially debuggable with `nc` and implementable on bare
//! [`std::net`], which the hermetic build requires (no HTTP stack, no
//! serialization crates). Requests carry a version field; responses are
//! *streamed*: a submit produces a prologue (`accepted` or `rejected`),
//! a telemetry/cell event stream, and a `done` epilogue.
//!
//! ```text
//! client → server   {"v":1,"cmd":"submit","sweep":{...}}
//!                   {"v":1,"cmd":"status"}
//!                   {"v":1,"cmd":"shutdown"}
//! server → client   {"event":"accepted","jobs":N,"unique":M}
//!                   {"event":"rejected","reason":..,"retry_after_ms":N}
//!                   {"event":"telemetry","kind":..,"label":..,...}
//!                   {"event":"cell","id":..,"workload":..,"prefetcher":..,
//!                    "outcome":"ok"|"failed","error":..,"result":{..}}
//!                   {"event":"cmp_cell","id":..,"cell":..,"prefetcher":..,
//!                    "cores":N,"outcome":"ok"|"failed","error":..,"result":{..}}
//!                   {"event":"done","summary":{..}}
//!                   {"event":"status", ...}
//!                   {"event":"error","reason":..}
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};

use ebcp_harness::cmp::{cmp_result_from_json, cmp_result_to_json};
use ebcp_harness::store::{result_from_json, result_to_json};
use ebcp_harness::telemetry::Event;
use ebcp_harness::{
    json, CmpOutcome, CmpResultRow, JobId, JobOutcome, ResultRow, ServiceStatus,
    StoreClassFootprint, StoreFootprint, Value,
};

/// Protocol version; bump on incompatible message changes.
pub const PROTO_VERSION: u64 = 1;

/// A framed connection: reads and writes one JSON document per line.
pub struct Conn {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn").finish_non_exhaustive()
    }
}

impl Conn {
    /// Wraps a read half and a write half (use the stream's
    /// `try_clone` to split a socket).
    pub fn new(read: Box<dyn Read + Send>, write: Box<dyn Write + Send>) -> Self {
        Conn {
            reader: BufReader::new(read),
            writer: write,
        }
    }

    /// Sends one document as a compact line.
    ///
    /// # Errors
    ///
    /// Propagates write failures (e.g. the peer hung up).
    pub fn send(&mut self, v: &Value) -> io::Result<()> {
        let mut line = v.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Receives the next document; `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// I/O failures, and [`io::ErrorKind::InvalidData`] for a line that
    /// is not valid JSON.
    pub fn recv(&mut self) -> io::Result<Option<Value>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue; // blank keep-alive lines are permitted
            }
            return json::parse(line.trim())
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// `submit` request around an encoded sweep.
pub fn request_submit(sweep: Value) -> Value {
    obj(vec![
        ("v", Value::Int(PROTO_VERSION)),
        ("cmd", Value::Str("submit".into())),
        ("sweep", sweep),
    ])
}

/// `status` request.
pub fn request_status() -> Value {
    obj(vec![
        ("v", Value::Int(PROTO_VERSION)),
        ("cmd", Value::Str("status".into())),
    ])
}

/// `shutdown` request.
pub fn request_shutdown() -> Value {
    obj(vec![
        ("v", Value::Int(PROTO_VERSION)),
        ("cmd", Value::Str("shutdown".into())),
    ])
}

/// Submit prologue: the sweep was accepted whole.
pub fn resp_accepted(jobs: usize, unique: usize) -> Value {
    obj(vec![
        ("event", Value::Str("accepted".into())),
        ("jobs", Value::Int(jobs as u64)),
        ("unique", Value::Int(unique as u64)),
    ])
}

/// Submit prologue: refused (backpressure); retry after the hint.
pub fn resp_rejected(reason: &str, retry_after_ms: u64) -> Value {
    obj(vec![
        ("event", Value::Str("rejected".into())),
        ("reason", Value::Str(reason.into())),
        ("retry_after_ms", Value::Int(retry_after_ms)),
    ])
}

/// Acknowledges a `shutdown` request: the daemon stops accepting work
/// and exits once queued jobs drain.
pub fn resp_shutting_down() -> Value {
    obj(vec![("event", Value::Str("shutting_down".into()))])
}

/// Terminal error (bad request, unknown names, version skew).
pub fn resp_error(reason: &str) -> Value {
    obj(vec![
        ("event", Value::Str("error".into())),
        ("reason", Value::Str(reason.into())),
    ])
}

/// One live telemetry event, forwarded from the harness bus.
pub fn resp_telemetry(ev: &Event) -> Value {
    let mut fields = vec![("event", Value::Str("telemetry".into()))];
    match ev {
        Event::JobStarted { label } => {
            fields.push(("kind", Value::Str("job_started".into())));
            fields.push(("label", Value::Str(label.clone())));
        }
        Event::JobFinished {
            label,
            wall_ms,
            insts_per_sec,
        } => {
            fields.push(("kind", Value::Str("job_finished".into())));
            fields.push(("label", Value::Str(label.clone())));
            fields.push(("wall_ms", Value::Int(*wall_ms)));
            fields.push(("insts_per_sec", Value::Num(*insts_per_sec)));
        }
        Event::JobRetried { label, reason } => {
            fields.push(("kind", Value::Str("job_retried".into())));
            fields.push(("label", Value::Str(label.clone())));
            fields.push(("reason", Value::Str(reason.clone())));
        }
        Event::JobFailed { label, reason } => {
            fields.push(("kind", Value::Str("job_failed".into())));
            fields.push(("label", Value::Str(label.clone())));
            fields.push(("reason", Value::Str(reason.clone())));
        }
        Event::CacheQuarantined { path, reason } => {
            fields.push(("kind", Value::Str("cache_quarantined".into())));
            fields.push(("path", Value::Str(path.clone())));
            fields.push(("reason", Value::Str(reason.clone())));
        }
    }
    obj(fields)
}

/// One finished cell.
pub fn resp_cell(row: &ResultRow) -> Value {
    obj(vec![
        ("event", Value::Str("cell".into())),
        ("id", Value::Str(row.id.to_string())),
        ("workload", Value::Str(row.workload.clone())),
        ("prefetcher", Value::Str(row.prefetcher.clone())),
        (
            "outcome",
            Value::Str(
                if row.outcome.is_failed() {
                    "failed"
                } else {
                    "ok"
                }
                .into(),
            ),
        ),
        (
            "error",
            row.outcome
                .failure()
                .map_or(Value::Null, |e| Value::Str(e.into())),
        ),
        (
            "result",
            row.outcome.result().map_or(Value::Null, result_to_json),
        ),
    ])
}

/// One finished multi-core CMP cell.
pub fn resp_cmp_cell(row: &CmpResultRow) -> Value {
    obj(vec![
        ("event", Value::Str("cmp_cell".into())),
        ("id", Value::Str(row.id.to_string())),
        ("cell", Value::Str(row.cell.clone())),
        ("prefetcher", Value::Str(row.prefetcher.clone())),
        ("cores", Value::Int(row.cores)),
        (
            "outcome",
            Value::Str(
                if row.outcome.is_failed() {
                    "failed"
                } else {
                    "ok"
                }
                .into(),
            ),
        ),
        (
            "error",
            row.outcome
                .failure()
                .map_or(Value::Null, |e| Value::Str(e.into())),
        ),
        (
            "result",
            row.outcome.result().map_or(Value::Null, cmp_result_to_json),
        ),
    ])
}

/// Submit epilogue.
pub fn resp_done(submitted: usize, unique: usize, failed: usize) -> Value {
    obj(vec![
        ("event", Value::Str("done".into())),
        (
            "summary",
            obj(vec![
                ("submitted", Value::Int(submitted as u64)),
                ("unique", Value::Int(unique as u64)),
                ("failed", Value::Int(failed as u64)),
            ]),
        ),
    ])
}

/// `status` response. The `store` object is present only when the
/// daemon's harness has a disk store; clients must tolerate its
/// absence (older daemons never send it).
pub fn resp_status(st: &ServiceStatus) -> Value {
    let mut fields = vec![
        ("event", Value::Str("status".into())),
        ("queued", Value::Int(st.queued as u64)),
        ("running", Value::Int(st.running as u64)),
        ("clients", Value::Int(st.clients as u64)),
        ("completed", Value::Int(st.completed)),
        ("depth", Value::Int(st.depth as u64)),
        ("warm_streams", Value::Int(st.warm_streams as u64)),
    ];
    if let Some(fp) = &st.store {
        fields.push(("store", footprint_to_json(fp)));
    }
    obj(fields)
}

/// Encodes a store footprint as the status line's `store` object.
pub fn footprint_to_json(fp: &StoreFootprint) -> Value {
    let class = |c: &StoreClassFootprint| {
        obj(vec![
            ("files", Value::Int(c.files)),
            ("bytes", Value::Int(c.bytes)),
            ("segments", Value::Int(c.segments)),
            ("corrupt", Value::Int(c.corrupt)),
            ("quarantined_bytes", Value::Int(c.quarantined_bytes)),
        ])
    };
    obj(vec![
        ("results", class(&fp.results)),
        ("preres", class(&fp.preres)),
        ("traces", class(&fp.traces)),
        ("total_bytes", Value::Int(fp.total_bytes())),
        ("quarantined_bytes", Value::Int(fp.quarantined_bytes())),
    ])
}

/// Decodes a status line's `store` object; `None` if any field is
/// missing or mistyped (treated as "daemon reported no footprint").
pub fn footprint_from_json(v: &Value) -> Option<StoreFootprint> {
    let class = |key: &str| -> Option<StoreClassFootprint> {
        let c = v.get(key)?;
        let n = |f: &str| c.get(f).and_then(Value::as_u64);
        Some(StoreClassFootprint {
            files: n("files")?,
            bytes: n("bytes")?,
            segments: n("segments")?,
            corrupt: n("corrupt")?,
            // Absent-tolerant: daemons predating the field report no
            // quarantine byte accounting, not a malformed footprint.
            quarantined_bytes: n("quarantined_bytes").unwrap_or(0),
        })
    };
    Some(StoreFootprint {
        results: class("results")?,
        preres: class("preres")?,
        traces: class("traces")?,
    })
}

/// Decodes a `cell` line back into a [`ResultRow`].
///
/// # Errors
///
/// A missing or mistyped field.
pub fn parse_cell(v: &Value) -> Result<ResultRow, String> {
    let s = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("cell missing {key:?}"))
    };
    let id = u64::from_str_radix(&s("id")?, 16).map_err(|e| format!("bad cell id: {e}"))?;
    let outcome = match s("outcome")?.as_str() {
        "ok" => {
            let result = v.get("result").ok_or("ok cell missing result")?;
            JobOutcome::Ok(result_from_json(result).ok_or("undecodable cell result")?)
        }
        "failed" => JobOutcome::Failed {
            reason: s("error")?,
        },
        other => return Err(format!("unknown cell outcome {other:?}")),
    };
    Ok(ResultRow {
        id: JobId(id),
        workload: s("workload")?,
        prefetcher: s("prefetcher")?,
        outcome,
    })
}

/// Decodes a `cmp_cell` line back into a [`CmpResultRow`].
///
/// # Errors
///
/// A missing or mistyped field.
pub fn parse_cmp_cell(v: &Value) -> Result<CmpResultRow, String> {
    let s = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("cmp_cell missing {key:?}"))
    };
    let id = u64::from_str_radix(&s("id")?, 16).map_err(|e| format!("bad cmp_cell id: {e}"))?;
    let cores = v
        .get("cores")
        .and_then(Value::as_u64)
        .ok_or("cmp_cell missing \"cores\"")?;
    let outcome = match s("outcome")?.as_str() {
        "ok" => {
            let result = v.get("result").ok_or("ok cmp_cell missing result")?;
            CmpOutcome::Ok(cmp_result_from_json(result).ok_or("undecodable cmp_cell result")?)
        }
        "failed" => CmpOutcome::Failed {
            reason: s("error")?,
        },
        other => return Err(format!("unknown cmp_cell outcome {other:?}")),
    };
    Ok(CmpResultRow {
        id: JobId(id),
        cell: s("cell")?,
        prefetcher: s("prefetcher")?,
        cores,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An owned writer the test can read back after the `Conn` is gone.
    #[derive(Clone, Default)]
    struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, b: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn framing_round_trips_multiple_lines() {
        let sink = Shared::default();
        {
            let mut c = Conn::new(Box::new(io::empty()), Box::new(sink.clone()));
            c.send(&resp_accepted(6, 4)).unwrap();
            c.send(&resp_done(6, 4, 0)).unwrap();
        }
        let buf = sink.0.lock().unwrap().clone();
        let mut c = Conn::new(Box::new(io::Cursor::new(buf)), Box::new(io::sink()));
        let a = c.recv().unwrap().unwrap();
        assert_eq!(a.get("event").unwrap().as_str(), Some("accepted"));
        assert_eq!(a.get("jobs").unwrap().as_u64(), Some(6));
        let d = c.recv().unwrap().unwrap();
        assert_eq!(d.get("event").unwrap().as_str(), Some("done"));
        assert!(c.recv().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn garbage_line_is_invalid_data_not_a_hang() {
        let mut c = Conn::new(
            Box::new(io::Cursor::new(b"{nope\n".to_vec())),
            Box::new(io::sink()),
        );
        let err = c.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn status_store_footprint_is_absent_tolerant_and_round_trips() {
        let bare = ServiceStatus {
            queued: 1,
            running: 2,
            clients: 1,
            completed: 9,
            depth: 64,
            warm_streams: 3,
            store: None,
        };
        let v = json::parse(&resp_status(&bare).to_json()).unwrap();
        assert!(v.get("store").is_none(), "storeless daemon sends no store");
        assert!(footprint_from_json(&Value::Obj(vec![])).is_none());

        let fp = StoreFootprint {
            results: StoreClassFootprint {
                files: 12,
                bytes: 34_567,
                segments: 0,
                corrupt: 1,
                quarantined_bytes: 4_096,
            },
            preres: StoreClassFootprint {
                files: 3,
                bytes: 1 << 20,
                segments: 17,
                corrupt: 0,
                quarantined_bytes: 0,
            },
            traces: StoreClassFootprint {
                files: 2,
                bytes: 1 << 22,
                segments: 40,
                corrupt: 0,
                quarantined_bytes: 0,
            },
        };
        let with = ServiceStatus {
            store: Some(fp),
            ..bare
        };
        let v = json::parse(&resp_status(&with).to_json()).unwrap();
        let back = v.get("store").and_then(footprint_from_json).unwrap();
        assert_eq!(back, fp);
        assert_eq!(
            v.get("store").unwrap().get("total_bytes").unwrap().as_u64(),
            Some(fp.total_bytes())
        );
        assert_eq!(
            v.get("store")
                .unwrap()
                .get("quarantined_bytes")
                .unwrap()
                .as_u64(),
            Some(4_096)
        );

        // A daemon predating quarantine byte accounting omits the
        // per-class field; the decode treats that as zero, not as a
        // malformed footprint.
        let mut text = resp_status(&with).to_json();
        text = text.replace(",\"quarantined_bytes\":4096", "");
        let v = json::parse(&text).unwrap();
        let back = v.get("store").and_then(footprint_from_json).unwrap();
        assert_eq!(back.results.quarantined_bytes, 0);
        assert_eq!(back.preres, fp.preres);
    }

    #[test]
    fn cell_round_trips_ok_and_failed() {
        use ebcp_sim::SimResult;
        let ok = ResultRow {
            id: JobId(0xabcd_0123_4567_89ef),
            workload: "database".into(),
            prefetcher: "ebcp".into(),
            outcome: JobOutcome::Ok(SimResult {
                insts: u64::MAX,
                ..SimResult::default()
            }),
        };
        let failed = ResultRow {
            id: JobId(7),
            workload: "tpcw".into(),
            prefetcher: "fault".into(),
            outcome: JobOutcome::Failed {
                reason: "injected".into(),
            },
        };
        for row in [&ok, &failed] {
            let text = resp_cell(row).to_json();
            let back = parse_cell(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.id, row.id);
            assert_eq!(back.workload, row.workload);
            assert_eq!(back.outcome, row.outcome);
        }
    }

    #[test]
    fn cmp_cell_round_trips_ok_and_failed() {
        use ebcp_sim::{CmpResult, SimResult};
        let ok = CmpResultRow {
            id: JobId(0x0123_4567_89ab_cdef),
            cell: "database-mix".into(),
            prefetcher: "ebcp".into(),
            cores: 4,
            outcome: CmpOutcome::Ok(CmpResult {
                cores: vec![
                    SimResult {
                        insts: 1000,
                        ..SimResult::default()
                    };
                    4
                ],
                aggregate: SimResult {
                    insts: 4000,
                    ..SimResult::default()
                },
            }),
        };
        let failed = CmpResultRow {
            id: JobId(9),
            cell: "tpcw-mix".into(),
            prefetcher: "fault".into(),
            cores: 2,
            outcome: CmpOutcome::Failed {
                reason: "injected".into(),
            },
        };
        for row in [&ok, &failed] {
            let text = resp_cmp_cell(row).to_json();
            let back = parse_cmp_cell(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.id, row.id);
            assert_eq!(back.cell, row.cell);
            assert_eq!(back.cores, row.cores);
            assert_eq!(back.outcome, row.outcome);
        }
        // A Retried outcome renders as "ok" and parses back as Ok —
        // whether a cell needed its second attempt is timing, not
        // result.
        let retried = CmpResultRow {
            outcome: CmpOutcome::Retried(ok.outcome.result().unwrap().clone()),
            ..ok.clone()
        };
        let back =
            parse_cmp_cell(&json::parse(&resp_cmp_cell(&retried).to_json()).unwrap()).unwrap();
        assert_eq!(back.outcome, ok.outcome);
    }
}
