//! The stream prefetcher baseline.
//!
//! §5.3: "capable of tracking up to 32 streams and handles positive,
//! negative and non-unit strides. On the detection and confirmation of a
//! stream, it issues 6 prefetch requests and then attempts to keep 6
//! strides ahead of the request stream." It targets load misses only and
//! needs almost no storage — which is exactly why it cannot cope with the
//! irregular access patterns of commercial workloads.

use ebcp_types::{AccessKind, LineAddr};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// Stream prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Simultaneously tracked streams.
    pub trackers: usize,
    /// Prefetches issued on confirmation, and the distance maintained.
    pub degree: usize,
    /// Maximum |stride| (in lines) considered a stream candidate.
    pub max_stride: i64,
    /// Misses with a consistent stride required to confirm a stream.
    pub confirmations: u8,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            trackers: 32,
            degree: 6,
            max_stride: 64,
            confirmations: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Tracker {
    last: LineAddr,
    stride: i64,
    confirmations: u8,
    streaming: bool,
    /// Next line to prefetch once streaming (keeps `degree` ahead).
    frontier: LineAddr,
    lru: u64,
    valid: bool,
}

/// The 32-stream, non-unit-stride stream prefetcher.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{Action, MissInfo, Prefetcher, StreamConfig, StreamPrefetcher};
/// use ebcp_types::{AccessKind, LineAddr, Pc};
///
/// let mut p = StreamPrefetcher::new(StreamConfig::default());
/// let mut out = Vec::new();
/// for i in 0..3 {
///     out.clear();
///     p.on_miss(
///         &MissInfo {
///             line: LineAddr::from_index(100 + i * 2), // stride-2 stream
///             pc: Pc::new(0),
///             kind: AccessKind::Load,
///             epoch_trigger: true,
///             now: i * 1000,
///             core: 0,
///         },
///         &mut out,
///     );
/// }
/// assert_eq!(out.len(), 6, "confirmed stream issues 6 prefetches");
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    config: StreamConfig,
    trackers: Vec<Tracker>,
    stamp: u64,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher.
    pub fn new(config: StreamConfig) -> Self {
        StreamPrefetcher {
            config,
            trackers: vec![
                Tracker {
                    last: LineAddr::from_index(0),
                    stride: 0,
                    confirmations: 0,
                    streaming: false,
                    frontier: LineAddr::from_index(0),
                    lru: 0,
                    valid: false,
                };
                config.trackers
            ],
            stamp: 0,
        }
    }

    /// Number of trackers currently in the streaming state.
    pub fn active_streams(&self) -> usize {
        self.trackers
            .iter()
            .filter(|t| t.valid && t.streaming)
            .count()
    }

    fn handle_line(&mut self, line: LineAddr, out: &mut Vec<Action>) {
        self.stamp += 1;
        let cfg = self.config;
        // 1. Look for a tracker this miss extends.
        let mut best: Option<usize> = None;
        for (i, t) in self.trackers.iter().enumerate() {
            if !t.valid {
                continue;
            }
            let delta = line.delta_from(t.last);
            if delta == 0 {
                return; // repeat access to the same line; ignore
            }
            if t.confirmations > 0 || t.streaming {
                // Established direction: must match the stride.
                if delta == t.stride {
                    best = Some(i);
                    break;
                }
            } else if delta.abs() <= cfg.max_stride {
                // Fresh tracker: this sets the candidate stride.
                best = Some(i);
                break;
            }
        }
        if let Some(i) = best {
            let t = &mut self.trackers[i];
            let delta = line.delta_from(t.last);
            t.lru = self.stamp;
            if t.streaming {
                t.last = line;
                // Keep `degree` strides ahead: advance the frontier.
                let target = line.offset(t.stride * cfg.degree as i64);
                while t.frontier.delta_from(target) * t.stride.signum() < 0 {
                    t.frontier = t.frontier.offset(t.stride);
                    out.push(Action::Prefetch {
                        line: t.frontier,
                        origin: 0,
                    });
                }
            } else {
                t.stride = delta;
                t.confirmations += 1;
                t.last = line;
                if t.confirmations >= cfg.confirmations {
                    t.streaming = true;
                    // Burst: issue `degree` prefetches ahead.
                    for k in 1..=cfg.degree as i64 {
                        out.push(Action::Prefetch {
                            line: line.offset(t.stride * k),
                            origin: 0,
                        });
                    }
                    t.frontier = line.offset(t.stride * cfg.degree as i64);
                }
            }
            return;
        }
        // 2. No tracker matched: allocate over the LRU tracker.
        let victim = self
            .trackers
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| if t.valid { t.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one tracker");
        self.trackers[victim] = Tracker {
            last: line,
            stride: 0,
            confirmations: 0,
            streaming: false,
            frontier: line,
            lru: self.stamp,
            valid: true,
        };
    }
}

impl Prefetcher for StreamPrefetcher {
    fn name(&self) -> &str {
        "stream"
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return; // load misses only (§5.3)
        }
        self.handle_line(info.line, out);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return;
        }
        // A buffer hit is part of the request stream: keep streaming.
        self.handle_line(info.line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::Pc;

    fn miss(line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(0),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    fn drive(p: &mut StreamPrefetcher, lines: &[u64]) -> Vec<LineAddr> {
        let mut all = Vec::new();
        for &l in lines {
            let mut out = Vec::new();
            p.on_miss(&miss(l), &mut out);
            for a in out {
                if let Action::Prefetch { line, .. } = a {
                    all.push(line);
                }
            }
        }
        all
    }

    #[test]
    fn unit_stride_confirmed_and_burst() {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        let pf = drive(&mut p, &[100, 101, 102]);
        assert_eq!(
            pf,
            (103..=108).map(LineAddr::from_index).collect::<Vec<_>>(),
            "6 ahead after confirmation"
        );
        assert_eq!(p.active_streams(), 1);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        let pf = drive(&mut p, &[200, 198, 196]);
        assert_eq!(pf.first(), Some(&LineAddr::from_index(194)));
        assert_eq!(pf.len(), 6);
        assert_eq!(pf.last(), Some(&LineAddr::from_index(184)));
    }

    #[test]
    fn non_unit_stride_supported() {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        let pf = drive(&mut p, &[10, 17, 24]);
        assert_eq!(pf.first(), Some(&LineAddr::from_index(31)));
    }

    #[test]
    fn steady_state_keeps_degree_ahead() {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        let mut pf = drive(&mut p, &[100, 101, 102]);
        pf.extend(drive(&mut p, &[103]));
        // After the 103 miss the frontier advances to 109.
        assert_eq!(pf.last(), Some(&LineAddr::from_index(109)));
        assert_eq!(pf.len(), 7);
    }

    #[test]
    fn random_addresses_never_stream() {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        // Deltas beyond max_stride: every miss allocates a fresh tracker.
        let pf = drive(&mut p, &[1000, 5000, 90_000, 200_000, 7, 123_456]);
        assert!(pf.is_empty());
        assert_eq!(p.active_streams(), 0);
    }

    #[test]
    fn instruction_misses_ignored() {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        let mut out = Vec::new();
        for i in 0..4 {
            p.on_miss(
                &MissInfo {
                    line: LineAddr::from_index(100 + i),
                    pc: Pc::new(0),
                    kind: AccessKind::InstrFetch,
                    epoch_trigger: true,
                    now: 0,
                    core: 0,
                },
                &mut out,
            );
        }
        assert!(out.is_empty(), "stream prefetcher targets load misses only");
    }

    #[test]
    fn tracker_capacity_is_bounded() {
        let cfg = StreamConfig {
            trackers: 4,
            ..StreamConfig::default()
        };
        let mut p = StreamPrefetcher::new(cfg);
        // 8 interleaved streams with only 4 trackers: the first four get
        // evicted before confirming.
        let mut lines = Vec::new();
        for step in 0..3u64 {
            for s in 0..8u64 {
                lines.push(s * 1_000_000 + step);
            }
        }
        let pf = drive(&mut p, &lines);
        // With thrashing, far fewer than 8 streams confirm.
        assert!(p.active_streams() <= 4);
        // Some prefetches may still be issued by surviving trackers.
        let _ = pf;
    }

    #[test]
    fn prefetch_hits_advance_stream() {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        drive(&mut p, &[100, 101, 102]);
        let mut out = Vec::new();
        p.on_prefetch_hit(
            &PrefetchHitInfo {
                line: LineAddr::from_index(103),
                pc: Pc::new(0),
                kind: AccessKind::Load,
                origin: 0,
                would_be_trigger: true,
                now: 0,
                core: 0,
            },
            &mut out,
        );
        assert_eq!(
            out,
            vec![Action::Prefetch {
                line: LineAddr::from_index(109),
                origin: 0
            }]
        );
    }
}
