//! The Spatial Memory Streaming baseline (Somogyi et al., ISCA 2006).
//!
//! SMS learns, per *trigger* (the PC and region-offset of the first
//! access to a 2 KB spatial region), the bit pattern of lines the program
//! goes on to touch in that region, and replays the whole pattern as
//! prefetches the next time the same trigger recurs — even for a region
//! it has never seen. Configuration per §5.3: 2 KB regions, a combined
//! 128-entry filter/accumulation table, and a 16-way 16K-entry PHT
//! (≈128 KB on-chip). Up to 32 prefetches (the whole region) per PHT
//! match; data accesses only — SMS cannot help instruction misses, which
//! is why it falls behind on TPC-W and SPECjAppServer2004 (§5.3).

use ebcp_types::{AccessKind, LineAddr, Pc};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// SMS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmsConfig {
    /// Region size in lines (2 KB / 64 B = 32).
    pub region_lines: u64,
    /// Combined filter/accumulation table entries.
    pub at_entries: usize,
    /// PHT entries (total; organised as `pht_entries / pht_ways` sets).
    pub pht_entries: usize,
    /// PHT associativity.
    pub pht_ways: usize,
}

impl Default for SmsConfig {
    fn default() -> Self {
        SmsConfig {
            region_lines: 32,
            at_entries: 128,
            pht_entries: 16 << 10,
            pht_ways: 16,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct AtEntry {
    region: u64,
    trigger_key: u64,
    pattern: u32,
    lru: u64,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct PhtEntry {
    key: u64,
    pattern: u32,
    lru: u64,
    valid: bool,
}

/// The spatial memory streaming prefetcher.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{Prefetcher, SmsConfig, SmsPrefetcher};
/// let p = SmsPrefetcher::new(SmsConfig::default());
/// assert_eq!(p.name(), "sms");
/// ```
#[derive(Debug, Clone)]
pub struct SmsPrefetcher {
    config: SmsConfig,
    at: Vec<AtEntry>,
    pht: Vec<PhtEntry>,
    stamp: u64,
}

impl SmsPrefetcher {
    /// Creates an SMS prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `region_lines > 32` (patterns are
    /// 32-bit), or the PHT geometry is inconsistent.
    pub fn new(config: SmsConfig) -> Self {
        assert!(config.region_lines > 0 && config.region_lines <= 32);
        assert!(config.at_entries > 0);
        assert!(config.pht_ways > 0 && config.pht_entries.is_multiple_of(config.pht_ways));
        SmsPrefetcher {
            config,
            at: vec![
                AtEntry {
                    region: 0,
                    trigger_key: 0,
                    pattern: 0,
                    lru: 0,
                    valid: false
                };
                config.at_entries
            ],
            pht: vec![PhtEntry::default(); config.pht_entries],
            stamp: 0,
        }
    }

    fn trigger_key(pc: Pc, offset: u64) -> u64 {
        pc.get().wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(11) ^ offset
    }

    fn pht_sets(&self) -> usize {
        self.config.pht_entries / self.config.pht_ways
    }

    fn pht_lookup(&mut self, key: u64) -> Option<u32> {
        let set = (key % self.pht_sets() as u64) as usize;
        let base = set * self.config.pht_ways;
        self.stamp += 1;
        for i in base..base + self.config.pht_ways {
            if self.pht[i].valid && self.pht[i].key == key {
                self.pht[i].lru = self.stamp;
                return Some(self.pht[i].pattern);
            }
        }
        None
    }

    fn pht_commit(&mut self, key: u64, pattern: u32) {
        // Patterns with a single bit carry no spatial information.
        if pattern.count_ones() < 2 {
            return;
        }
        let set = (key % self.pht_sets() as u64) as usize;
        let base = set * self.config.pht_ways;
        self.stamp += 1;
        for i in base..base + self.config.pht_ways {
            if self.pht[i].valid && self.pht[i].key == key {
                self.pht[i].pattern = pattern;
                self.pht[i].lru = self.stamp;
                return;
            }
        }
        let victim = (base..base + self.config.pht_ways)
            .min_by_key(|&i| {
                if self.pht[i].valid {
                    self.pht[i].lru
                } else {
                    0
                }
            })
            .expect("nonempty set");
        self.pht[victim] = PhtEntry {
            key,
            pattern,
            lru: self.stamp,
            valid: true,
        };
    }

    fn handle(&mut self, pc: Pc, line: LineAddr, out: &mut Vec<Action>) {
        let region = line.index() / self.config.region_lines;
        let offset = line.index() % self.config.region_lines;
        self.stamp += 1;
        // Already tracking this region: accumulate.
        if let Some(e) = self.at.iter_mut().find(|e| e.valid && e.region == region) {
            e.pattern |= 1 << offset;
            e.lru = self.stamp;
            return;
        }
        // New region generation: evict the LRU tracker, committing its
        // accumulated pattern to the PHT.
        let victim = self
            .at
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one AT entry");
        if self.at[victim].valid {
            let (k, p) = (self.at[victim].trigger_key, self.at[victim].pattern);
            self.pht_commit(k, p);
        }
        let key = Self::trigger_key(pc, offset);
        self.at[victim] = AtEntry {
            region,
            trigger_key: key,
            pattern: 1 << offset,
            lru: self.stamp,
            valid: true,
        };
        // Predict: replay the learned footprint for this trigger.
        if let Some(pattern) = self.pht_lookup(key) {
            let base = region * self.config.region_lines;
            for bit in 0..self.config.region_lines {
                if bit != offset && pattern & (1 << bit) != 0 {
                    out.push(Action::Prefetch {
                        line: LineAddr::from_index(base + bit),
                        origin: 0,
                    });
                }
            }
        }
    }

    /// Flushes all active generations into the PHT (end of simulation or
    /// a convenient test hook).
    pub fn flush_generations(&mut self) {
        for i in 0..self.at.len() {
            if self.at[i].valid {
                let (k, p) = (self.at[i].trigger_key, self.at[i].pattern);
                self.pht_commit(k, p);
                self.at[i].valid = false;
            }
        }
    }
}

impl Prefetcher for SmsPrefetcher {
    fn name(&self) -> &str {
        "sms"
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return; // data only (§5.3)
        }
        self.handle(info.pc, info.line, out);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return;
        }
        self.handle(info.pc, info.line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(pc: u64, line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(pc),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    fn drive(p: &mut SmsPrefetcher, seq: &[(u64, u64)]) -> Vec<u64> {
        let mut pf = Vec::new();
        for &(pc, l) in seq {
            let mut out = Vec::new();
            p.on_miss(&miss(pc, l), &mut out);
            pf.extend(out.iter().filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            }));
        }
        pf
    }

    #[test]
    fn footprint_replayed_on_new_region() {
        let mut p = SmsPrefetcher::new(SmsConfig {
            at_entries: 1,
            ..SmsConfig::default()
        });
        // Generation 1: PC 0x40 triggers region 0 at offset 3; the
        // program then touches offsets 7 and 12.
        drive(&mut p, &[(0x40, 3), (0x99, 7), (0x99, 12)]);
        // A different region evicts the generation (AT is 1 entry),
        // committing the pattern {3,7,12} under trigger (0x40, 3).
        // Generation 2: the same trigger on a brand-new region 10.
        let pf = drive(&mut p, &[(0x40, 320 + 3)]);
        assert_eq!(
            pf,
            vec![320 + 7, 320 + 12],
            "footprint replayed at new base"
        );
    }

    #[test]
    fn single_line_patterns_not_committed() {
        let mut p = SmsPrefetcher::new(SmsConfig {
            at_entries: 1,
            ..SmsConfig::default()
        });
        drive(&mut p, &[(0x40, 3)]); // lone access to region 0
        let pf = drive(&mut p, &[(0x40, 320 + 3)]);
        assert!(pf.is_empty(), "no spatial info in a 1-line generation");
    }

    #[test]
    fn trigger_offset_matters() {
        let mut p = SmsPrefetcher::new(SmsConfig {
            at_entries: 1,
            ..SmsConfig::default()
        });
        drive(&mut p, &[(0x40, 3), (0x99, 7)]);
        // Same PC but different trigger offset: different PHT key.
        let pf = drive(&mut p, &[(0x40, 320 + 5)]);
        assert!(pf.is_empty());
    }

    #[test]
    fn accumulation_does_not_predict() {
        let mut p = SmsPrefetcher::new(SmsConfig::default());
        let pf = drive(&mut p, &[(0x40, 3), (0x40, 7), (0x40, 12)]);
        assert!(pf.is_empty(), "in-generation accesses only accumulate");
    }

    #[test]
    fn instruction_misses_ignored() {
        let mut p = SmsPrefetcher::new(SmsConfig::default());
        let mut out = Vec::new();
        p.on_miss(
            &MissInfo {
                line: LineAddr::from_index(3),
                pc: Pc::new(0x40),
                kind: AccessKind::InstrFetch,
                epoch_trigger: true,
                now: 0,
                core: 0,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn flush_commits_active_generations() {
        let mut p = SmsPrefetcher::new(SmsConfig::default());
        drive(&mut p, &[(0x40, 3), (0x99, 7)]);
        p.flush_generations();
        let pf = drive(&mut p, &[(0x40, 640 + 3)]);
        assert_eq!(pf, vec![640 + 7]);
    }

    #[test]
    fn whole_region_can_be_prefetched() {
        let mut p = SmsPrefetcher::new(SmsConfig {
            at_entries: 1,
            ..SmsConfig::default()
        });
        // Touch every line of region 0.
        let seq: Vec<(u64, u64)> = (0..32).map(|o| (0x40, o)).collect();
        drive(&mut p, &seq);
        let pf = drive(&mut p, &[(0x40, 320)]);
        assert_eq!(pf.len(), 31, "all other 31 lines prefetched");
    }

    #[test]
    fn pattern_updates_on_recommit() {
        let mut p = SmsPrefetcher::new(SmsConfig {
            at_entries: 1,
            ..SmsConfig::default()
        });
        drive(&mut p, &[(0x40, 3), (0x99, 7)]);
        // New generation, same trigger, different footprint.
        drive(&mut p, &[(0x40, 320 + 3), (0x99, 320 + 9)]);
        // Commit it by starting yet another generation.
        let pf = drive(&mut p, &[(0x40, 640 + 3)]);
        assert_eq!(pf, vec![640 + 9], "latest footprint wins");
    }
}
