//! A direct-mapped predictor table resident in (simulated) main memory.
//!
//! Both the EBCP correlation table (§3.4.2) and Solihin's memory-side
//! table store entries in main memory: the *timing* of reads and writes
//! is modelled by the engine via [`Action::TableRead`] /
//! [`Action::TableWrite`]; the *contents* live here, in a sparse host map
//! that reproduces direct-mapped aliasing exactly (same index + different
//! tag ⇒ the old entry is overwritten).
//!
//! [`Action::TableRead`]: crate::Action::TableRead
//! [`Action::TableWrite`]: crate::Action::TableWrite

use ebcp_types::{FxHashMap, LineAddr};

/// A direct-mapped, tag-checked table keyed by line address.
///
/// `E` is the entry payload. The table has `entries` slots; a key maps to
/// slot `hash(key) % entries` and carries the full key as its tag, so
/// aliasing behaves exactly like real direct-mapped storage while the
/// host only allocates slots that have been touched.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::MainMemoryTable;
/// use ebcp_types::LineAddr;
///
/// let mut t: MainMemoryTable<u32> = MainMemoryTable::new(1024);
/// let key = LineAddr::from_index(0xabc);
/// assert!(t.get(key).is_none());
/// t.put(key, 7);
/// assert_eq!(t.get(key), Some(&7));
/// ```
#[derive(Debug, Clone)]
pub struct MainMemoryTable<E> {
    entries: u64,
    slots: FxHashMap<u64, (LineAddr, E)>,
    hits: u64,
    misses: u64,
    conflicts: u64,
}

impl<E> MainMemoryTable<E> {
    /// Creates a table with `entries` direct-mapped slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u64) -> Self {
        assert!(entries > 0, "table needs at least one entry");
        MainMemoryTable {
            entries,
            slots: FxHashMap::default(),
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }

    /// Number of direct-mapped slots.
    pub const fn entries(&self) -> u64 {
        self.entries
    }

    /// The slot index a key maps to. A multiplicative hash spreads line
    /// addresses across slots (line addresses are highly structured;
    /// plain modulo would alias entire pools together).
    pub fn index_of(&self, key: LineAddr) -> u64 {
        (key.index().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % self.entries
    }

    /// Tag-checked lookup.
    pub fn get(&mut self, key: LineAddr) -> Option<&E> {
        let idx = self.index_of(key);
        match self.slots.get(&idx) {
            Some((tag, e)) if *tag == key => {
                self.hits += 1;
                Some(e)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Tag-checked lookup without stats side effects.
    pub fn peek(&self, key: LineAddr) -> Option<&E> {
        let idx = self.index_of(key);
        match self.slots.get(&idx) {
            Some((tag, e)) if *tag == key => Some(e),
            _ => None,
        }
    }

    /// Mutable tag-checked lookup.
    pub fn get_mut(&mut self, key: LineAddr) -> Option<&mut E> {
        let idx = self.index_of(key);
        match self.slots.get_mut(&idx) {
            Some((tag, e)) if *tag == key => Some(e),
            _ => None,
        }
    }

    /// Inserts or overwrites the slot `key` maps to (direct-mapped
    /// aliasing: a different key at the same slot is displaced).
    pub fn put(&mut self, key: LineAddr, entry: E) {
        let idx = self.index_of(key);
        if let Some((tag, _)) = self.slots.get(&idx) {
            if *tag != key {
                self.conflicts += 1;
            }
        }
        self.slots.insert(idx, (key, entry));
    }

    /// Updates the entry for `key` in place, or inserts `default()` first.
    pub fn update_or_insert<F, D>(&mut self, key: LineAddr, default: D, f: F)
    where
        F: FnOnce(&mut E),
        D: FnOnce() -> E,
    {
        let idx = self.index_of(key);
        match self.slots.get_mut(&idx) {
            Some((tag, e)) if *tag == key => f(e),
            _ => {
                let mut e = default();
                f(&mut e);
                self.put(key, e);
            }
        }
    }

    /// Slots currently allocated in the host map.
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Tag-matching lookups.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found no matching tag.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Insertions that displaced a different key (direct-mapped aliasing).
    pub const fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Clears all contents (the OS reclaimed the region, §3.4.1).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip() {
        let mut t: MainMemoryTable<u32> = MainMemoryTable::new(16);
        let k = LineAddr::from_index(42);
        assert!(t.get(k).is_none());
        t.put(k, 9);
        assert_eq!(t.get(k), Some(&9));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn direct_mapped_aliasing_displaces() {
        let mut t: MainMemoryTable<u32> = MainMemoryTable::new(1); // everything aliases
        let a = LineAddr::from_index(1);
        let b = LineAddr::from_index(2);
        t.put(a, 1);
        t.put(b, 2);
        assert!(t.get(a).is_none(), "a displaced by b");
        assert_eq!(t.get(b), Some(&2));
        assert_eq!(t.conflicts(), 1);
    }

    #[test]
    fn update_or_insert_both_paths() {
        let mut t: MainMemoryTable<Vec<u32>> = MainMemoryTable::new(8);
        let k = LineAddr::from_index(5);
        t.update_or_insert(k, Vec::new, |v| v.push(1));
        t.update_or_insert(k, Vec::new, |v| v.push(2));
        assert_eq!(t.peek(k), Some(&vec![1, 2]));
    }

    #[test]
    fn index_spreads_structured_addresses() {
        let t: MainMemoryTable<()> = MainMemoryTable::new(1 << 16);
        let mut idxs = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            idxs.insert(t.index_of(LineAddr::from_index(0x8000_0000 + i)));
        }
        // Sequential lines must not collapse onto few slots.
        assert!(idxs.len() > 9_000, "only {} distinct slots", idxs.len());
    }

    #[test]
    fn clear_empties_table() {
        let mut t: MainMemoryTable<u32> = MainMemoryTable::new(8);
        t.put(LineAddr::from_index(1), 1);
        t.clear();
        assert_eq!(t.occupancy(), 0);
        assert!(t.get(LineAddr::from_index(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _: MainMemoryTable<u32> = MainMemoryTable::new(0);
    }

    #[test]
    fn smaller_table_conflicts_more() {
        let keys: Vec<LineAddr> = (0..2000).map(|i| LineAddr::from_index(i * 7 + 3)).collect();
        let mut small: MainMemoryTable<u64> = MainMemoryTable::new(256);
        let mut large: MainMemoryTable<u64> = MainMemoryTable::new(1 << 20);
        for (n, &k) in keys.iter().enumerate() {
            small.put(k, n as u64);
            large.put(k, n as u64);
        }
        let small_live = keys.iter().filter(|&&k| small.peek(k).is_some()).count();
        let large_live = keys.iter().filter(|&&k| large.peek(k).is_some()).count();
        assert!(
            small_live < large_live,
            "small={small_live} large={large_live}"
        );
        assert!(large_live > 1990);
    }
}
