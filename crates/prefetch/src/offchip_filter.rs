//! Perceptron-style off-chip prediction as a composable prefetch
//! filter (after the off-chip-predictor line of work, arXiv:2403.15181
//! style: hashed-feature weight tables, integer arithmetic only).
//!
//! The predictor answers one question per candidate prefetch: *is this
//! line likely to be needed off-chip?* A prefetch for a line the
//! hierarchy would have served on-chip anyway is pure bandwidth waste,
//! so the filter wraps any inner [`Prefetcher`], forwards every engine
//! hook to it unchanged, and drops the inner `Prefetch` actions whose
//! hashed-feature perceptron sum falls below a confidence threshold.
//! `TableRead`/`TableWrite` actions and all callback hooks pass
//! through untouched, so an inner EBCP keeps its main-memory-table
//! timing and its origin-token credit assignment.
//!
//! Training is online and label-delayed: every filtered decision is
//! remembered in a small ring keyed by line. A later demand miss or
//! prefetch-buffer hit on a remembered line proves the line *was*
//! needed off-chip (a dropped prediction was a false negative; an
//! allowed one is reinforced). A remembered line that ages out of the
//! ring untouched is taken as on-chip (the prefetch would have been
//! waste) and trained down. Weights are saturating `i16`s; features
//! are FNV-style hashes of the trigger PC, the candidate line, its
//! page, and the PC⊕line cross — no floating point anywhere on the
//! hot path, and fully deterministic for lockstep replay.

use ebcp_types::{Cycle, Pc};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// Hashed-feature weight tables.
const FEATURES: usize = 4;

/// Off-chip filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffchipFilterConfig {
    /// log2 of each feature table's entry count.
    pub table_bits: u32,
    /// Drop a candidate when its summed weights fall below this.
    pub drop_threshold: i32,
    /// Keep training while `|sum|` is below this margin.
    pub train_margin: i32,
    /// Remembered filtered decisions (ring capacity; power of two).
    pub history: usize,
    /// Per-weight saturation bound.
    pub weight_cap: i16,
}

impl OffchipFilterConfig {
    /// Reference configuration: 4×4K-entry i16 tables (32 KB), a
    /// 256-deep decision ring, and a mildly permissive threshold (the
    /// filter must earn its drops).
    pub const fn default_config() -> Self {
        OffchipFilterConfig {
            table_bits: 12,
            drop_threshold: -8,
            train_margin: 16,
            history: 256,
            weight_cap: 63,
        }
    }
}

/// One remembered filtering decision, awaiting its delayed label.
#[derive(Debug, Clone, Copy, Default)]
struct Decision {
    line: u64,
    pc: u64,
    valid: bool,
}

/// A perceptron-style off-chip predictor wrapped around any inner
/// prefetcher. Built via [`OffchipFilter::wrap`]; named
/// `"<inner>+nof"` (neural off-chip filter).
pub struct OffchipFilter {
    config: OffchipFilterConfig,
    inner: Box<dyn Prefetcher>,
    weights: Vec<i16>,
    ring: Vec<Decision>,
    ring_head: usize,
    name: String,
    scratch: Vec<Action>,
}

impl std::fmt::Debug for OffchipFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffchipFilter")
            .field("name", &self.name)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

fn hash(x: u64, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl OffchipFilter {
    /// Wraps `inner` with the filter.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero or not a power of two, or
    /// `table_bits` is zero.
    pub fn wrap(config: OffchipFilterConfig, inner: Box<dyn Prefetcher>) -> Self {
        assert!(config.history.is_power_of_two() && config.history > 0);
        assert!(config.table_bits > 0 && config.table_bits <= 24);
        let name = format!("{}+nof", inner.name());
        OffchipFilter {
            config,
            inner,
            weights: vec![0i16; FEATURES << config.table_bits],
            ring: vec![Decision::default(); config.history],
            ring_head: 0,
            name,
            scratch: Vec::new(),
        }
    }

    /// The wrapped prefetcher (for end-of-run inspection).
    pub fn inner(&self) -> &dyn Prefetcher {
        self.inner.as_ref()
    }

    fn feature_indices(&self, pc: u64, line: u64) -> [usize; FEATURES] {
        let mask = (1usize << self.config.table_bits) - 1;
        let page = line >> 6;
        let raw = [pc, line, page, pc ^ line];
        let mut idx = [0usize; FEATURES];
        let mut i = 0;
        while i < FEATURES {
            idx[i] = (i << self.config.table_bits)
                | (hash(raw[i], (i as u64 + 1) * 0x9E37_79B9) as usize & mask);
            i += 1;
        }
        idx
    }

    fn sum(&self, idx: &[usize; FEATURES]) -> i32 {
        idx.iter().map(|&i| i32::from(self.weights[i])).sum()
    }

    fn train(&mut self, idx: &[usize; FEATURES], offchip: bool, sum: i32) {
        // Perceptron rule: adjust only on mispredictions or while the
        // margin is thin.
        let predicted_offchip = sum >= self.config.drop_threshold;
        if predicted_offchip == offchip && sum.abs() >= self.config.train_margin {
            return;
        }
        let cap = self.config.weight_cap;
        for &i in idx {
            let w = self.weights[i];
            self.weights[i] = if offchip {
                w.saturating_add(1).min(cap)
            } else {
                w.saturating_sub(1).max(-cap)
            };
        }
    }

    /// Remembers a decision, evicting (and negatively labelling) the
    /// ring slot it displaces: a decision that aged out untouched means
    /// the line never came back off-chip.
    fn remember(&mut self, line: u64, pc: u64) {
        let slot = self.ring_head & (self.config.history - 1);
        self.ring_head = self.ring_head.wrapping_add(1);
        let old = self.ring[slot];
        if old.valid {
            let idx = self.feature_indices(old.pc, old.line);
            let s = self.sum(&idx);
            self.train(&idx, false, s);
        }
        self.ring[slot] = Decision {
            line,
            pc,
            valid: true,
        };
    }

    /// Delayed positive label: `line` was demanded, so it *was* needed
    /// off-chip.
    fn label_offchip(&mut self, line: u64) {
        for slot in 0..self.ring.len() {
            let d = self.ring[slot];
            if d.valid && d.line == line {
                let idx = self.feature_indices(d.pc, d.line);
                let s = self.sum(&idx);
                self.train(&idx, true, s);
                self.ring[slot].valid = false;
            }
        }
    }

    /// Runs the inner hook accumulated in `self.scratch` through the
    /// filter into `out`.
    fn filter_actions(&mut self, trigger_pc: u64, out: &mut Vec<Action>) {
        let actions = std::mem::take(&mut self.scratch);
        for a in &actions {
            match *a {
                Action::Prefetch { line, origin } => {
                    let idx = self.feature_indices(trigger_pc, line.index());
                    let s = self.sum(&idx);
                    let allow = s >= self.config.drop_threshold;
                    self.remember(line.index(), trigger_pc);
                    if allow {
                        out.push(Action::Prefetch { line, origin });
                    }
                }
                other => out.push(other),
            }
        }
        self.scratch = actions;
        self.scratch.clear();
    }
}

impl Prefetcher for OffchipFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        // The missing line provably went off-chip: resolve any pending
        // decision labels for it before filtering new candidates.
        self.label_offchip(info.line.index());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.inner.on_miss(info, &mut scratch);
        self.scratch = scratch;
        self.filter_actions(info.pc.get(), out);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        // A buffer hit is a demand that would have gone off-chip.
        self.label_offchip(info.line.index());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.inner.on_prefetch_hit(info, &mut scratch);
        self.scratch = scratch;
        self.filter_actions(info.pc.get(), out);
    }

    fn on_epoch_end(&mut self, now: Cycle, out: &mut Vec<Action>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.inner.on_epoch_end(now, &mut scratch);
        self.scratch = scratch;
        // Epoch-end emissions have no triggering PC; use a fixed one.
        self.filter_actions(Pc::new(0).get(), out);
    }

    fn on_table_done(&mut self, token: u64, now: Cycle, out: &mut Vec<Action>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.inner.on_table_done(token, now, &mut scratch);
        self.scratch = scratch;
        self.filter_actions(Pc::new(0).get(), out);
    }

    fn on_table_dropped(&mut self, token: u64) {
        self.inner.on_table_dropped(token);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }

    fn reset_aux_stats(&mut self) {
        self.inner.reset_aux_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NullPrefetcher;
    use ebcp_types::{AccessKind, LineAddr};

    /// An inner prefetcher that always predicts `line + 1`.
    #[derive(Debug)]
    struct NextLine;

    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "next"
        }
        fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
            out.push(Action::Prefetch {
                line: info.line.next(),
                origin: 7,
            });
            out.push(Action::TableWrite);
        }
        fn on_prefetch_hit(&mut self, _info: &PrefetchHitInfo, _out: &mut Vec<Action>) {}
    }

    fn miss(pc: u64, line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(pc),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    #[test]
    fn name_is_inner_plus_suffix() {
        let f = OffchipFilter::wrap(
            OffchipFilterConfig::default_config(),
            Box::new(NullPrefetcher),
        );
        assert_eq!(f.name(), "none+nof");
        assert_eq!(f.inner().name(), "none");
    }

    #[test]
    fn zero_weights_allow_everything_through() {
        // Untrained filter: sum 0 >= drop_threshold (-8), so inner
        // predictions pass, including non-prefetch actions.
        let mut f = OffchipFilter::wrap(OffchipFilterConfig::default_config(), Box::new(NextLine));
        let mut out = Vec::new();
        f.on_miss(&miss(0x40, 100), &mut out);
        assert_eq!(
            out,
            vec![
                Action::Prefetch {
                    line: LineAddr::from_index(101),
                    origin: 7
                },
                Action::TableWrite
            ]
        );
    }

    #[test]
    fn aged_out_decisions_train_the_filter_down() {
        // A tiny ring and a low weight cap: lines that never come back
        // are labelled on-chip on eviction, so repeated prediction of
        // the same dead line is eventually dropped.
        let cfg = OffchipFilterConfig {
            history: 4,
            drop_threshold: 0,
            train_margin: 1,
            weight_cap: 8,
            ..OffchipFilterConfig::default_config()
        };
        let mut f = OffchipFilter::wrap(cfg, Box::new(NextLine));
        // Same trigger repeatedly; its prediction (line 101) is never
        // demanded, so each ring lap trains its features down by 4.
        let mut dropped_eventually = false;
        for _ in 0..64 {
            let mut out = Vec::new();
            f.on_miss(&miss(0x40, 100), &mut out);
            let has_pf = out.iter().any(|a| matches!(a, Action::Prefetch { .. }));
            if !has_pf {
                dropped_eventually = true;
                // Non-prefetch actions still pass through.
                assert_eq!(out, vec![Action::TableWrite]);
                break;
            }
        }
        assert!(dropped_eventually, "wasted predictions must be filtered");
    }

    #[test]
    fn demanded_lines_keep_their_predictions_alive() {
        // The predicted line is demanded right after each prediction:
        // positive labels balance ring-eviction negatives and the
        // filter keeps allowing it.
        let cfg = OffchipFilterConfig {
            history: 4,
            drop_threshold: 0,
            train_margin: 1,
            weight_cap: 8,
            ..OffchipFilterConfig::default_config()
        };
        let mut f = OffchipFilter::wrap(cfg, Box::new(NextLine));
        for _ in 0..64 {
            let mut out = Vec::new();
            f.on_miss(&miss(0x40, 100), &mut out);
            assert!(
                out.iter().any(|a| matches!(a, Action::Prefetch { .. })),
                "demanded predictions must keep flowing"
            );
            // The demand for 101 labels the remembered decision off-chip.
            let mut sink = Vec::new();
            f.on_miss(&miss(0x41, 101), &mut sink);
        }
    }

    #[test]
    fn hooks_forward_to_inner() {
        /// Counts hook deliveries.
        #[derive(Debug, Default)]
        struct Probe {
            epochs: u64,
            dones: u64,
            drops: u64,
        }
        impl Prefetcher for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn on_miss(&mut self, _i: &MissInfo, _o: &mut Vec<Action>) {}
            fn on_prefetch_hit(&mut self, _i: &PrefetchHitInfo, _o: &mut Vec<Action>) {}
            fn on_epoch_end(&mut self, _now: Cycle, out: &mut Vec<Action>) {
                self.epochs += 1;
                out.push(Action::TableRead { token: 9, delay: 0 });
            }
            fn on_table_done(&mut self, token: u64, _now: Cycle, _out: &mut Vec<Action>) {
                assert_eq!(token, 9);
                self.dones += 1;
            }
            fn on_table_dropped(&mut self, token: u64) {
                assert_eq!(token, 9);
                self.drops += 1;
            }
            fn as_any(&self) -> Option<&dyn std::any::Any> {
                Some(self)
            }
        }
        let mut f = OffchipFilter::wrap(
            OffchipFilterConfig::default_config(),
            Box::new(Probe::default()),
        );
        let mut out = Vec::new();
        f.on_epoch_end(5, &mut out);
        assert_eq!(out, vec![Action::TableRead { token: 9, delay: 0 }]);
        f.on_table_done(9, 6, &mut out);
        f.on_table_dropped(9);
        let probe = f
            .as_any()
            .and_then(|a| a.downcast_ref::<Probe>())
            .expect("as_any reaches the inner prefetcher");
        assert_eq!((probe.epochs, probe.dones, probe.drops), (1, 1, 1));
    }
}
