//! The [`Prefetcher`] trait and the baseline prefetchers of the paper's
//! Figure 9 comparison.
//!
//! All prefetchers are *event-driven*: the simulation engine reports L2
//! misses, prefetch-buffer hits and epoch boundaries; the prefetcher
//! responds with [`Action`]s. Crucially, a prefetcher whose table lives in
//! main memory does **not** compute its prefetches instantly — it emits
//! [`Action::TableRead`] and only produces the prefetch addresses when the
//! engine calls [`Prefetcher::on_table_done`] after modelling the memory
//! round-trip. This is how the paper's central timing argument (hiding
//! table latency under a prior epoch, §3.2) is carried by the simulation
//! rather than asserted.
//!
//! Baselines implemented here, each following its original paper at the
//! configuration used in §5.3:
//!
//! * [`StreamPrefetcher`] — 32-stream tracker with ±/non-unit strides
//!   (the "many current high performance processors" baseline).
//! * [`GhbPrefetcher`] — Nesbit & Smith's Global History Buffer with
//!   PC/DC (delta-correlation) indexing; *small* (16K/16K) and *large*
//!   (256K/256K) configurations.
//! * [`TcpPrefetcher`] — Hu et al.'s Tag Correlating Prefetcher; *small*
//!   (2K-set PHT) and *large* (32K-set PHT) configurations.
//! * [`SmsPrefetcher`] — Somogyi et al.'s Spatial Memory Streaming with
//!   2 KB regions and a 16K-entry PHT.
//! * [`SolihinPrefetcher`] — Solihin et al.'s memory-side correlation
//!   prefetcher with its table in main memory; *(width 2, depth 3)* and
//!   *(width 1, depth 6)* configurations.
//! * [`NullPrefetcher`] — the no-prefetching baseline.
//!
//! A post-2007 competitor roster extends the comparison
//! (`modern_roster`):
//!
//! * [`TriangelPrefetcher`] — Triangel-style temporal prefetching with
//!   usefulness-sampled metadata filtering (arXiv:2406.10627).
//! * [`AmcPrefetcher`] — access-to-miss correlation with fast
//!   epoch-decayed confidence (arXiv:2406.14008).
//! * [`OffchipFilter`] — a perceptron-style off-chip predictor
//!   (arXiv:2403.15181 style) composable as a prefetch filter over any
//!   of the above.
//!
//! The epoch-based correlation prefetcher itself (the paper's
//! contribution) lives in the `ebcp-core` crate and implements the same
//! trait.
//!
//! # Examples
//!
//! ```
//! use ebcp_prefetch::{Action, MissInfo, NullPrefetcher, Prefetcher};
//! use ebcp_types::{AccessKind, LineAddr, Pc};
//!
//! let mut p = NullPrefetcher;
//! let mut out = Vec::new();
//! p.on_miss(
//!     &MissInfo {
//!         line: LineAddr::from_index(1),
//!         pc: Pc::new(0x40),
//!         kind: AccessKind::Load,
//!         epoch_trigger: true,
//!         now: 100,
//!         core: 0,
//!     },
//!     &mut out,
//! );
//! assert!(out.is_empty());
//! ```

pub mod amc;
pub mod api;
pub mod fault;
pub mod ghb;
pub mod mmtable;
pub mod offchip_filter;
pub mod registry;
pub mod sms;
pub mod solihin;
pub mod stream;
pub mod tcp;
pub mod triangel;

pub use amc::{AmcConfig, AmcPrefetcher};
pub use api::{Action, MissInfo, NullPrefetcher, PrefetchHitInfo, Prefetcher};
pub use fault::{FaultConfig, FaultPrefetcher};
pub use ghb::{GhbConfig, GhbPrefetcher};
pub use mmtable::MainMemoryTable;
pub use offchip_filter::{OffchipFilter, OffchipFilterConfig};
pub use registry::BaselineConfig;
pub use sms::{SmsConfig, SmsPrefetcher};
pub use solihin::{SolihinConfig, SolihinPrefetcher};
pub use stream::{StreamConfig, StreamPrefetcher};
pub use tcp::{TcpConfig, TcpPrefetcher};
pub use triangel::{TriangelConfig, TriangelPrefetcher};
