//! AMC-style access-to-miss correlation prefetching (after
//! arXiv:2406.14008).
//!
//! Where classic miss-correlation (Solihin, EBCP) pairs an off-chip
//! miss with the *misses* that historically followed it, AMC keys its
//! table on the earlier, denser *access* stream and predicts the
//! off-chip misses that follow an access — buying lookahead (the
//! access happens long before the correlated miss) and resilience to
//! miss-sequence jitter. Its second distinguishing trait is fast
//! metadata aging: confidence counters decay every epoch, so
//! correlations learned on a graph snapshot that has since evolved
//! stop firing within an epoch or two instead of polluting the table
//! for the run's lifetime. The evolving-graph trace preset (workload
//! `graph`) exists to exercise exactly this regime.
//!
//! Adaptation to this reproduction's event model: the engine reports
//! only L2-visible events (off-chip misses and prefetch-buffer hits),
//! not raw L1 accesses, so the "access" stream here is the union of
//! both — a prefetch-buffer hit is an L2 access that did not go
//! off-chip, which is precisely the early trigger AMC wants. Each
//! table entry holds two successor slots with saturating confidence;
//! every `decay_epochs` miss-window epochs, `on_epoch_end` halves every
//! confidence, implementing the decay at the paper's phase granularity
//! (a single §2.1 epoch here is only a few misses long).

use ebcp_types::{AccessKind, LineAddr};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// Successor slots per correlation entry.
const SUCCS: usize = 2;

/// AMC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmcConfig {
    /// Correlation-table sets.
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Maximum chained predictions per access.
    pub degree: usize,
    /// Confidence saturation ceiling.
    pub conf_max: u8,
    /// Minimum confidence for a successor to be prefetched.
    pub conf_threshold: u8,
    /// Epochs between confidence-halving passes. The paper ages once
    /// per analytics phase; this simulator's §2.1 miss-window epochs
    /// are only a few misses long, so halving every single epoch would
    /// erase a correlation before its second observation could lift it
    /// past the threshold. Must be nonzero.
    pub decay_epochs: u32,
    /// Training lookahead: each new access trains the last `history`
    /// accesses to predict it, so a correlated (access, miss) pair is
    /// learned even when unrelated events land between the two — the
    /// paper's access-to-miss distance, which strictly-consecutive
    /// pairing cannot express. Must be nonzero.
    pub history: usize,
}

impl AmcConfig {
    /// Reference configuration: 4K×8 table, degree 4, predict on the
    /// first observed pair (confidence ranks successors and the decay
    /// prunes stale ones; a ≥2 gate would need every pair to recur
    /// within one decay period before ever firing, which the sparse
    /// miss-level stream of this event model cannot sustain).
    pub const fn default_config() -> Self {
        AmcConfig {
            sets: 4 << 10,
            ways: 8,
            degree: 4,
            conf_max: 7,
            conf_threshold: 1,
            decay_epochs: 256,
            history: 4,
        }
    }

    /// A shrunk configuration for scaled-down sweeps.
    pub const fn small() -> Self {
        AmcConfig {
            sets: 512,
            ways: 8,
            degree: 4,
            conf_max: 7,
            conf_threshold: 1,
            decay_epochs: 256,
            history: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct AmcEntry {
    key: u64,
    valid: bool,
    lru: u64,
    succ: [u64; SUCCS],
    conf: [u8; SUCCS],
}

/// The access-to-miss correlation prefetcher.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{AmcConfig, AmcPrefetcher, Prefetcher};
/// let p = AmcPrefetcher::new(AmcConfig::default_config());
/// assert_eq!(p.name(), "amc");
/// ```
#[derive(Debug, Clone)]
pub struct AmcPrefetcher {
    config: AmcConfig,
    table: Vec<AmcEntry>,
    stamp: u64,
    /// The most recent `history` accesses in the L2-visible stream,
    /// newest last.
    recent: std::collections::VecDeque<u64>,
    /// Epochs seen since the last confidence-halving pass.
    epochs_since_decay: u32,
    name: String,
}

impl AmcPrefetcher {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if a table dimension is zero or the threshold exceeds the
    /// ceiling.
    pub fn new(config: AmcConfig) -> Self {
        assert!(config.sets > 0 && config.ways > 0 && config.decay_epochs > 0);
        assert!(config.history > 0);
        assert!(config.conf_threshold <= config.conf_max);
        AmcPrefetcher {
            config,
            table: vec![AmcEntry::default(); config.sets * config.ways],
            stamp: 0,
            recent: std::collections::VecDeque::with_capacity(config.history),
            epochs_since_decay: 0,
            name: "amc".to_owned(),
        }
    }

    /// Overrides the display name.
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    fn find(&mut self, key: u64) -> Option<usize> {
        let base = (key % self.config.sets as u64) as usize * self.config.ways;
        self.stamp += 1;
        for i in base..base + self.config.ways {
            if self.table[i].valid && self.table[i].key == key {
                self.table[i].lru = self.stamp;
                return Some(i);
            }
        }
        None
    }

    /// Records `next` as a successor of `key`, boosting its confidence
    /// (or claiming the weaker slot if both hold other lines).
    fn train(&mut self, key: u64, next: u64) {
        let idx = match self.find(key) {
            Some(i) => i,
            None => {
                let base = (key % self.config.sets as u64) as usize * self.config.ways;
                let victim = (base..base + self.config.ways)
                    .min_by_key(|&i| {
                        if self.table[i].valid {
                            self.table[i].lru
                        } else {
                            0
                        }
                    })
                    .unwrap_or(base);
                self.table[victim] = AmcEntry {
                    key,
                    valid: true,
                    lru: self.stamp,
                    ..AmcEntry::default()
                };
                victim
            }
        };
        let e = &mut self.table[idx];
        for s in 0..SUCCS {
            if e.conf[s] > 0 && e.succ[s] == next {
                e.conf[s] = (e.conf[s] + 1).min(self.config.conf_max);
                return;
            }
        }
        // Claim the weakest slot.
        let weakest = (0..SUCCS).min_by_key(|&s| e.conf[s]).unwrap_or(0);
        e.succ[weakest] = next;
        e.conf[weakest] = 1;
    }

    /// Confident successors of `key`, strongest first.
    fn predict(&mut self, key: u64) -> Vec<u64> {
        let Some(idx) = self.find(key) else {
            return Vec::new();
        };
        let e = self.table[idx];
        let mut slots: Vec<(u8, u64)> = (0..SUCCS)
            .filter(|&s| e.conf[s] >= self.config.conf_threshold)
            .map(|s| (e.conf[s], e.succ[s]))
            .collect();
        slots.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        slots.into_iter().map(|(_, l)| l).collect()
    }

    fn handle(&mut self, line: LineAddr, out: &mut Vec<Action>) {
        let cur = line.index();
        // Train every recent access to predict this one: the paper's
        // access-to-miss distance, robust to events landing in between.
        let recent: Vec<u64> = self.recent.iter().copied().collect();
        for key in recent {
            if key != cur {
                self.train(key, cur);
            }
        }
        if self.recent.len() == self.config.history {
            self.recent.pop_front();
        }
        self.recent.push_back(cur);
        // Chain predictions across successor links up to `degree`.
        let mut emitted = 0usize;
        let mut frontier = vec![cur];
        let mut next_frontier = Vec::new();
        while emitted < self.config.degree && !frontier.is_empty() {
            for key in frontier.drain(..) {
                for succ in self.predict(key) {
                    if emitted >= self.config.degree {
                        break;
                    }
                    out.push(Action::Prefetch {
                        line: LineAddr::from_index(succ),
                        origin: 0,
                    });
                    emitted += 1;
                    next_frontier.push(succ);
                }
            }
            std::mem::swap(&mut frontier, &mut next_frontier);
        }
    }
}

impl Prefetcher for AmcPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return; // data accesses only
        }
        self.handle(info.line, out);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return;
        }
        // A buffer hit is an L2 access: the early trigger AMC keys on.
        self.handle(info.line, out);
    }

    fn on_epoch_end(&mut self, _now: u64, _out: &mut Vec<Action>) {
        // Fast aging: every `decay_epochs` epochs, halve every
        // confidence, so correlations learned on a graph snapshot that
        // has since evolved stop firing within a couple of decay
        // periods instead of polluting the table for the run.
        self.epochs_since_decay += 1;
        if self.epochs_since_decay < self.config.decay_epochs {
            return;
        }
        self.epochs_since_decay = 0;
        for e in &mut self.table {
            for c in &mut e.conf {
                *c /= 2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::Pc;

    fn miss(line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(0),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    fn drive(p: &mut AmcPrefetcher, lines: &[u64]) -> Vec<u64> {
        let mut pf = Vec::new();
        for &l in lines {
            let mut out = Vec::new();
            p.on_miss(&miss(l), &mut out);
            pf.extend(out.iter().filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            }));
        }
        pf
    }

    #[test]
    fn recurring_pair_predicted_once_confident() {
        // Default policy: one observation of (A -> B) is enough.
        let mut p = AmcPrefetcher::new(AmcConfig::small());
        let pf = drive(&mut p, &[10, 20, 10]);
        assert!(pf.contains(&20), "{pf:?}");
        // A raised threshold gates prediction on repeated observation.
        let gated = AmcConfig {
            conf_threshold: 2,
            ..AmcConfig::small()
        };
        let mut p = AmcPrefetcher::new(gated);
        let early = drive(&mut p, &[10, 20, 10]);
        assert!(
            early.is_empty(),
            "one observation is below threshold: {early:?}"
        );
        let pf = drive(&mut p, &[20, 10]);
        assert!(pf.contains(&20), "second observation lifts it past: {pf:?}");
    }

    #[test]
    fn predictions_chain_across_successors() {
        // history 1 = strictly consecutive training, so the chain
        // follows the stream order exactly.
        let mut p = AmcPrefetcher::new(AmcConfig {
            degree: 3,
            history: 1,
            ..AmcConfig::small()
        });
        let stream = [1u64, 2, 3, 4];
        let mut seq = Vec::new();
        for _ in 0..3 {
            seq.extend(&stream);
        }
        seq.push(1);
        let pf = drive(&mut p, &seq);
        let tail = &pf[pf.len().saturating_sub(3)..];
        assert_eq!(tail, &[2, 3, 4], "{pf:?}");
    }

    #[test]
    fn history_window_learns_pairs_across_intervening_noise() {
        // (A -> B) with two unrelated lines in between: strictly
        // consecutive training never pairs them, a history-4 window
        // does — the access-to-miss distance the paper relies on.
        // degree 1 so the strict case cannot reach B by chaining
        // through the intervening lines.
        let strict = AmcConfig {
            history: 1,
            degree: 1,
            ..AmcConfig::small()
        };
        let mut p = AmcPrefetcher::new(strict);
        let pf = drive(&mut p, &[10, 70, 80, 20, 10]);
        assert!(!pf.contains(&20), "{pf:?}");
        let mut p = AmcPrefetcher::new(AmcConfig::small());
        let pf = drive(&mut p, &[10, 70, 80, 20, 10]);
        assert!(
            pf.contains(&20),
            "window training must learn 10 -> 20: {pf:?}"
        );
    }

    #[test]
    fn epoch_decay_forgets_stale_correlations() {
        let mut p = AmcPrefetcher::new(AmcConfig {
            decay_epochs: 1,
            ..AmcConfig::small()
        });
        // Learn (A -> B) just past threshold.
        drive(&mut p, &[10, 20, 10, 20]);
        assert!(drive(&mut p, &[10]).contains(&20));
        // Two epoch boundaries halve 2 -> 1 -> 0: the pair is forgotten.
        let mut out = Vec::new();
        p.on_epoch_end(0, &mut out);
        p.on_epoch_end(0, &mut out);
        assert!(out.is_empty(), "decay emits nothing");
        let pf = drive(&mut p, &[10]);
        assert!(!pf.contains(&20), "stale pair must have decayed: {pf:?}");
    }

    #[test]
    fn confidence_survives_epochs_inside_the_decay_period() {
        let mut p = AmcPrefetcher::new(AmcConfig {
            decay_epochs: 8,
            conf_threshold: 2,
            ..AmcConfig::small()
        });
        // Interleave epoch boundaries with training: with the sim's
        // few-miss epochs, a per-epoch decay would keep confidence
        // pinned below threshold forever.
        let mut out = Vec::new();
        for _ in 0..3 {
            drive(&mut p, &[10, 20]);
            p.on_epoch_end(0, &mut out);
        }
        assert!(drive(&mut p, &[10]).contains(&20));
    }

    #[test]
    fn two_successors_coexist() {
        let mut p = AmcPrefetcher::new(AmcConfig {
            degree: 2,
            ..AmcConfig::small()
        });
        // A alternates between successors B and C; both reach threshold.
        drive(&mut p, &[10, 20, 10, 30, 10, 20, 10, 30]);
        let pf = drive(&mut p, &[10]);
        assert!(pf.contains(&20) && pf.contains(&30), "{pf:?}");
    }

    #[test]
    fn instruction_misses_ignored() {
        let mut p = AmcPrefetcher::new(AmcConfig::small());
        let mut out = Vec::new();
        for l in [1u64, 2, 1, 2, 1] {
            p.on_miss(
                &MissInfo {
                    kind: AccessKind::InstrFetch,
                    ..miss(l)
                },
                &mut out,
            );
        }
        assert!(out.is_empty());
    }

    #[test]
    fn buffer_hits_act_as_accesses() {
        let mut p = AmcPrefetcher::new(AmcConfig::small());
        drive(&mut p, &[10, 20, 10, 20]);
        let mut out = Vec::new();
        p.on_prefetch_hit(
            &PrefetchHitInfo {
                line: LineAddr::from_index(10),
                pc: Pc::new(0),
                kind: AccessKind::Load,
                origin: 0,
                would_be_trigger: false,
                now: 0,
                core: 0,
            },
            &mut out,
        );
        let pf: Vec<u64> = out
            .iter()
            .filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            })
            .collect();
        assert!(pf.contains(&20), "{pf:?}");
    }
}
