//! The memory-side correlation prefetcher baseline (Solihin, Lee &
//! Torrellas, ISCA 2002).
//!
//! Solihin's scheme stores a pairwise correlation table in main memory
//! and runs the prefetch engine near the memory controller. Each table
//! entry, keyed by a miss address, holds `depth` *levels* of successors;
//! level *i* keeps the last `width` distinct addresses observed *i*
//! misses after the key (MRU ordered). On a miss, the entry is read from
//! main memory (a real round-trip, modelled by the engine) and up to
//! `width × depth` prefetches are issued.
//!
//! The paper compares *Solihin 3,2* (depth 3, width 2 — the original
//! configuration) and *Solihin 6,1* (depth 6, width 1 — the
//! depth-enhanced variant), both with 1M-entry main-memory tables
//! (§5.3). The scheme's weakness versus EBCP (§3.3.1) is *what* it
//! stores, not where: the successors it prefetches include the current
//! epoch's remaining misses and the next epoch's misses, which cannot be
//! covered timely once the table round-trip is accounted for.

use std::collections::VecDeque;

use ebcp_types::{FxHashMap, LineAddr};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};
use crate::mmtable::MainMemoryTable;

/// Solihin prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolihinConfig {
    /// Main-memory correlation table entries (direct-mapped).
    pub entries: u64,
    /// Successors kept per level (prefetch width).
    pub width: usize,
    /// Successor levels (prefetch depth).
    pub depth: usize,
    /// Maximum prefetches per table match.
    pub degree: usize,
    /// Cycles a miss takes to reach the memory-side engine before its
    /// table lookup can start (processor → North Bridge trip, §3.3.1).
    pub lookup_delay: u64,
}

impl SolihinConfig {
    /// The original *Solihin 3,2*: depth 3, width 2, ≤6 prefetches.
    pub const fn original() -> Self {
        SolihinConfig {
            entries: 1 << 20,
            width: 2,
            depth: 3,
            degree: 6,
            lookup_delay: 250,
        }
    }

    /// The depth-enhanced *Solihin 6,1*: depth 6, width 1.
    pub const fn deep() -> Self {
        SolihinConfig {
            entries: 1 << 20,
            width: 1,
            depth: 6,
            degree: 6,
            lookup_delay: 250,
        }
    }
}

/// One correlation-table entry: `depth` MRU successor lists.
#[derive(Debug, Clone, Default)]
struct SolihinEntry {
    levels: Vec<Vec<LineAddr>>,
}

/// The memory-side correlation prefetcher.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{Prefetcher, SolihinConfig, SolihinPrefetcher};
/// let p = SolihinPrefetcher::new(SolihinConfig::deep());
/// assert_eq!(p.name(), "solihin-6,1");
/// ```
#[derive(Debug, Clone)]
pub struct SolihinPrefetcher {
    config: SolihinConfig,
    table: MainMemoryTable<SolihinEntry>,
    /// The last `depth` misses, newest at the back.
    recent: VecDeque<LineAddr>,
    /// Pending table reads: token → the key whose entry was requested.
    pending: FxHashMap<u64, LineAddr>,
    next_token: u64,
    name: String,
}

impl SolihinPrefetcher {
    /// Creates a Solihin prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if width or depth is zero.
    pub fn new(config: SolihinConfig) -> Self {
        assert!(config.width > 0 && config.depth > 0);
        SolihinPrefetcher {
            table: MainMemoryTable::new(config.entries),
            recent: VecDeque::with_capacity(config.depth),
            pending: FxHashMap::default(),
            next_token: 0,
            name: format!("solihin-{},{}", config.depth, config.width),
            config,
        }
    }

    /// Overrides the display name.
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// The configured table, exposed for inspection in tests.
    pub fn table_occupancy(&self) -> usize {
        self.table.occupancy()
    }

    fn learn(&mut self, line: LineAddr) {
        let width = self.config.width;
        let depth = self.config.depth;
        // `line` is the level-(i+1) successor of the miss i-back.
        for (i, &pred) in self.recent.iter().rev().enumerate() {
            if i >= depth {
                break;
            }
            self.table.update_or_insert(
                pred,
                || SolihinEntry {
                    levels: vec![Vec::new(); depth],
                },
                |e| {
                    if e.levels.len() < depth {
                        e.levels.resize(depth, Vec::new());
                    }
                    let level = &mut e.levels[i];
                    if let Some(pos) = level.iter().position(|&l| l == line) {
                        level.remove(pos);
                    }
                    level.insert(0, line);
                    level.truncate(width);
                },
            );
        }
        self.recent.push_back(line);
        while self.recent.len() > depth {
            self.recent.pop_front();
        }
    }

    fn handle(&mut self, line: LineAddr, out: &mut Vec<Action>) {
        self.learn(line);
        // Prediction requires the main-memory table round-trip.
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, line);
        out.push(Action::TableRead {
            token,
            delay: self.config.lookup_delay,
        });
        // Learning updates one entry per level: each is a table write
        // (the engine charges the write-bus bandwidth).
        for _ in 0..self.recent.len().saturating_sub(1).min(self.config.depth) {
            out.push(Action::TableWrite);
        }
    }
}

impl Prefetcher for SolihinPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        // Memory-side: sees every L2 miss (instruction and load).
        self.handle(info.line, out);
    }

    fn on_prefetch_hit(&mut self, _info: &PrefetchHitInfo, _out: &mut Vec<Action>) {
        // Memory-side placement: a prefetch-buffer hit is absorbed
        // on-chip and never reaches the memory controller, so the engine
        // cannot observe it — no training, no lookup. This is the flip
        // side of needing no on-chip control, and one reason the paper's
        // on-chip EBCP placement wins (§3.3.1): the better the
        // prefetcher does, the less of the miss stream it sees.
    }

    fn on_table_done(&mut self, token: u64, _now: u64, out: &mut Vec<Action>) {
        let Some(key) = self.pending.remove(&token) else {
            return;
        };
        let Some(entry) = self.table.get(key) else {
            return;
        };
        let mut issued = 0;
        // Level-major order: nearest successors first.
        for level in &entry.levels {
            for &succ in level.iter().take(self.config.width) {
                if issued >= self.config.degree {
                    return;
                }
                out.push(Action::Prefetch {
                    line: succ,
                    origin: 0,
                });
                issued += 1;
            }
        }
    }

    fn on_table_dropped(&mut self, token: u64) {
        self.pending.remove(&token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::{AccessKind, Pc};

    fn miss(line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(0),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    /// Drives misses, immediately completing every table read, and
    /// returns the prefetched line indices.
    fn drive(p: &mut SolihinPrefetcher, lines: &[u64]) -> Vec<u64> {
        let mut pf = Vec::new();
        for &l in lines {
            let mut out = Vec::new();
            p.on_miss(&miss(l), &mut out);
            let mut done = Vec::new();
            for a in &out {
                if let Action::TableRead { token, .. } = a {
                    p.on_table_done(*token, 0, &mut done);
                }
            }
            pf.extend(done.iter().filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            }));
        }
        pf
    }

    #[test]
    fn successors_learned_and_prefetched() {
        let mut p = SolihinPrefetcher::new(SolihinConfig::deep());
        // Sequence A B C D E F G, twice. Second pass: miss A's entry
        // holds successors B..G at levels 1..6.
        let seq = [10u64, 20, 30, 40, 50, 60, 70];
        drive(&mut p, &seq);
        let pf = drive(&mut p, &[10]);
        assert_eq!(pf, vec![20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn width_two_keeps_alternatives() {
        let mut p = SolihinPrefetcher::new(SolihinConfig::original());
        // A is followed by B on one path and C on another.
        drive(&mut p, &[10, 20, 99, 98, 97]); // A B ...
        drive(&mut p, &[10, 30, 89, 88, 87]); // A C ...
        let pf = drive(&mut p, &[10]);
        // Level 1 holds {C (MRU), B}; both prefetched.
        assert!(pf.contains(&30) && pf.contains(&20), "{pf:?}");
    }

    #[test]
    fn width_one_keeps_only_mru() {
        let mut p = SolihinPrefetcher::new(SolihinConfig::deep());
        drive(&mut p, &[10, 20, 99, 98, 97, 96, 95]);
        drive(&mut p, &[10, 30, 89, 88, 87, 86, 85]);
        let pf = drive(&mut p, &[10]);
        assert!(pf.contains(&30), "MRU successor kept: {pf:?}");
        assert!(!pf.contains(&20), "older alternative evicted: {pf:?}");
    }

    #[test]
    fn degree_caps_prefetches() {
        let cfg = SolihinConfig {
            degree: 3,
            ..SolihinConfig::deep()
        };
        let mut p = SolihinPrefetcher::new(cfg);
        let seq = [10u64, 20, 30, 40, 50, 60, 70];
        drive(&mut p, &seq);
        let pf = drive(&mut p, &[10]);
        assert_eq!(pf.len(), 3);
    }

    #[test]
    fn no_prediction_for_unknown_miss() {
        let mut p = SolihinPrefetcher::new(SolihinConfig::deep());
        let pf = drive(&mut p, &[1, 2, 3]);
        // First pass: entries are being built; key 1's entry did not
        // exist at lookup time... but entries for 1 were created by
        // learning when 2 and 3 arrived. The *lookups* happened before,
        // so nothing is prefetched.
        assert!(pf.is_empty(), "{pf:?}");
    }

    #[test]
    fn dropped_reads_clean_up() {
        let mut p = SolihinPrefetcher::new(SolihinConfig::deep());
        let mut out = Vec::new();
        p.on_miss(&miss(1), &mut out);
        let token = out
            .iter()
            .find_map(|a| match a {
                Action::TableRead { token, .. } => Some(*token),
                _ => None,
            })
            .expect("read issued");
        p.on_table_dropped(token);
        let mut done = Vec::new();
        p.on_table_done(token, 0, &mut done);
        assert!(done.is_empty(), "dropped token must not fire later");
    }

    #[test]
    fn table_capacity_causes_aliasing() {
        let tiny = SolihinConfig {
            entries: 4,
            ..SolihinConfig::deep()
        };
        let mut p = SolihinPrefetcher::new(tiny);
        let seq: Vec<u64> = (0..100).map(|i| i * 17 + 1).collect();
        drive(&mut p, &seq);
        assert!(p.table_occupancy() <= 4);
    }
}
